"""Profile harness: report schema, persistence and the regression gate."""

import copy

import pytest

from repro.bench.profile import (
    PROFILE_SCHEMA_VERSION,
    ProfileConfig,
    check_against_baseline,
    format_profile_summary,
    measure_decode_scaling,
    run_profile,
    save_profile_report,
    validate_profile_report,
)


@pytest.fixture(scope="module")
def document():
    config = ProfileConfig(
        model="tiny", n_chunks=2, chunk_tokens=24, suffix_tokens=8, repeats=1, warmup=0
    )
    return run_profile(config)


class TestProfileReport:
    def test_document_validates(self, document):
        validate_profile_report(document)

    def test_all_hot_path_ops_are_timed(self, document):
        for op in (
            "chunk_prefill",
            "fuse_sequential",
            "fuse_pipelined",
            "decode_sequential",
            "decode_batched",
            "serialize_kv",
            "deserialize_kv",
        ):
            assert document["ops"][op]["min_s"] > 0.0

    def test_pipeline_block_is_measured(self, document):
        pipeline = document["pipeline"]
        assert pipeline["sequential_total_s"] > 0.0
        assert pipeline["pipelined_total_s"] > 0.0
        assert pipeline["measured_speedup"] > 0.0
        assert pipeline["layer_load_time_s"] > 0.0

    def test_save_writes_bench_profile_file(self, document, tmp_path):
        path = save_profile_report(document, out_dir=tmp_path, tag="test")
        assert path.name.startswith("BENCH_profile_test_")
        assert path.exists()

    def test_summary_renders(self, document):
        text = format_profile_summary(document)
        assert "pipelined vs sequential fuse" in text

    def test_validation_rejects_missing_op(self, document):
        broken = copy.deepcopy(document)
        del broken["ops"]["fuse_sequential"]
        with pytest.raises(ValueError):
            validate_profile_report(broken)

    def test_validation_rejects_missing_decode_block(self, document):
        broken = copy.deepcopy(document)
        del broken["decode"]
        with pytest.raises(ValueError):
            validate_profile_report(broken)


class TestDecodeProfile:
    """Acceptance: batched decode wins and the per-token cost stays flat."""

    def test_workload_meets_the_acceptance_floor(self, document):
        decode = document["decode"]
        assert decode["batch_size"] >= 4
        assert decode["n_tokens"] >= 64

    def test_batched_decode_beats_sequential(self, document):
        ops = document["ops"]
        assert ops["decode_batched"]["min_s"] < ops["decode_sequential"]["min_s"]
        assert document["decode"]["batched_speedup"] > 1.0

    def test_per_token_decode_cost_is_not_quadratic(self, document):
        """On preallocated buffers only attention's O(T) read grows with the
        context; the legacy concatenate-per-token path would roughly triple
        the per-token cost between the first and last window here."""
        scaling = document["decode"]["scaling"]
        assert scaling["per_token_first_s"] > 0.0
        # Measured ~1.0-1.2 on the preallocated cache; the legacy
        # concatenate-per-token path sat near 3. 2.5 leaves CI-noise margin
        # while still separating the regimes.
        assert scaling["per_token_growth"] < 2.5

    def test_scaling_helper_rejects_short_runs(self):
        from repro.model.config import get_config
        from repro.model.transformer import TransformerModel

        model = TransformerModel(get_config("tiny"), seed=0)
        with pytest.raises(ValueError):
            measure_decode_scaling(model, n_tokens=16, window=16)


class TestBaselineGate:
    def test_no_failure_within_budget(self, document):
        assert check_against_baseline(document, copy.deepcopy(document)) == []

    def test_regression_detected(self, document):
        baseline = copy.deepcopy(document)
        for op in ("fuse_sequential", "fuse_pipelined"):
            baseline["ops"][op]["min_s"] = document["ops"][op]["min_s"] / 10.0
        failures = check_against_baseline(document, baseline, max_regression=2.0)
        assert len(failures) == 2
        assert "fuse_sequential" in failures[0]

    def test_decode_batched_is_gated(self, document):
        baseline = copy.deepcopy(document)
        baseline["ops"]["decode_batched"]["min_s"] = (
            document["ops"]["decode_batched"]["min_s"] / 10.0
        )
        failures = check_against_baseline(document, baseline, max_regression=2.0)
        assert len(failures) == 1
        assert "decode_batched" in failures[0]

    def test_missing_baseline_op_is_skipped(self, document):
        baseline = copy.deepcopy(document)
        del baseline["ops"]["fuse_pipelined"]
        failures = check_against_baseline(document, baseline)
        assert all("fuse_pipelined" not in f for f in failures)


class TestDecodeSessionProfile:
    """Acceptance: the persistent-pad session decode is profiled and gated —
    it amortises vs per-request sequential decode at batch >= 4 and its
    steady-state per-step cost at batch 1 does not exceed per-call
    decode_batch (which re-gathers the full K/V every step)."""

    def test_session_op_is_timed_and_validated(self, document):
        assert document["ops"]["decode_session"]["min_s"] > 0.0
        assert document["schema_version"] == PROFILE_SCHEMA_VERSION

    def test_session_amortises_vs_sequential_at_batch_4(self, document):
        decode = document["decode"]
        assert decode["batch_size"] >= 4
        assert (
            document["ops"]["decode_session"]["min_s"]
            < document["ops"]["decode_sequential"]["min_s"]
        )
        assert decode["session_speedup_vs_sequential"] > 1.0

    def test_session_not_worse_than_per_call_batched_at_batch_1(self, document):
        width = document["decode"]["width_scaling"]
        b1 = width["widths"].index(1)
        # At batch 1 decode_batch takes its zero-copy single-request path —
        # there is no re-gather for the session to eliminate — so the claim
        # is parity: 1.25 absorbs CI timer noise on the ms-scale per-step
        # quantities (the committed profile, on the `small` preset, has the
        # session strictly faster).
        assert width["session_s_per_step"][b1] <= width["batched_s_per_step"][b1] * 1.25

    def test_width_scaling_shows_amortisation(self, document):
        width = document["decode"]["width_scaling"]
        assert width["widths"] == sorted(width["widths"])
        assert max(width["widths"]) >= 4
        by_width = dict(zip(width["widths"], width["amortisation_vs_sequential"]))
        # One width-W step costs well under W width-1 steps.
        assert by_width[max(width["widths"])] > 1.5

    def test_session_op_is_gated(self, document):
        baseline = copy.deepcopy(document)
        baseline["ops"]["decode_session"]["min_s"] = (
            document["ops"]["decode_session"]["min_s"] / 10.0
        )
        failures = check_against_baseline(document, baseline, max_regression=2.0)
        assert len(failures) == 1
        assert "decode_session" in failures[0]

    def test_validation_rejects_missing_width_scaling(self, document):
        broken = copy.deepcopy(document)
        del broken["decode"]["width_scaling"]
        with pytest.raises(ValueError):
            validate_profile_report(broken)
        broken = copy.deepcopy(document)
        del broken["ops"]["decode_session"]
        with pytest.raises(ValueError):
            validate_profile_report(broken)

    def test_summary_renders_the_session_lines(self, document):
        from repro.bench.profile import format_profile_summary

        text = format_profile_summary(document)
        assert "decode session" in text
        assert "session step by batch width" in text


class TestStoreProfile:
    """Acceptance: the tiered trie lookup is profiled and gated, and the
    shared-prefix family actually deduplicates in the committed numbers."""

    def test_store_lookup_op_is_timed(self, document):
        assert document["ops"]["store_lookup"]["min_s"] > 0.0

    def test_store_block_shows_dedup(self, document):
        store = document["store"]
        assert store["bytes_stored"] > 0
        assert store["bytes_stored"] < store["logical_bytes"]
        assert store["dedup_ratio"] > 1.0
        assert len(store["tiers"]) == 2

    def test_store_lookup_is_gated(self, document):
        baseline = copy.deepcopy(document)
        baseline["ops"]["store_lookup"]["min_s"] = (
            document["ops"]["store_lookup"]["min_s"] / 10.0
        )
        failures = check_against_baseline(document, baseline, max_regression=2.0)
        assert len(failures) == 1
        assert "store_lookup" in failures[0]

    def test_validation_rejects_missing_store_block(self, document):
        broken = copy.deepcopy(document)
        del broken["store"]
        with pytest.raises(ValueError):
            validate_profile_report(broken)
        broken = copy.deepcopy(document)
        del broken["ops"]["store_lookup"]
        with pytest.raises(ValueError):
            validate_profile_report(broken)

    def test_summary_renders_the_store_line(self, document):
        assert "tiered trie store" in format_profile_summary(document)


class TestPreemptResumeProfile:
    """Acceptance: the scheduler's pause/resume round-trip is profiled and
    gated — preempting a decode slot must stay a cheap, bounded operation."""

    def test_preempt_resume_op_is_timed(self, document):
        assert document["ops"]["preempt_resume"]["min_s"] > 0.0
        assert document["decode"]["preempt_resume_s"] == (
            document["ops"]["preempt_resume"]["min_s"]
        )

    def test_round_trip_is_cheaper_than_a_full_decode_run(self, document):
        """One preempt/rejoin/step cycle vs the whole B×T session decode:
        if a single round-trip cost as much as decoding the entire workload,
        preemption would never pay for itself."""
        assert (
            document["ops"]["preempt_resume"]["min_s"]
            < document["ops"]["decode_session"]["min_s"]
        )

    def test_preempt_resume_is_gated(self, document):
        baseline = copy.deepcopy(document)
        baseline["ops"]["preempt_resume"]["min_s"] = (
            document["ops"]["preempt_resume"]["min_s"] / 10.0
        )
        failures = check_against_baseline(document, baseline, max_regression=2.0)
        assert len(failures) == 1
        assert "preempt_resume" in failures[0]

    def test_validation_rejects_missing_preempt_op(self, document):
        broken = copy.deepcopy(document)
        del broken["ops"]["preempt_resume"]
        with pytest.raises(ValueError):
            validate_profile_report(broken)
        broken = copy.deepcopy(document)
        del broken["decode"]["preempt_resume_s"]
        with pytest.raises(ValueError):
            validate_profile_report(broken)

    def test_summary_renders_the_preempt_line(self, document):
        assert "preempt/resume round-trip" in format_profile_summary(document)
