"""KV serialization: checksummed v4, raw v2/v3, per-layer payloads, legacy v1."""

import io
import json

import numpy as np
import pytest

from repro.kvstore.serialization import (
    KVCorruptionError,
    deserialize_kv,
    int8_scale,
    load_kv,
    pack_layer_kv,
    pack_layer_kv_int8,
    quantize_kv_to_store_dtype,
    save_kv,
    serialize_kv,
    unpack_layer_kv,
    unpack_layer_kv_int8,
)
from repro.model.tensors import KVCache, LayerKV


def _make_cache(n_tokens=6, n_layers=3, n_kv_heads=2, head_dim=4, seed=0) -> KVCache:
    rng = np.random.default_rng(seed)
    layers = [
        LayerKV(
            rng.normal(size=(n_tokens, n_kv_heads, head_dim)).astype(np.float32),
            rng.normal(size=(n_tokens, n_kv_heads, head_dim)).astype(np.float32),
        )
        for _ in range(n_layers)
    ]
    return KVCache(layers, np.arange(n_tokens), np.arange(3, 3 + n_tokens))


class TestRawFormatRoundTrip:
    def test_round_trip_preserves_structure_and_values(self):
        cache = _make_cache()
        restored = deserialize_kv(serialize_kv(cache))
        assert restored.n_layers == cache.n_layers
        assert restored.n_tokens == cache.n_tokens
        assert np.array_equal(restored.token_ids, cache.token_ids)
        assert np.array_equal(restored.positions, cache.positions)
        for layer, ref in zip(restored.layers, cache.layers):
            # The payload is fp16; values round-trip to fp16 precision.
            assert np.allclose(layer.keys, ref.keys, rtol=1e-2, atol=1e-2)
            assert np.allclose(layer.values, ref.values, rtol=1e-2, atol=1e-2)

    def test_payload_upcasts_to_float32_not_float64(self):
        restored = deserialize_kv(serialize_kv(_make_cache()))
        for layer in restored.layers:
            assert layer.keys.dtype == np.float32
            assert layer.values.dtype == np.float32

    def test_no_zip_container(self):
        """The raw payload has no np.savez zip archive inside."""
        payload = serialize_kv(_make_cache())
        assert payload.startswith(b"RPKV4\n")
        assert b"PK\x03\x04" not in payload  # zip local-file-header magic

    def test_header_describes_shapes(self):
        payload = serialize_kv(_make_cache(n_tokens=5, n_layers=2, n_kv_heads=3))
        header_len = int.from_bytes(payload[6:10], "little")
        header = json.loads(payload[10 : 10 + header_len])
        assert header["n_tokens"] == 5
        assert header["n_layers"] == 2
        assert header["n_kv_heads"] == 3
        assert header["kv_dtype"] == "float16"

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError):
            deserialize_kv(b"NOTAKV\x00\x00")

    def test_non_uniform_layer_shapes_rejected(self):
        layers = [
            LayerKV(np.ones((4, 2, 4)), np.ones((4, 2, 4))),
            LayerKV(np.ones((4, 1, 8)), np.ones((4, 1, 8))),
        ]
        cache = KVCache(layers, np.arange(4), np.arange(4))
        with pytest.raises(ValueError, match="uniform layer shapes"):
            serialize_kv(cache)

    def test_unknown_kv_dtype_rejected(self):
        """RPKV2 decodes fp16 payloads only — a tampered header is refused."""
        payload = bytearray(serialize_kv(_make_cache(), checksum=False))
        header_len = int.from_bytes(payload[6:10], "little")
        header = json.loads(payload[10 : 10 + header_len])
        header["kv_dtype"] = "int8"
        new_header = json.dumps(header).encode("utf-8")
        rebuilt = (
            bytes(payload[:6])
            + len(new_header).to_bytes(4, "little")
            + new_header
            + bytes(payload[10 + header_len :])
        )
        with pytest.raises(ValueError, match="kv_dtype"):
            deserialize_kv(rebuilt)

    def test_file_round_trip(self, tmp_path):
        cache = _make_cache()
        path = tmp_path / "cache.rpkv"
        nbytes = save_kv(cache, str(path))
        assert path.stat().st_size == nbytes
        restored = load_kv(str(path))
        assert restored.n_tokens == cache.n_tokens


class TestLayerPayloads:
    def test_pack_unpack_round_trip(self):
        layer = _make_cache(n_layers=1).layers[0]
        blob = pack_layer_kv(layer)
        restored = unpack_layer_kv(blob, layer.n_tokens, 2, 4)
        assert np.allclose(restored.keys, layer.keys, rtol=1e-2, atol=1e-2)
        assert np.allclose(restored.values, layer.values, rtol=1e-2, atol=1e-2)

    def test_blob_size_is_exactly_fp16_payload(self):
        layer = _make_cache(n_layers=1).layers[0]
        blob = pack_layer_kv(layer)
        assert len(blob) == 2 * layer.keys.size * 2  # K and V, 2 bytes each


class TestLegacyFormat:
    def _legacy_payload(self, cache: KVCache) -> bytes:
        """Re-create the RPKV1 (np.savez) wire format the old code wrote."""
        buffer = io.BytesIO()
        buffer.write(b"RPKV1\n")
        header = json.dumps(
            {"n_layers": cache.n_layers, "n_tokens": cache.n_tokens}
        ).encode("utf-8")
        buffer.write(len(header).to_bytes(4, "little"))
        buffer.write(header)
        arrays = {
            "token_ids": cache.token_ids.astype(np.int64),
            "positions": cache.positions.astype(np.int64),
        }
        for i, layer in enumerate(cache.layers):
            arrays[f"k{i}"] = layer.keys.astype(np.float16)
            arrays[f"v{i}"] = layer.values.astype(np.float16)
        np.savez(buffer, **arrays)
        return buffer.getvalue()

    def test_v1_still_readable(self):
        cache = _make_cache()
        restored = deserialize_kv(self._legacy_payload(cache))
        assert restored.n_layers == cache.n_layers
        assert np.array_equal(restored.token_ids, cache.token_ids)
        for layer, ref in zip(restored.layers, cache.layers):
            assert np.allclose(layer.keys, ref.keys, rtol=1e-2, atol=1e-2)


class TestInt8Format:
    def test_round_trip_within_quantisation_error(self):
        cache = _make_cache()
        restored = deserialize_kv(serialize_kv(cache, kv_dtype="int8"))
        assert restored.n_layers == cache.n_layers
        assert np.array_equal(restored.token_ids, cache.token_ids)
        assert np.array_equal(restored.positions, cache.positions)
        for layer, ref in zip(restored.layers, cache.layers):
            # Symmetric per-tensor quantisation: error bounded by scale/2.
            k_scale = float(int8_scale(ref.keys))
            v_scale = float(int8_scale(ref.values))
            assert np.abs(layer.keys - ref.keys).max() <= k_scale * 0.5 + 1e-7
            assert np.abs(layer.values - ref.values).max() <= v_scale * 0.5 + 1e-7
            assert layer.keys.dtype == np.float32

    def test_wire_matches_in_memory_quantisation(self):
        """serialize→deserialize produces bitwise what the in-memory
        quantize_kv_to_store_dtype round-trip produces — the invariant that
        keeps the fusion path and the byte-level load path identical."""
        cache = _make_cache(seed=7)
        via_wire = deserialize_kv(serialize_kv(cache, kv_dtype="int8"))
        in_memory = quantize_kv_to_store_dtype(cache, kv_dtype="int8")
        for a, b in zip(via_wire.layers, in_memory.layers):
            np.testing.assert_array_equal(a.keys, b.keys)
            np.testing.assert_array_equal(a.values, b.values)

    def test_payload_is_one_byte_per_element(self):
        cache = _make_cache(n_tokens=32)
        int8 = serialize_kv(cache, kv_dtype="int8", checksum=False)
        assert int8.startswith(b"RPKV3\n")
        header_len = int.from_bytes(int8[6:10], "little")
        kv_elements = sum(2 * layer.keys.size for layer in cache.layers)
        index_bytes = 2 * 8 * cache.n_tokens  # int64 token ids + positions
        scale_bytes = 8 * cache.n_layers  # one float32 (k, v) pair per layer
        assert len(int8) == 10 + header_len + index_bytes + scale_bytes + kv_elements

    def test_layer_pack_unpack_round_trip(self):
        layer = _make_cache(n_layers=1, seed=3).layers[0]
        blob = pack_layer_kv_int8(layer)
        restored = unpack_layer_kv_int8(blob, layer.n_tokens, 2, 4)
        k_scale = float(int8_scale(layer.keys))
        assert np.abs(restored.keys - layer.keys).max() <= k_scale * 0.5 + 1e-7

    def test_all_zero_tensor_survives(self):
        layers = [LayerKV(np.zeros((4, 2, 4)), np.zeros((4, 2, 4)))]
        cache = KVCache(layers, np.arange(4), np.arange(4))
        restored = deserialize_kv(serialize_kv(cache, kv_dtype="int8"))
        assert np.all(restored.layers[0].keys == 0.0)

    def test_legacy_writer_still_emits_v2_and_v3(self):
        assert serialize_kv(_make_cache(), checksum=False).startswith(b"RPKV2\n")
        assert serialize_kv(
            _make_cache(), kv_dtype="int8", checksum=False
        ).startswith(b"RPKV3\n")

    def test_unknown_store_dtype_rejected(self):
        with pytest.raises(ValueError, match="kv_dtype"):
            serialize_kv(_make_cache(), kv_dtype="int4")
        with pytest.raises(ValueError, match="kv_dtype"):
            quantize_kv_to_store_dtype(_make_cache(), kv_dtype="bfloat16")

    def test_file_round_trip(self, tmp_path):
        cache = _make_cache()
        path = tmp_path / "cache_int8.rpkv"
        nbytes = save_kv(cache, str(path), kv_dtype="int8")
        assert path.stat().st_size == nbytes
        assert path.read_bytes().startswith(b"RPKV4\n")
        restored = load_kv(str(path))
        assert restored.n_tokens == cache.n_tokens


class TestChecksum:
    """RPKV4: blake2b payload digest, typed corruption failures, back-compat."""

    def test_default_writes_v4_with_checksum_header(self):
        payload = serialize_kv(_make_cache())
        assert payload.startswith(b"RPKV4\n")
        header_len = int.from_bytes(payload[6:10], "little")
        header = json.loads(payload[10 : 10 + header_len])
        assert len(header["checksum"]) == 32  # 16-byte blake2b, hex

    @pytest.mark.parametrize("kv_dtype", ["float16", "int8"])
    def test_round_trip_both_dtypes(self, kv_dtype):
        cache = _make_cache(seed=11)
        restored = deserialize_kv(serialize_kv(cache, kv_dtype=kv_dtype))
        assert restored.n_layers == cache.n_layers
        assert np.array_equal(restored.token_ids, cache.token_ids)

    @pytest.mark.parametrize("kv_dtype", ["float16", "int8"])
    def test_flipped_payload_byte_raises_typed_error(self, kv_dtype):
        blob = bytearray(serialize_kv(_make_cache(), kv_dtype=kv_dtype))
        blob[-1] ^= 0xFF
        with pytest.raises(KVCorruptionError, match="checksum mismatch"):
            deserialize_kv(bytes(blob))

    def test_truncated_payload_raises_typed_error(self):
        blob = serialize_kv(_make_cache())
        with pytest.raises(KVCorruptionError):
            deserialize_kv(blob[:-8])

    def test_corruption_error_is_a_value_error(self):
        # Callers catching the historical ValueError keep working.
        assert issubclass(KVCorruptionError, ValueError)

    def test_header_tamper_detected_or_rejected(self):
        """Zeroing the checksum field makes the blob fail closed."""
        payload = bytearray(serialize_kv(_make_cache()))
        header_len = int.from_bytes(payload[6:10], "little")
        header = json.loads(payload[10 : 10 + header_len])
        header["checksum"] = "0" * len(header["checksum"])
        new_header = json.dumps(header).encode("utf-8")
        rebuilt = (
            bytes(payload[:6])
            + len(new_header).to_bytes(4, "little")
            + new_header
            + bytes(payload[10 + header_len :])
        )
        with pytest.raises(KVCorruptionError):
            deserialize_kv(rebuilt)

    @pytest.mark.parametrize("kv_dtype", ["float16", "int8"])
    def test_legacy_blobs_still_readable(self, kv_dtype):
        cache = _make_cache(seed=5)
        legacy = serialize_kv(cache, kv_dtype=kv_dtype, checksum=False)
        via_v4 = deserialize_kv(serialize_kv(cache, kv_dtype=kv_dtype))
        via_legacy = deserialize_kv(legacy)
        for a, b in zip(via_v4.layers, via_legacy.layers):
            np.testing.assert_array_equal(a.keys, b.keys)
            np.testing.assert_array_equal(a.values, b.values)
