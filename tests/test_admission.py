"""SLO admission control and decode preemption in continuous batching.

The acceptance claim lives in ``TestOverloadGoodput``: under a 2x-overload
burst, SLO admission plus preemption never serves fewer SLO-met requests
than the plain scheduler, and sheds the guaranteed-miss work instead of
queueing it.
"""

from dataclasses import replace

import pytest

from repro.kvstore.device import get_device
from repro.model.config import get_config
from repro.serving.costmodel import (
    OnlineCostCalibration,
    ServingCostModel,
    predict_first_token_time,
)
from repro.serving.engine import EngineResult, InferenceEngine
from repro.serving.request import GenerationRequest, RequestTiming
from repro.serving.scheduler import ContinuousBatchingScheduler
from repro.serving.simulator import LoadSimulator, WorkloadSpec


def _request(
    request_id: int,
    arrival: float = 0.0,
    deadline: float | None = None,
    priority: int = 0,
    n_chunks: int = 4,
    chunk_tokens: int = 256,
    n_output_tokens: int = 8,
) -> GenerationRequest:
    return GenerationRequest(
        request_id=request_id,
        n_chunks=n_chunks,
        chunk_tokens=chunk_tokens,
        n_suffix_tokens=24,
        n_output_tokens=n_output_tokens,
        arrival_time=arrival,
        deadline_s=deadline,
        priority=priority,
    )


def _result(ttft: float = 1.0, decode: float = 0.5) -> EngineResult:
    return EngineResult(
        scheme="cacheblend", gpu_time=ttft, ttft_service=ttft, decode_time=decode
    )


class TestRequestSLOFields:
    def test_deadline_validated(self):
        with pytest.raises(ValueError, match="deadline_s"):
            _request(0, deadline=0.0)

    def test_met_slo_semantics(self):
        served = RequestTiming(
            request_id=0, arrival_time=0.0, first_token_time=1.0, deadline_s=2.0
        )
        late = RequestTiming(
            request_id=1, arrival_time=0.0, first_token_time=3.0, deadline_s=2.0
        )
        rejected = RequestTiming(
            request_id=2, arrival_time=0.0, rejected=True, deadline_s=2.0
        )
        best_effort = RequestTiming(
            request_id=3, arrival_time=0.0, first_token_time=99.0
        )
        assert served.met_slo
        assert not late.met_slo
        assert not rejected.met_slo
        assert best_effort.met_slo


class TestPredictFirstTokenTime:
    def test_bare_request_is_its_own_service_time(self):
        assert predict_first_token_time(ttft_service=1.5) == pytest.approx(1.5)

    def test_backlog_and_decode_steps_add_up(self):
        predicted = predict_first_token_time(
            ttft_service=1.0,
            n_prefill_iters=4,
            prefill_backlog_s=2.0,
            n_decoding=3,
            analytic_decode_step_s=0.01,
        )
        assert predicted == pytest.approx(2.0 + 1.0 + 4 * 3 * 0.01)

    def test_measured_calibration_prices_one_batched_step(self):
        calibration = OnlineCostCalibration()
        calibration.observe_decode(0.02, batch_width=3)
        predicted = predict_first_token_time(
            ttft_service=1.0,
            n_prefill_iters=2,
            n_decoding=3,
            calibration=calibration,
            analytic_decode_step_s=100.0,  # must be ignored
        )
        assert predicted == pytest.approx(1.0 + 2 * 0.02)

    def test_validates_iterations(self):
        with pytest.raises(ValueError, match="n_prefill_iters"):
            predict_first_token_time(ttft_service=1.0, n_prefill_iters=0)


class TestAdmissionControl:
    def test_guaranteed_miss_is_rejected(self):
        # One long request saturates the server; the second wants its first
        # token in 0.5s but would wait ~10s behind the backlog.
        requests = [_request(0), _request(1, deadline=0.5)]
        results = [_result(ttft=10.0), _result(ttft=0.4)]
        scheduler = ContinuousBatchingScheduler(
            n_servers=1,
            max_batch_tokens=requests[0].n_total_tokens,
            admission_control=True,
        )
        timings = scheduler.schedule(requests, results)
        assert not timings[0].rejected
        assert timings[1].rejected
        assert not timings[1].met_slo
        # A rejection occupies no server time.
        assert timings[1].completion_time == timings[1].start_time

    def test_feasible_deadline_is_admitted(self):
        requests = [_request(0, deadline=60.0)]
        timings = ContinuousBatchingScheduler(
            n_servers=1, admission_control=True
        ).schedule(requests, [_result(ttft=1.0)])
        assert not timings[0].rejected
        assert timings[0].met_slo

    def test_best_effort_requests_are_never_rejected(self):
        requests = [_request(0), _request(1)]  # no deadlines
        results = [_result(ttft=50.0), _result(ttft=50.0)]
        timings = ContinuousBatchingScheduler(
            n_servers=1,
            max_batch_tokens=requests[0].n_total_tokens,
            admission_control=True,
        ).schedule(requests, results)
        assert not any(t.rejected for t in timings)

    def test_admission_off_serves_the_doomed_request_late(self):
        requests = [_request(0), _request(1, deadline=0.5)]
        results = [_result(ttft=10.0), _result(ttft=0.4)]
        timings = ContinuousBatchingScheduler(
            n_servers=1, max_batch_tokens=requests[0].n_total_tokens
        ).schedule(requests, results)
        assert not timings[1].rejected
        assert not timings[1].met_slo  # served, but past its deadline

    def test_all_rejected_queue_terminates(self):
        # Regression guard: a queue that is rejected wholesale must not
        # leave the scheduling loop spinning on an empty batch.
        requests = [_request(i, deadline=1e-6) for i in range(3)]
        results = [_result(ttft=5.0) for _ in requests]
        timings = ContinuousBatchingScheduler(
            n_servers=1, admission_control=True
        ).schedule(requests, results)
        assert all(t.rejected for t in timings)


class TestPreemption:
    def _scheduler(self, budget_requests: int = 1, **kwargs):
        tokens = _request(0).n_total_tokens
        return ContinuousBatchingScheduler(
            n_servers=1,
            max_batch_tokens=budget_requests * tokens,
            prefill_chunk_tokens=512,
            preemption=True,
            **kwargs,
        )

    def test_deadline_prefill_preempts_a_decode(self):
        # Request 0 is decoding when the deadline-carrying request 1
        # arrives; the budget holds one request, so 0 is paused.
        requests = [
            _request(0, n_output_tokens=40),
            _request(1, arrival=2.0, deadline=10.0, n_output_tokens=2),
        ]
        results = [_result(ttft=1.0, decode=4.0), _result(ttft=1.0, decode=0.1)]
        timings = self._scheduler().schedule(requests, results)
        assert timings[0].n_preemptions == 1
        assert timings[1].n_preemptions == 0
        # Both still complete, and the preempted decode resumed afterwards.
        assert timings[0].completion_time > timings[1].first_token_time
        assert timings[1].met_slo

    def test_preemption_cap_is_respected(self):
        # Three deadline bursts against one long decode with a cap of 1:
        # the decode is paused exactly once, then becomes immune.
        requests = [
            _request(0, n_output_tokens=200),
            _request(1, arrival=2.0, deadline=50.0, n_output_tokens=2),
            _request(2, arrival=4.0, deadline=50.0, n_output_tokens=2),
            _request(3, arrival=6.0, deadline=50.0, n_output_tokens=2),
        ]
        results = [_result(ttft=1.0, decode=20.0)] + [
            _result(ttft=1.0, decode=0.1) for _ in range(3)
        ]
        timings = self._scheduler(max_preemptions=1).schedule(requests, results)
        assert timings[0].n_preemptions == 1
        assert all(t.n_preemptions <= 1 for t in timings)
        assert all(t.completion_time > 0.0 for t in timings)

    def test_prefill_phase_requests_are_never_preempted_mid_prefill(self):
        # Request 0 is still prefilling when the deadline request arrives:
        # nothing is preemptible yet, so the newcomer waits and request 0's
        # first token lands exactly when its uninterrupted prefill ends.
        # (Once 0 reaches decode phase it *may* be paused — its TTFT is
        # already banked; only throughput is at stake.)
        requests = [
            _request(0, n_output_tokens=2),
            _request(1, arrival=0.1, deadline=60.0, n_output_tokens=2),
        ]
        results = [_result(ttft=5.0, decode=0.1), _result(ttft=1.0, decode=0.1)]
        timings = self._scheduler().schedule(requests, results)
        assert timings[0].first_token_time == pytest.approx(5.0)
        assert timings[1].start_time >= timings[0].first_token_time - 1e-9

    def test_higher_priority_decode_is_immune(self):
        requests = [
            _request(0, priority=5, n_output_tokens=40),
            _request(1, arrival=2.0, deadline=10.0, priority=0, n_output_tokens=2),
        ]
        results = [_result(ttft=1.0, decode=4.0), _result(ttft=1.0, decode=0.1)]
        timings = self._scheduler().schedule(requests, results)
        assert timings[0].n_preemptions == 0

    def test_preempted_decode_is_not_starved(self):
        # After the deadline burst drains, the paused decode resumes ahead
        # of any later best-effort arrival and completes.
        requests = [
            _request(0, n_output_tokens=40),
            _request(1, arrival=2.0, deadline=10.0, n_output_tokens=2),
            _request(2, arrival=2.5, n_output_tokens=2),
        ]
        results = [
            _result(ttft=1.0, decode=4.0),
            _result(ttft=1.0, decode=0.1),
            _result(ttft=1.0, decode=0.1),
        ]
        timings = self._scheduler().schedule(requests, results)
        assert timings[0].n_preemptions >= 1
        # The resumed decode finishes before the best-effort newcomer that
        # arrived while it was paused.
        assert timings[0].start_time < timings[2].start_time
        assert all(t.completion_time >= t.first_token_time - 1e-9 for t in timings)


class TestPausedBacklogAdmission:
    """Regression: the admission predictor must see the paused deque.

    Preempted decodes resume FIFO ahead of new admissions, so their
    remaining decode backlog delays a candidate's first token exactly like
    the active batch's does.  The pre-fix ``_admission_check`` ignored the
    paused deque entirely, making predictions optimistic right after a
    preemption — the second assertion below fails on that behaviour.
    """

    def _paused_decode(self, scheduler: ContinuousBatchingScheduler):
        # A decode-phase request (first token banked, 40 steps of 0.1s
        # left), as _preempt_for would park it on the paused deque.
        running = scheduler._make_running(
            0, _request(0, n_output_tokens=41), _result(ttft=1.0, decode=4.0), 0.0
        )
        running.remaining_prefill = 0.0
        return running

    def test_paused_decode_backlog_counts_against_the_deadline(self):
        from collections import deque

        scheduler = ContinuousBatchingScheduler(n_servers=1, admission_control=True)
        candidate = _request(1, deadline=1.15)
        result = _result(ttft=1.0)
        # Empty server: the candidate's first token is its own 1.0s prefill.
        assert scheduler._admission_check(candidate, result, 0.0, [], deque())
        # Same instant, but a paused decode will re-join ahead of the
        # candidate: each of the 3 prefill iterations now pays one 0.1s
        # co-batched decode step, predicting 1.3s > the 1.15s deadline.
        paused = deque([self._paused_decode(scheduler)])
        assert not scheduler._admission_check(candidate, result, 0.0, [], paused)

    def test_paused_and_active_decodes_are_priced_alike(self):
        from collections import deque

        scheduler = ContinuousBatchingScheduler(n_servers=1, admission_control=True)
        candidate = _request(1, deadline=1.15)
        result = _result(ttft=1.0)
        as_active = scheduler._admission_check(
            candidate, result, 0.0, [self._paused_decode(scheduler)], deque()
        )
        as_paused = scheduler._admission_check(
            candidate, result, 0.0, [], deque([self._paused_decode(scheduler)])
        )
        assert as_active == as_paused


class TestOverloadGoodput:
    """2x overload: admission + preemption >= plain scheduling on goodput."""

    @pytest.fixture(scope="class")
    def overload(self):
        cost_model = ServingCostModel(get_config("mistral-7b"))
        engine = InferenceEngine(
            cost_model, scheme="cacheblend", device=get_device("nvme_ssd")
        )
        simulator = LoadSimulator(engine, WorkloadSpec(n_output_tokens=48), seed=13)
        # Arrival rate far beyond one server's service rate.
        requests = [
            replace(r, deadline_s=8.0)
            for r in simulator.generate_requests(6.0, 80)
        ]
        results = engine.serve_batch(requests)
        return requests, results

    @staticmethod
    def _goodput(timings) -> float:
        served = [t for t in timings if not t.rejected]
        if not served:
            return 0.0
        makespan = max(t.completion_time for t in served)
        return sum(t.met_slo for t in timings) / makespan if makespan else 0.0

    def test_admission_and_preemption_strictly_improve_goodput(self, overload):
        requests, results = overload
        plain = ContinuousBatchingScheduler(n_servers=1).schedule(requests, results)
        robust = ContinuousBatchingScheduler(
            n_servers=1, admission_control=True, preemption=True
        ).schedule(requests, results)
        assert self._goodput(robust) > self._goodput(plain)
        # Preempting clogging decodes lets at-risk prefills through, so far
        # more requests land their first token within the SLO.
        assert sum(t.met_slo for t in robust) > sum(t.met_slo for t in plain)

    def test_admission_alone_sheds_doomed_load(self, overload):
        requests, results = overload
        plain = ContinuousBatchingScheduler(n_servers=1).schedule(requests, results)
        shedding = ContinuousBatchingScheduler(
            n_servers=1, admission_control=True
        ).schedule(requests, results)
        # Without preemption the backlog is real: the controller rejects the
        # guaranteed misses instead of queueing them...
        assert sum(t.rejected for t in shedding) > 0
        # ...and what it does serve, it serves within the SLO far more
        # reliably than the plain scheduler serves its unfiltered queue.
        served = [t for t in shedding if not t.rejected]
        met_fraction = sum(t.met_slo for t in served) / len(served)
        plain_met_fraction = sum(t.met_slo for t in plain) / len(plain)
        assert met_fraction > plain_met_fraction
        assert self._goodput(shedding) > self._goodput(plain)

    def test_invariants_hold_under_overload(self, overload):
        requests, results = overload
        scheduler = ContinuousBatchingScheduler(
            n_servers=2, admission_control=True, preemption=True, max_preemptions=2
        )
        timings = scheduler.schedule(requests, results)
        assert len(timings) == len(requests)
        for timing in timings:
            assert timing.n_preemptions <= scheduler.max_preemptions
            if timing.rejected:
                assert timing.completion_time == timing.start_time
            else:
                assert timing.first_token_time >= timing.start_time - 1e-9
                assert timing.completion_time >= timing.first_token_time - 1e-9
                assert timing.start_time >= timing.arrival_time - 1e-12
