"""Positional re-alignment of chunk KV caches (RoPE shift)."""

import numpy as np
import pytest

from repro.core.positional import concat_chunk_caches, realign_chunk_cache
from repro.model.config import get_config
from repro.model.transformer import TransformerModel


@pytest.fixture(scope="module")
def model() -> TransformerModel:
    return TransformerModel(get_config("tiny"), seed=0)


@pytest.fixture(scope="module")
def chunk_cache(model):
    token_ids = np.arange(10, 22, dtype=np.int64)
    return model.chunk_prefill(token_ids, start_position=0)


class TestRealignChunkCache:
    def test_same_start_is_identity(self, chunk_cache):
        realigned = realign_chunk_cache(chunk_cache, 0)
        for layer, ref in zip(realigned.layers, chunk_cache.layers):
            assert np.allclose(layer.keys, ref.keys)
            assert np.allclose(layer.values, ref.values)

    def test_positions_updated_and_values_untouched(self, chunk_cache):
        realigned = realign_chunk_cache(chunk_cache, 7)
        assert realigned.positions.tolist() == list(range(7, 7 + chunk_cache.n_tokens))
        for layer, ref in zip(realigned.layers, chunk_cache.layers):
            assert np.allclose(layer.values, ref.values)
            assert not np.allclose(layer.keys, ref.keys)

    def test_matches_direct_prefill_at_offset(self, model, chunk_cache):
        """Realigned keys equal the keys of prefilling at the new offset.

        The paper's Appendix A argument: rotating stored keys by the position
        delta is an exact correction, because only the key projection input
        (not the rotation) depends on absolute position.
        """
        offset = 5
        direct = model.chunk_prefill(chunk_cache.token_ids, start_position=offset)
        realigned = realign_chunk_cache(
            chunk_cache, offset, model.config.rope_theta
        )
        # The compute path runs in float32; the correction is exact up to
        # fp32 rounding of the stored keys.
        for layer, ref in zip(realigned.layers, direct.layers):
            assert np.allclose(layer.keys, ref.keys, atol=1e-5)

    def test_realignment_composes(self, chunk_cache, model):
        theta = model.config.rope_theta
        via_two_steps = realign_chunk_cache(
            realign_chunk_cache(chunk_cache, 3, theta), 9, theta
        )
        direct = realign_chunk_cache(chunk_cache, 9, theta)
        for layer, ref in zip(via_two_steps.layers, direct.layers):
            assert np.allclose(layer.keys, ref.keys, atol=1e-5)

    def test_empty_cache_rejected(self, model):
        from repro.model.tensors import KVCache

        with pytest.raises(ValueError):
            realign_chunk_cache(KVCache([]), 0)


class TestConcatChunkCaches:
    def test_concatenation_is_contiguous(self, model):
        a = model.chunk_prefill(np.arange(5, dtype=np.int64))
        b = model.chunk_prefill(np.arange(7, dtype=np.int64))
        combined = concat_chunk_caches([a, b], model.config.rope_theta)
        assert combined.n_tokens == 12
        assert combined.positions.tolist() == list(range(12))
