"""Rejected-request accounting in the serving metrics.

Regression suite for two accounting bugs: rejected requests used to drag
the TTFT percentiles toward zero (their timestamps all equal the rejection
instant) and their never-executed EngineResults used to count as GPU busy
time; and ``gpu_utilisation`` used to be silently clamped to 1.0, masking
genuine overcommit.  Both tests fail on the pre-fix behaviour.
"""

from dataclasses import replace

import pytest

from repro.kvstore.device import get_device
from repro.model.config import get_config
from repro.serving.costmodel import ServingCostModel
from repro.serving.engine import EngineResult, InferenceEngine
from repro.serving.request import GenerationRequest, RequestTiming
from repro.serving.scheduler import ContinuousBatchingScheduler, FCFSScheduler
from repro.serving.simulator import LoadSimulator, WorkloadSpec, summarise_run


def _request(request_id: int, arrival: float = 0.0) -> GenerationRequest:
    return GenerationRequest(request_id=request_id, arrival_time=arrival)


def _result(ttft: float, decode: float = 0.0) -> EngineResult:
    return EngineResult(
        scheme="cacheblend", gpu_time=ttft, ttft_service=ttft, decode_time=decode
    )


def _served(request_id: int, arrival: float, start: float, ttft: float,
            completion: float) -> RequestTiming:
    return RequestTiming(
        request_id=request_id,
        arrival_time=arrival,
        start_time=start,
        first_token_time=arrival + ttft,
        completion_time=completion,
    )


def _rejected(request_id: int, instant: float) -> RequestTiming:
    return RequestTiming(
        request_id=request_id,
        arrival_time=instant,
        start_time=instant,
        first_token_time=instant,
        completion_time=instant,
        rejected=True,
    )


class TestRejectedExcludedFromSummary:
    """The regression: rejections must not leak into served-side metrics."""

    @pytest.fixture()
    def summary(self):
        requests = [_request(0), _request(1), _request(2, arrival=0.5)]
        # The rejected request carries a huge EngineResult: service that
        # never happened must not count as busy time.
        results = [_result(1.0), _result(2.0), _result(100.0, decode=100.0)]
        timings = [
            _served(0, arrival=0.0, start=0.0, ttft=1.0, completion=1.0),
            _served(1, arrival=0.0, start=1.0, ttft=2.0, completion=3.0),
            _rejected(2, instant=0.5),
        ]
        return summarise_run(requests, results, timings, n_servers=1)

    def test_ttft_percentiles_cover_served_requests_only(self, summary):
        # Pre-fix, the rejection's ~0 TTFT dragged the mean to 1.0.
        assert summary.mean_ttft == pytest.approx(1.5)
        assert summary.p50_ttft == pytest.approx(1.5)
        assert summary.p99_ttft <= 2.0 + 1e-9

    def test_rejected_occupancy_is_not_busy_time(self, summary):
        # Served busy = 1.0 + 2.0 over a makespan of 3.0; the rejection's
        # 200s EngineResult would have blown utilisation past 60x.
        assert summary.gpu_utilisation == pytest.approx(3.0 / 3.0)

    def test_rejections_are_counted(self, summary):
        assert summary.n_rejected == 1
        assert summary.throughput == pytest.approx(2 / 3.0)

    def test_all_rejected_run_degenerates_cleanly(self):
        requests = [_request(0), _request(1, arrival=1.0)]
        results = [_result(5.0), _result(5.0)]
        timings = [_rejected(0, 0.0), _rejected(1, 1.0)]
        summary = summarise_run(requests, results, timings, n_servers=1)
        assert summary.n_rejected == 2
        assert summary.mean_ttft == 0.0
        assert summary.throughput == 0.0
        assert summary.gpu_utilisation == 0.0
        assert summary.makespan == pytest.approx(1.0)


class TestUnclampedUtilisation:
    def test_overcommit_is_reported_not_clamped(self):
        # Two requests whose combined occupancy exceeds the single-server
        # makespan: the pre-fix min(1.0, ...) silently hid this.
        requests = [_request(0), _request(1)]
        results = [_result(2.0), _result(2.0)]
        timings = [
            _served(0, arrival=0.0, start=0.0, ttft=2.0, completion=2.0),
            _served(1, arrival=0.0, start=0.0, ttft=2.0, completion=2.0),
        ]
        summary = summarise_run(requests, results, timings, n_servers=1)
        assert summary.gpu_utilisation == pytest.approx(2.0)

    def test_fcfs_utilisation_is_bounded_by_construction(self):
        """Where occupancy genuinely serialises, the unclamped value still
        lands in [0, 1] — the clamp never had legitimate work to do."""
        engine = InferenceEngine(
            ServingCostModel(get_config("mistral-7b")),
            scheme="cacheblend",
            device=get_device("nvme_ssd"),
        )
        simulator = LoadSimulator(engine, n_servers=1, seed=3)
        result = simulator.run(request_rate=2.0, n_requests=50)
        assert 0.0 < result.gpu_utilisation <= 1.0 + 1e-9


class TestAdmissionControlEndToEnd:
    """LoadSimulator + admission-controlled continuous batching, overloaded."""

    def _simulator(self, seed: int = 7) -> LoadSimulator:
        engine = InferenceEngine(
            ServingCostModel(get_config("mistral-7b")),
            scheme="cacheblend",
            device=get_device("nvme_ssd"),
        )
        return LoadSimulator(
            engine,
            WorkloadSpec(n_output_tokens=48, ttft_slo_s=6.0),
            seed=seed,
            scheduler=ContinuousBatchingScheduler(n_servers=1, admission_control=True),
        )

    @pytest.fixture(scope="class")
    def overloaded(self):
        return self._simulator().run(request_rate=6.0, n_requests=60)

    def test_workload_spec_stamps_the_deadline(self):
        requests = self._simulator().generate_requests(1.0, 5)
        assert all(r.deadline_s == 6.0 for r in requests)

    def test_overload_sheds_requests(self, overloaded):
        assert overloaded.n_rejected > 0
        assert sum(t.rejected for t in overloaded.timings) == overloaded.n_rejected

    def test_rejected_stay_in_timings_but_out_of_percentiles(self, overloaded):
        assert len(overloaded.timings) == overloaded.n_requests
        served_ttfts = [t.ttft for t in overloaded.timings if not t.rejected]
        # Every served percentile is reachable from served TTFTs alone; the
        # near-zero rejection TTFTs would otherwise pull p50 below min(served).
        assert overloaded.p50_ttft >= min(served_ttfts) - 1e-9
        assert overloaded.p99_ttft <= max(served_ttfts) + 1e-9
        assert overloaded.mean_ttft >= min(served_ttfts) - 1e-9

    def test_throughput_counts_served_requests_only(self, overloaded):
        served = overloaded.n_requests - overloaded.n_rejected
        makespan = max(t.completion_time for t in overloaded.timings) - min(
            t.arrival_time for t in overloaded.timings
        )
        assert overloaded.throughput == pytest.approx(served / makespan)

    def test_utilisation_stays_bounded_under_shedding(self, overloaded):
        assert 0.0 < overloaded.gpu_utilisation <= 1.0 + 1e-6

    def test_run_is_deterministic_under_a_fixed_seed(self):
        a = self._simulator(seed=11).run(request_rate=6.0, n_requests=40)
        b = self._simulator(seed=11).run(request_rate=6.0, n_requests=40)
        assert a.n_rejected == b.n_rejected
        assert a.mean_ttft == b.mean_ttft
        assert a.p99_ttft == b.p99_ttft
        assert [t.ttft for t in a.timings] == [t.ttft for t in b.timings]

    def test_slo_free_workload_rejects_nothing(self):
        engine = InferenceEngine(
            ServingCostModel(get_config("mistral-7b")),
            scheme="cacheblend",
            device=get_device("nvme_ssd"),
        )
        simulator = LoadSimulator(
            engine,
            WorkloadSpec(n_output_tokens=48),  # no ttft_slo_s
            seed=7,
            scheduler=ContinuousBatchingScheduler(n_servers=1, admission_control=True),
        )
        result = simulator.run(request_rate=6.0, n_requests=40)
        assert result.n_rejected == 0


class TestFCFSRejectionSafety:
    def test_fcfs_never_rejects_so_summary_matches_legacy(self):
        requests = [_request(i, arrival=float(i)) for i in range(5)]
        results = [_result(0.5, decode=0.1) for _ in requests]
        timings = FCFSScheduler(n_servers=1).schedule(requests, results)
        summary = summarise_run(requests, results, timings, n_servers=1)
        assert summary.n_rejected == 0
        assert summary.throughput > 0.0


class TestDeadlinePlumbing:
    def test_slo_spec_validation_happens_at_request_level(self):
        with pytest.raises(ValueError):
            replace(_request(0), deadline_s=0.0)
