"""KV deviation and attention deviation metrics."""

import numpy as np
import pytest

from repro.core.deviation import (
    attention_deviation,
    deviation_cdf,
    layer_rank_correlation,
    token_kv_deviation,
)
from repro.model.tensors import LayerKV


def _layer(keys: np.ndarray, values: np.ndarray) -> LayerKV:
    return LayerKV(keys, values)


class TestTokenKVDeviation:
    def test_zero_for_identical_layers(self):
        rng = np.random.default_rng(0)
        keys = rng.normal(size=(5, 2, 4))
        values = rng.normal(size=(5, 2, 4))
        deviation = token_kv_deviation(_layer(keys, values), _layer(keys, values))
        assert deviation.shape == (5,)
        assert np.allclose(deviation, 0.0)

    def test_known_value_single_token(self):
        keys = np.zeros((1, 1, 4))
        values = np.zeros((1, 1, 4))
        ref_keys = np.zeros((1, 1, 4))
        ref_keys[0, 0, 0] = 3.0
        ref_values = np.zeros((1, 1, 4))
        ref_values[0, 0, 1] = 4.0
        deviation = token_kv_deviation(
            _layer(keys, values), _layer(ref_keys, ref_values)
        )
        # L2 norm of key diff (3) plus L2 norm of value diff (4).
        assert deviation[0] == pytest.approx(7.0)

    def test_only_perturbed_token_deviates(self):
        rng = np.random.default_rng(1)
        keys = rng.normal(size=(6, 2, 4))
        values = rng.normal(size=(6, 2, 4))
        perturbed_keys = keys.copy()
        perturbed_keys[3] += 1.0
        deviation = token_kv_deviation(
            _layer(perturbed_keys, values), _layer(keys, values)
        )
        assert deviation[3] > 0.0
        mask = np.ones(6, dtype=bool)
        mask[3] = False
        assert np.allclose(deviation[mask], 0.0)

    def test_shape_mismatch_raises(self):
        a = _layer(np.zeros((3, 2, 4)), np.zeros((3, 2, 4)))
        b = _layer(np.zeros((4, 2, 4)), np.zeros((4, 2, 4)))
        with pytest.raises(ValueError):
            token_kv_deviation(a, b)


class TestAttentionDeviation:
    def test_zero_for_identical_matrices(self):
        a = np.random.default_rng(0).random((4, 10))
        assert attention_deviation(a, a) == pytest.approx(0.0)

    def test_normalised_by_reference_norm(self):
        reference = np.eye(4)
        attention = 2.0 * np.eye(4)
        raw = attention_deviation(attention, reference, normalise=False)
        normalised = attention_deviation(attention, reference, normalise=True)
        assert raw == pytest.approx(2.0)
        assert normalised == pytest.approx(1.0)

    def test_rank_correlation_of_identical_rankings(self):
        deviation = np.array([0.1, 3.0, 0.5, 2.0])
        assert layer_rank_correlation(deviation, 2 * deviation) == pytest.approx(1.0)

    def test_rank_correlation_of_reversed_rankings(self):
        deviation = np.array([1.0, 2.0, 3.0, 4.0])
        assert layer_rank_correlation(deviation, deviation[::-1]) == pytest.approx(-1.0)


class TestLayerRankCorrelationEdgeCases:
    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError, match="same shape"):
            layer_rank_correlation(np.ones(4), np.ones(5))

    def test_fewer_than_two_tokens_raises(self):
        with pytest.raises(ValueError, match="at least two"):
            layer_rank_correlation(np.ones(1), np.ones(1))

    def test_constant_input_returns_zero(self):
        constant = np.full(6, 0.25)
        varying = np.arange(6, dtype=np.float64)
        assert layer_rank_correlation(constant, varying) == 0.0
        assert layer_rank_correlation(varying, constant) == 0.0


class TestDeviationCDF:
    def test_shapes_and_quantile_range(self):
        rng = np.random.default_rng(0)
        values, quantiles = deviation_cdf(rng.random(100), n_points=25)
        assert values.shape == (25,)
        assert quantiles.shape == (25,)
        assert quantiles[0] == 0.0
        assert quantiles[-1] == 1.0

    def test_values_are_monotone_and_span_the_sample(self):
        deviation = np.array([3.0, 1.0, 4.0, 1.5, 9.0, 2.6])
        values, _ = deviation_cdf(deviation)
        assert np.all(np.diff(values) >= 0.0)
        assert values[0] == pytest.approx(deviation.min())
        assert values[-1] == pytest.approx(deviation.max())

    def test_heavy_tail_is_visible(self):
        # 90% tiny deviations, 10% large: the CDF median sits near zero
        # while the top decile carries the mass (the paper's Figure 7 shape).
        deviation = np.concatenate([np.full(90, 0.01), np.full(10, 1.0)])
        values, quantiles = deviation_cdf(deviation, n_points=101)
        assert values[np.searchsorted(quantiles, 0.5)] == pytest.approx(0.01)
        assert values[-1] == pytest.approx(1.0)

    def test_empty_input_raises(self):
        with pytest.raises(ValueError, match="empty"):
            deviation_cdf(np.array([]))
