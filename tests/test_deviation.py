"""KV deviation and attention deviation metrics."""

import numpy as np
import pytest

from repro.core.deviation import (
    attention_deviation,
    layer_rank_correlation,
    token_kv_deviation,
)
from repro.model.tensors import LayerKV


def _layer(keys: np.ndarray, values: np.ndarray) -> LayerKV:
    return LayerKV(keys, values)


class TestTokenKVDeviation:
    def test_zero_for_identical_layers(self):
        rng = np.random.default_rng(0)
        keys = rng.normal(size=(5, 2, 4))
        values = rng.normal(size=(5, 2, 4))
        deviation = token_kv_deviation(_layer(keys, values), _layer(keys, values))
        assert deviation.shape == (5,)
        assert np.allclose(deviation, 0.0)

    def test_known_value_single_token(self):
        keys = np.zeros((1, 1, 4))
        values = np.zeros((1, 1, 4))
        ref_keys = np.zeros((1, 1, 4))
        ref_keys[0, 0, 0] = 3.0
        ref_values = np.zeros((1, 1, 4))
        ref_values[0, 0, 1] = 4.0
        deviation = token_kv_deviation(
            _layer(keys, values), _layer(ref_keys, ref_values)
        )
        # L2 norm of key diff (3) plus L2 norm of value diff (4).
        assert deviation[0] == pytest.approx(7.0)

    def test_only_perturbed_token_deviates(self):
        rng = np.random.default_rng(1)
        keys = rng.normal(size=(6, 2, 4))
        values = rng.normal(size=(6, 2, 4))
        perturbed_keys = keys.copy()
        perturbed_keys[3] += 1.0
        deviation = token_kv_deviation(
            _layer(perturbed_keys, values), _layer(keys, values)
        )
        assert deviation[3] > 0.0
        mask = np.ones(6, dtype=bool)
        mask[3] = False
        assert np.allclose(deviation[mask], 0.0)

    def test_shape_mismatch_raises(self):
        a = _layer(np.zeros((3, 2, 4)), np.zeros((3, 2, 4)))
        b = _layer(np.zeros((4, 2, 4)), np.zeros((4, 2, 4)))
        with pytest.raises(ValueError):
            token_kv_deviation(a, b)


class TestAttentionDeviation:
    def test_zero_for_identical_matrices(self):
        a = np.random.default_rng(0).random((4, 10))
        assert attention_deviation(a, a) == pytest.approx(0.0)

    def test_normalised_by_reference_norm(self):
        reference = np.eye(4)
        attention = 2.0 * np.eye(4)
        raw = attention_deviation(attention, reference, normalise=False)
        normalised = attention_deviation(attention, reference, normalise=True)
        assert raw == pytest.approx(2.0)
        assert normalised == pytest.approx(1.0)

    def test_rank_correlation_of_identical_rankings(self):
        deviation = np.array([0.1, 3.0, 0.5, 2.0])
        assert layer_rank_correlation(deviation, 2 * deviation) == pytest.approx(1.0)

    def test_rank_correlation_of_reversed_rankings(self):
        deviation = np.array([1.0, 2.0, 3.0, 4.0])
        assert layer_rank_correlation(deviation, deviation[::-1]) == pytest.approx(-1.0)
