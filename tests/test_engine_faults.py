"""BlendEngine under store faults: retry, recompute fallback, correctness.

The PR's acceptance check lives in ``TestBitwiseCorrectness``: with a 5%
fault-injecting store, every request completes and its fused KV plus
generated tokens are bitwise identical to a fault-free engine's — faults
cost TTFT (counted fallbacks and retry delay), never correctness.
"""

import numpy as np
import pytest

from repro.core.blend_engine import BlendEngine, LookupRetryPolicy, _FAULT_STAT_KEYS
from repro.kvstore.faults import ALL_FAULT_KINDS, FaultConfig, FaultKind, FaultyStore

CHUNKS = [
    "retrieval augmented generation reuses text chunks across many queries",
    "the kv cache of every chunk is precomputed once and stored on disk",
    "selective recompute fixes the cross attention between fused chunks",
]
QUESTION = "what survives an unreliable store?"


def _engine(
    rate: float = 0.0,
    kinds=ALL_FAULT_KINDS,
    seed: int = 0,
    retry_policy: LookupRetryPolicy | None = None,
    **fault_kw,
) -> BlendEngine:
    faults = FaultConfig(rate=rate, kinds=kinds, seed=seed, **fault_kw) if rate else None
    return BlendEngine.build(
        paper_model="Mistral-7B",
        device="cpu_ram",
        seed=0,
        faults=faults,
        retry_policy=retry_policy,
    )


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="max_retries"):
            LookupRetryPolicy(max_retries=-1)
        with pytest.raises(ValueError, match="backoff_s"):
            LookupRetryPolicy(backoff_s=-0.1)
        with pytest.raises(ValueError, match="timeout_s"):
            LookupRetryPolicy(timeout_s=0.0)

    def test_build_wraps_the_store_only_when_faults_are_on(self):
        assert isinstance(_engine(rate=0.2).kv_store, FaultyStore)
        assert not isinstance(_engine().kv_store, FaultyStore)
        assert not isinstance(
            BlendEngine.build(
                paper_model="Mistral-7B", device="cpu_ram", faults=FaultConfig(rate=0.0)
            ).kv_store,
            FaultyStore,
        )


class TestRetryAndFallback:
    def test_transient_faults_are_retried_through(self):
        # rate=1.0 would fault every attempt; a moderate rate lets retries
        # land. With 3 attempts per lookup at rate 0.5 almost every chunk
        # resolves without fallback.
        engine = _engine(rate=0.5, kinds=(FaultKind.TRANSIENT_MISS,), seed=3)
        engine.precompute_chunks(CHUNKS)
        engine.reset_cache_stats()
        result = engine.run(CHUNKS, QUESTION)
        stats = result.cache_stats
        assert stats["fault_transients"] > 0
        assert stats["fault_retries"] > 0
        # Retries resolved the lookups: the entries were all cached.
        assert stats["hits"] + stats["fault_fallbacks"] == len(CHUNKS)
        assert stats["misses"] == 0

    def test_exhausted_retries_fall_back_to_recompute(self):
        engine = _engine(rate=1.0, kinds=(FaultKind.READ_TIMEOUT,))
        engine.precompute_chunks(CHUNKS[:2])
        engine.reset_cache_stats()
        result = engine.run(CHUNKS[:2], QUESTION)
        stats = result.cache_stats
        # Every attempt timed out: both chunks were recomputed, and the
        # fallback is counted as such — not as a cache miss.
        assert stats["fault_fallbacks"] == 2
        assert stats["fallback_recompute_tokens"] > 0
        assert stats["misses"] == 0
        assert stats["miss_tokens"] == stats["fallback_recompute_tokens"]
        assert stats["fault_timeouts"] == 2 * (engine.retry_policy.max_retries + 1)
        assert len(result.fusion.kv_cache.token_ids) > 0

    def test_corruption_is_detected_and_recovered(self):
        engine = _engine(rate=1.0, kinds=(FaultKind.CORRUPT_PAYLOAD,))
        engine.precompute_chunks(CHUNKS[:1])
        engine.reset_cache_stats()
        result = engine.run(CHUNKS[:1], QUESTION)
        assert result.cache_stats["fault_corruptions"] > 0
        assert result.cache_stats["fault_fallbacks"] == 1

    def test_fallback_prices_the_recompute_into_ttft(self):
        faulty = _engine(rate=1.0, kinds=(FaultKind.READ_TIMEOUT,))
        clean = _engine()
        for engine in (faulty, clean):
            engine.precompute_chunks(CHUNKS)
        faulty_ttft = faulty.run(CHUNKS, QUESTION).ttft
        clean_ttft = clean.run(CHUNKS, QUESTION).ttft
        # The fallback recompute plus the waited-out timeouts must show up.
        assert faulty_ttft > clean_ttft

    def test_slow_reads_are_priced_not_retried(self):
        # A mildly slow read (below timeout_s) is served, its excess delay
        # charged — no retry, no fallback.
        engine = _engine(
            rate=1.0, kinds=(FaultKind.SLOW_READ,), slow_read_delay_s=0.01
        )
        engine.precompute_chunks(CHUNKS[:1])
        engine.reset_cache_stats()
        result = engine.run(CHUNKS[:1], QUESTION)
        assert result.cache_stats["hits"] == 1
        assert result.cache_stats["fault_fallbacks"] == 0
        assert result.cache_stats["fault_retries"] == 0

    def test_slow_read_beyond_timeout_is_cut_off(self):
        engine = _engine(
            rate=1.0,
            kinds=(FaultKind.SLOW_READ,),
            slow_read_delay_s=10.0,
            retry_policy=LookupRetryPolicy(timeout_s=0.1),
        )
        engine.precompute_chunks(CHUNKS[:1])
        engine.reset_cache_stats()
        result = engine.run(CHUNKS[:1], QUESTION)
        assert result.cache_stats["fault_timeouts"] > 0
        assert result.cache_stats["fault_fallbacks"] == 1

    def test_clean_miss_is_not_a_fault(self):
        engine = _engine(rate=1.0)  # faults only fire on hits
        engine.reset_cache_stats()
        result = engine.run(CHUNKS[:1], QUESTION)
        assert result.cache_stats["misses"] == 1
        assert all(result.cache_stats[key] == 0 for key in _FAULT_STAT_KEYS)


class TestFaultAccounting:
    def test_engine_global_counters_aggregate_across_requests(self):
        engine = _engine(rate=1.0, kinds=(FaultKind.READ_TIMEOUT,))
        engine.precompute_chunks(CHUNKS[:2])
        engine.reset_cache_stats()
        engine.run(CHUNKS[:1], QUESTION)
        engine.run(CHUNKS[1:2], QUESTION)
        stats = engine.cache_stats
        assert stats["fault_fallbacks"] == 2
        # The injector's own per-kind counts are surfaced alongside.
        assert stats["injected_read_timeout"] > 0
        assert stats["injected_total"] == stats["injected_read_timeout"]

    def test_reset_clears_fault_counters(self):
        engine = _engine(rate=1.0, kinds=(FaultKind.READ_TIMEOUT,))
        engine.precompute_chunks(CHUNKS[:1])
        engine.run(CHUNKS[:1], QUESTION)
        engine.reset_cache_stats()
        stats = engine.cache_stats
        assert all(stats[key] == 0 for key in _FAULT_STAT_KEYS)
        assert stats["injected_total"] == 0

    def test_clean_engine_still_reports_zeroed_fault_keys(self):
        engine = _engine()
        engine.reset_cache_stats()
        result = engine.run(CHUNKS[:1], QUESTION)
        for key in _FAULT_STAT_KEYS:
            assert result.cache_stats[key] == 0
            assert engine.cache_stats[key] == 0
        # No injector on a clean store, so no injected_* keys.
        assert "injected_total" not in engine.cache_stats


class TestBitwiseCorrectness:
    """Acceptance: 5% injected faults, output bitwise equal to fault-free."""

    @pytest.fixture(scope="class")
    def engines(self):
        clean = _engine()
        faulty = _engine(rate=0.05, seed=11)
        for engine in (clean, faulty):
            engine.precompute_chunks(CHUNKS)
        return clean, faulty

    def test_generations_are_bitwise_identical_under_faults(self, engines):
        clean, faulty = engines
        questions = [f"question number {i} about the chunks" for i in range(8)]
        injected_before = faulty.kv_store.fault_stats.total
        for question in questions:
            want = clean.run(CHUNKS, question, max_new_tokens=4)
            got = faulty.run(CHUNKS, question, max_new_tokens=4)
            assert got.generated_ids == want.generated_ids
            fused_want, fused_got = want.fusion.kv_cache, got.fusion.kv_cache
            np.testing.assert_array_equal(fused_got.token_ids, fused_want.token_ids)
            for got_layer, want_layer in zip(fused_got.layers, fused_want.layers):
                np.testing.assert_array_equal(got_layer.keys, want_layer.keys)
                np.testing.assert_array_equal(got_layer.values, want_layer.values)
        # The run actually exercised the fault path (rate 0.05 over
        # 8 requests x 3 chunk lookups makes >=1 injection overwhelmingly
        # likely with this seed; assert so a silent no-op can't pass).
        assert faulty.kv_store.fault_stats.total > injected_before

    def test_fallbacks_repair_the_store(self, engines):
        _, faulty = engines
        # After all the churn above every chunk is still resolvable.
        for text in CHUNKS:
            key = faulty.chunk_cache_key(faulty.encode(text))
            assert faulty.kv_store.inner.contains(key)
