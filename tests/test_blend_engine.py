"""End-to-end BlendEngine smoke tests on the NumPy proxy model."""

import pytest

from repro.core.blend_engine import BlendEngine

CHUNKS = [
    "retrieval augmented generation reuses text chunks across many queries",
    "the kv cache of every chunk is precomputed once and stored on disk",
    "selective recompute fixes the cross attention between fused chunks",
]


@pytest.fixture(scope="module")
def engine() -> BlendEngine:
    return BlendEngine.build(paper_model="Mistral-7B", device="nvme_ssd", seed=0)


class TestBlendEngineRun:
    def test_run_reports_misses_then_hits(self, engine):
        engine.kv_store.clear()
        engine.reset_cache_stats()
        first = engine.run(CHUNKS[:2], "what is reused?")
        assert first.cache_misses == 2
        assert first.cache_hits == 0
        second = engine.run(CHUNKS[:2], "what is reused?")
        assert second.cache_misses == 0
        assert second.cache_hits == 2

    def test_run_produces_positive_ttft_and_partial_recompute(self, engine):
        engine.precompute_chunks(CHUNKS)
        result = engine.run(CHUNKS, "how is cross attention fixed?")
        assert result.ttft > 0.0
        assert 0.0 < result.fusion.mean_recompute_fraction < 1.0
        assert result.n_context_tokens > 0
        assert result.n_suffix_tokens > 0

    def test_generation_decodes_tokens(self, engine):
        engine.precompute_chunks(CHUNKS[:1])
        result = engine.run(CHUNKS[:1], "what is stored?", max_new_tokens=3)
        assert 1 <= len(result.generated_ids) <= 3

    def test_run_batch_shares_the_store(self, engine):
        engine.kv_store.clear()
        engine.reset_cache_stats()
        batch = [
            (CHUNKS[:2], "first question"),
            (CHUNKS[:2], "second question"),
        ]
        results = engine.run_batch(batch)
        assert len(results) == 2
        # The second request finds both chunks cached by the first.
        assert results[1].cache_hits == 2
        stats = engine.cache_stats
        assert stats["hits"] == 2
        assert stats["misses"] == 2

    def test_tokenizer_encodings_are_memoized(self, engine):
        engine.reset_cache_stats()
        text = "a brand new text no other test encodes"
        first = engine.encode(text)
        second = engine.encode(text)
        assert second is first  # LRU hit returns the shared array
        assert not second.flags.writeable
        stats = engine.cache_stats
        assert stats["tokenizer_misses"] == 1
        assert stats["tokenizer_hits"] == 1

    def test_repeat_requests_hit_the_encoding_cache(self, engine):
        engine.precompute_chunks(CHUNKS[:2])
        engine.reset_cache_stats()
        engine.run(CHUNKS[:2], "same question twice")
        engine.run(CHUNKS[:2], "same question twice")
        stats = engine.cache_stats
        # Second request re-encodes nothing: two chunks plus the question hit.
        assert stats["tokenizer_hits"] >= 3

    def test_per_request_stats_are_counted_locally(self, engine):
        """Regression: per-request cache stats must not be derived by diffing
        the engine-global counters, or interleaved batches cross-contaminate.

        The global counters are deliberately pre-warmed and left hot while the
        batch runs; every result must still report exactly its own accounting.
        """
        engine.kv_store.clear()
        engine.reset_cache_stats()
        engine.run(CHUNKS[:1], "warm the global counters")  # pollutes globals
        batch = [
            (CHUNKS[:2], "first question of the batch"),
            (CHUNKS[:2], "second question of the batch"),
            (CHUNKS[2:], "third question of the batch"),
        ]
        results = engine.run_batch(batch)
        # Request 0: chunk 0 was warmed above, chunk 1 is cold.
        assert results[0].cache_stats["hits"] == 1
        assert results[0].cache_stats["misses"] == 1
        # Request 1 repeats request 0's chunks: all hits, zero misses.
        assert results[1].cache_stats["hits"] == 2
        assert results[1].cache_stats["misses"] == 0
        assert results[1].cache_stats["miss_tokens"] == 0
        # Request 2 touches a disjoint cold chunk.
        assert results[2].cache_stats["hits"] == 0
        assert results[2].cache_stats["misses"] == 1
        # Per-request tokenizer accounting is local too (question is new).
        assert results[1].cache_stats["tokenizer_misses"] == 1
        assert results[1].cache_stats["tokenizer_hits"] == 2
        # The engine-global counters aggregate everything, warmup included.
        assert engine.cache_stats["hits"] == sum(r.cache_stats["hits"] for r in results)
        assert engine.cache_stats["misses"] == 1 + sum(
            r.cache_stats["misses"] for r in results
        )

    def test_per_request_stats_snapshot_unaffected_by_later_requests(self, engine):
        engine.kv_store.clear()
        engine.reset_cache_stats()
        first = engine.run(CHUNKS[:2], "a question held across requests")
        snapshot = dict(first.cache_stats)
        engine.run(CHUNKS, "another request mutating global counters")
        assert first.cache_stats == snapshot

    def test_faster_device_lowers_ttft(self):
        fast = BlendEngine.build(paper_model="Mistral-7B", device="cpu_ram", seed=0)
        slow = BlendEngine.build(paper_model="Mistral-7B", device="slow_disk", seed=0)
        for e in (fast, slow):
            e.precompute_chunks(CHUNKS[:2])
        question = "which device is faster?"
        # Pin the recompute ratio: the controller otherwise adapts it upward
        # on fast devices, which is the point of Figure 10 but not this test.
        fast_ttft = fast.run(CHUNKS[:2], question, recompute_ratio=0.15).ttft
        slow_ttft = slow.run(CHUNKS[:2], question, recompute_ratio=0.15).ttft
        assert fast_ttft < slow_ttft


class TestStoreParameter:
    """The `store=` API and the `store_capacity_bytes=` deprecation path."""

    def test_store_capacity_bytes_still_works_but_warns(self):
        with pytest.warns(DeprecationWarning, match="store_capacity_bytes"):
            engine = BlendEngine.build(
                paper_model="Mistral-7B",
                device="cpu_ram",
                seed=0,
                store_capacity_bytes=1 << 20,
            )
        assert engine.kv_store.capacity_bytes == 1 << 20

    def test_store_and_store_capacity_bytes_are_mutually_exclusive(self):
        from repro.kvstore.config import StoreConfig

        with pytest.raises(ValueError, match="store_capacity_bytes"):
            BlendEngine.build(
                paper_model="Mistral-7B",
                device="cpu_ram",
                seed=0,
                store=StoreConfig(),
                store_capacity_bytes=1 << 20,
            )

    def test_tiered_trie_store_serves_the_engine(self):
        from repro.kvstore.config import StoreConfig
        from repro.kvstore.hierarchy import TieredKVStore

        engine = BlendEngine.build(
            paper_model="Mistral-7B",
            device="nvme_ssd",
            seed=0,
            store=StoreConfig(backend="tiered_trie"),
        )
        assert isinstance(engine.kv_store, TieredKVStore)
        engine.precompute_chunks(CHUNKS[:2])
        result = engine.run(CHUNKS[:2], "does the tiered store serve hits?")
        assert result.cache_hits == 2
        assert engine.cache_stats["bytes_stored"] > 0

    def test_prebuilt_store_instance_is_accepted(self):
        from repro.kvstore.device import get_device
        from repro.kvstore.trie import RadixTrieStore

        store = RadixTrieStore(device=get_device("cpu_ram"))
        engine = BlendEngine.build(
            paper_model="Mistral-7B", device="cpu_ram", seed=0, store=store
        )
        assert engine.kv_store is store
