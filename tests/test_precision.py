"""Unified KV precision policy: per-layer dtype maps end to end.

Covers the precision tentpole: the :class:`PrecisionPolicy` map itself, the
RPKV1–5 wire-format matrix, int8 quantisation idempotence, store byte
accounting (whole-chunk / trie dedup / tiered demotion at non-fp16 widths),
the backend-pricing parity regression (identical payloads used to be priced
differently on chunk vs trie backends), fp16 equivalence with the
pre-policy behaviour, and the executor's per-layer wire precision.
"""

import io
import json

import numpy as np
import pytest

from repro.core.blend_engine import BlendEngine
from repro.core.executor import PipelinedExecutor
from repro.core.fusor import FusorConfig
from repro.kvstore.config import StoreConfig
from repro.kvstore.device import get_device
from repro.kvstore.hierarchy import TieredKVStore
from repro.kvstore.precision import (
    INT8_SCALE_OVERHEAD,
    PRECISION_PRESETS,
    PrecisionPolicy,
    layer_payload_nbytes,
)
from repro.kvstore.serialization import (
    KVCorruptionError,
    deserialize_kv,
    kv_nbytes,
    quantize_kv_to_store_dtype,
    serialize_kv,
)
from repro.kvstore.store import KVCacheStore
from repro.kvstore.trie import RadixTrieStore
from repro.model.config import get_config
from repro.model.tensors import KVCache, LayerKV
from repro.model.transformer import TransformerModel


def _make_cache(n_tokens=6, n_layers=4, n_kv_heads=2, head_dim=4, seed=0) -> KVCache:
    rng = np.random.default_rng(seed)
    layers = [
        LayerKV(
            rng.normal(size=(n_tokens, n_kv_heads, head_dim)).astype(np.float32),
            rng.normal(size=(n_tokens, n_kv_heads, head_dim)).astype(np.float32),
        )
        for _ in range(n_layers)
    ]
    return KVCache(layers, np.arange(n_tokens), np.arange(n_tokens))


def _deterministic_cache(token_ids, n_layers: int = 4) -> KVCache:
    """KV rows deterministic per (token id, position, layer) — equal token
    prefixes yield equal KV rows, as a real chunk prefill would."""
    ids = np.asarray(token_ids, dtype=np.int64)
    positions = np.arange(ids.size, dtype=np.int64)
    layers = []
    for layer in range(n_layers):
        base = ((ids * 31 + positions * 7 + layer) % 97).astype(np.float32) / 97.0
        rows = np.repeat(base, 4).reshape(ids.size, 1, 4)
        layers.append(LayerKV(rows.copy(), rows + 0.5))
    return KVCache(layers, ids, positions)


def _caches_equal(a: KVCache, b: KVCache) -> bool:
    return all(
        np.array_equal(la.keys, lb.keys) and np.array_equal(la.values, lb.values)
        for la, lb in zip(a.layers, b.layers)
    )


class TestPolicyResolution:
    def test_none_resolves_to_float16(self):
        assert PrecisionPolicy.get(None).name == "float16"

    def test_string_resolves_to_preset(self):
        for name in PRECISION_PRESETS:
            assert PrecisionPolicy.get(name).name == name

    def test_policy_passes_through(self):
        policy = PrecisionPolicy("int8")
        assert PrecisionPolicy.get(policy) is policy

    def test_unknown_preset_rejected(self):
        with pytest.raises(ValueError, match="unknown precision policy"):
            PrecisionPolicy("int4")

    def test_non_spec_type_rejected(self):
        with pytest.raises(TypeError):
            PrecisionPolicy.get(8)

    def test_explicit_layer_dtypes_validated(self):
        with pytest.raises(ValueError, match="non-empty"):
            PrecisionPolicy(layer_dtypes=())
        with pytest.raises(ValueError, match="unknown layer dtype"):
            PrecisionPolicy(layer_dtypes=("float16", "bfloat16"))

    def test_explicit_layer_count_must_match_model(self):
        policy = PrecisionPolicy(layer_dtypes=("float16", "int8"))
        assert policy.layer_dtype_table(2) == ("float16", "int8")
        with pytest.raises(ValueError, match="pins 2 layer dtypes"):
            policy.dtype_for_layer(0, 3)


class TestLayerMap:
    def test_uniform_presets_map_every_layer(self):
        for name in ("float32", "float16", "int8"):
            assert PrecisionPolicy(name).layer_dtype_table(4) == (name,) * 4

    def test_mixed_keeps_first_quarter_fp16(self):
        table = PrecisionPolicy("mixed").layer_dtype_table(8)
        assert table == ("float16",) * 2 + ("int8",) * 6

    def test_mixed_keeps_at_least_one_fp16_layer(self):
        assert PrecisionPolicy("mixed").layer_dtype_table(1) == ("float16",)
        assert PrecisionPolicy("mixed").layer_dtype_table(2) == ("float16", "int8")

    def test_uniform_dtype_detection(self):
        assert PrecisionPolicy("int8").uniform_dtype == "int8"
        assert PrecisionPolicy("mixed").uniform_dtype is None
        assert PrecisionPolicy(layer_dtypes=("int8", "int8")).uniform_dtype == "int8"
        assert PrecisionPolicy(layer_dtypes=("float16", "int8")).uniform_dtype is None


class TestByteAccounting:
    def test_mean_elem_bytes(self):
        assert PrecisionPolicy("float16").mean_elem_bytes(8) == 2.0
        assert PrecisionPolicy("int8").mean_elem_bytes(8) == 1.0
        # 2 fp16 layers + 6 int8 layers over 8.
        assert PrecisionPolicy("mixed").mean_elem_bytes(8) == pytest.approx(1.25)

    def test_int8_cache_is_exactly_half_of_fp16(self):
        cache = _make_cache()
        fp16 = PrecisionPolicy("float16").cache_nbytes(cache)
        int8 = PrecisionPolicy("int8").cache_nbytes(cache)
        assert fp16 == kv_nbytes(cache, 2)
        assert int8 * 2 == fp16

    def test_kv_bytes_per_token_per_layer(self):
        policy = PrecisionPolicy("mixed")
        assert policy.kv_bytes_per_token_per_layer(2, 4, 8) == pytest.approx(
            2.0 * 2 * 4 * 1.25
        )

    def test_payload_width_carries_int8_scale_overhead(self):
        elements = 2 * 6 * 2 * 4
        assert layer_payload_nbytes("float16", 6, 2, 4) == elements * 2
        assert layer_payload_nbytes("float32", 6, 2, 4) == elements * 4
        assert layer_payload_nbytes("int8", 6, 2, 4) == elements + INT8_SCALE_OVERHEAD
        with pytest.raises(ValueError, match="unknown element dtype"):
            layer_payload_nbytes("mixed", 6, 2, 4)

    def test_cache_payload_matches_serialized_layer_bytes(self):
        cache = _make_cache()
        for name in PRECISION_PRESETS:
            policy = PrecisionPolicy.get(name)
            payload = serialize_kv(cache, policy)
            restored = deserialize_kv(payload)
            assert _caches_equal(restored, policy.quantize(cache))
            # The serialized blob carries header + ids + the layer payloads;
            # the policy's payload accounting must cover the layer bytes.
            index_bytes = 2 * cache.n_tokens * 8
            assert policy.cache_payload_nbytes(cache) <= len(payload) - index_bytes


class TestQuantizeIdempotence:
    @pytest.mark.parametrize("dtype", ["float32", "float16", "int8", "mixed"])
    def test_double_round_trip_is_identity(self, dtype):
        cache = _make_cache(seed=3)
        once = quantize_kv_to_store_dtype(cache, dtype)
        twice = quantize_kv_to_store_dtype(once, dtype)
        assert _caches_equal(once, twice)

    def test_policy_quantize_matches_function(self):
        cache = _make_cache(seed=5)
        assert _caches_equal(
            PrecisionPolicy("mixed").quantize(cache),
            quantize_kv_to_store_dtype(cache, "mixed"),
        )

    def test_float16_policy_matches_legacy_string(self):
        cache = _make_cache(seed=7)
        assert _caches_equal(
            quantize_kv_to_store_dtype(cache, PrecisionPolicy("float16")),
            quantize_kv_to_store_dtype(cache, "float16"),
        )


class TestWireFormatMatrix:
    """RPKV1–5 × checksum × dtype: every combination stays readable."""

    @pytest.mark.parametrize(
        "kv_dtype,checksum,magic",
        [
            ("float16", True, b"RPKV4\n"),
            ("float16", False, b"RPKV2\n"),
            ("int8", True, b"RPKV4\n"),
            ("int8", False, b"RPKV3\n"),
            ("float32", True, b"RPKV5\n"),
            ("mixed", True, b"RPKV5\n"),
        ],
    )
    def test_format_round_trips(self, kv_dtype, checksum, magic):
        cache = _make_cache(seed=11)
        payload = serialize_kv(cache, kv_dtype, checksum=checksum)
        assert payload.startswith(magic)
        restored = deserialize_kv(payload)
        assert np.array_equal(restored.token_ids, cache.token_ids)
        assert np.array_equal(restored.positions, cache.positions)
        assert _caches_equal(restored, quantize_kv_to_store_dtype(cache, kv_dtype))

    def test_non_uniform_explicit_policy_writes_v5(self):
        cache = _make_cache(n_layers=3, seed=13)
        policy = PrecisionPolicy(layer_dtypes=("float32", "float16", "int8"))
        payload = serialize_kv(cache, policy)
        assert payload.startswith(b"RPKV5\n")
        restored = deserialize_kv(payload)
        assert _caches_equal(restored, policy.quantize(cache))
        # Layer 0 is stored at full fp32 width: bitwise-lossless.
        assert np.array_equal(restored.layers[0].keys, cache.layers[0].keys)

    def test_uniform_fp16_policy_blob_is_bitwise_legacy(self):
        """The fp16 policy path must not change the wire format."""
        cache = _make_cache(seed=17)
        assert serialize_kv(cache, PrecisionPolicy("float16")) == serialize_kv(cache)
        assert serialize_kv(cache, PrecisionPolicy("int8")) == serialize_kv(
            cache, "int8"
        )

    def test_v5_header_carries_layer_dtype_table(self):
        cache = _make_cache(n_layers=8, seed=19)
        payload = serialize_kv(cache, "mixed")
        header_len = int.from_bytes(payload[6:10], "little")
        header = json.loads(payload[10 : 10 + header_len])
        assert header["kv_dtype"] == "per_layer"
        assert header["policy"] == "mixed"
        assert tuple(header["layer_dtypes"]) == ("float16",) * 2 + ("int8",) * 6

    def test_v5_payload_corruption_detected(self):
        blob = bytearray(serialize_kv(_make_cache(seed=23), "mixed"))
        blob[-1] ^= 0xFF
        with pytest.raises(KVCorruptionError):
            deserialize_kv(bytes(blob))

    def test_v1_legacy_still_readable(self):
        cache = _make_cache(seed=29)
        buffer = io.BytesIO()
        buffer.write(b"RPKV1\n")
        header = json.dumps(
            {"n_layers": cache.n_layers, "n_tokens": cache.n_tokens}
        ).encode("utf-8")
        buffer.write(len(header).to_bytes(4, "little"))
        buffer.write(header)
        arrays = {
            "token_ids": cache.token_ids.astype(np.int64),
            "positions": cache.positions.astype(np.int64),
        }
        for i, layer in enumerate(cache.layers):
            arrays[f"k{i}"] = layer.keys.astype(np.float16)
            arrays[f"v{i}"] = layer.values.astype(np.float16)
        np.savez(buffer, **arrays)
        restored = deserialize_kv(buffer.getvalue())
        assert restored.n_layers == cache.n_layers
        for layer, ref in zip(restored.layers, cache.layers):
            assert np.allclose(layer.keys, ref.keys, rtol=1e-2, atol=1e-2)


class TestStoreAccounting:
    """Satellite: nbytes under non-fp16 payloads across all three backends."""

    def test_chunk_store_int8_doubles_effective_capacity(self):
        cache = _deterministic_cache(range(8))
        fp16_bytes = PrecisionPolicy("float16").cache_nbytes(cache)
        # Capacity sized to hold exactly two caches at fp16 width...
        fp16_store = KVCacheStore(
            device=get_device("cpu_ram"),
            capacity_bytes=2 * fp16_bytes,
            precision="float16",
        )
        int8_store = KVCacheStore(
            device=get_device("cpu_ram"),
            capacity_bytes=2 * fp16_bytes,
            precision="int8",
        )
        for i in range(4):
            payload = _deterministic_cache(range(10 * i, 10 * i + 8))
            fp16_store.put(f"c{i}", payload)
            int8_store.put(f"c{i}", payload)
        # ...holds four at int8 width, in the same byte budget.
        assert fp16_store.n_entries == 2
        assert int8_store.n_entries == 4
        assert int8_store.bytes_stored == fp16_store.bytes_stored

    @pytest.mark.parametrize("dtype", ["int8", "mixed"])
    def test_trie_suffix_dedup_conserves_bytes(self, dtype):
        policy = PrecisionPolicy.get(dtype)
        store = RadixTrieStore(device=get_device("cpu_ram"), precision=policy)
        a = _deterministic_cache([1, 2, 3, 4, 5, 6, 7, 8])
        b = _deterministic_cache([1, 2, 3, 4, 9, 10, 11, 12])
        store.put("a", a)
        store.put("b", b)
        # 12 unique token rows resident; element-width accounting is exactly
        # token-proportional, so the edge split conserves bytes.
        per_cache = policy.cache_nbytes(a)
        assert store.bytes_stored == per_cache + per_cache // 2
        assert store.logical_bytes == 2 * per_cache
        for key, original in (("a", a), ("b", b)):
            fetched = store.get(key)
            assert _caches_equal(fetched, original)

    def test_tiered_demotion_accounts_at_payload_dtype(self):
        policy = PrecisionPolicy("int8")
        caches = [_deterministic_cache(range(10 * i, 10 * i + 8)) for i in range(3)]
        per_cache = policy.cache_nbytes(caches[0])
        fast = KVCacheStore(
            device=get_device("cpu_ram"),
            capacity_bytes=per_cache,
            precision=policy,
        )
        slow = KVCacheStore(
            device=get_device("nvme_ssd"),
            capacity_bytes=4 * per_cache,
            precision=policy,
        )
        store = TieredKVStore(tiers=[fast, slow])
        for i, cache in enumerate(caches):
            store.put(f"c{i}", cache)
        # Each insert evicts the previous resident of the RAM tier, which
        # cascades into the slow tier at the same int8 width.
        assert fast.bytes_stored == per_cache
        assert slow.bytes_stored == 2 * per_cache
        assert store.bytes_stored == 3 * per_cache
        for i, cache in enumerate(caches):
            assert _caches_equal(store.get(f"c{i}"), cache)


class TestBackendPricingParity:
    """Satellite regression: one policy prices every backend identically.

    Pre-fix, ``BlendEngine.build`` priced chunk-backend stores at the paper
    model's *timing* width (1 byte/element on Yi-34B) while trie/tiered
    backends accounted at the fp16 store width — the same payload cost
    different bytes depending on the backend holding it.
    """

    @pytest.mark.parametrize("backend", ["trie", "tiered_trie"])
    def test_chunk_and_dedup_backends_account_identical_bytes(self, backend):
        chunk_engine = BlendEngine.build(
            paper_model="Yi-34B", device="cpu_ram", seed=0,
            store=StoreConfig(backend="chunk"),
        )
        other_engine = BlendEngine.build(
            paper_model="Yi-34B", device="cpu_ram", seed=0,
            store=StoreConfig(backend=backend),
        )
        # Disjoint-prefix chunks so the trie cannot dedup anything: byte
        # parity must come from equal pricing, not from shared rows.
        texts = ["alpha bravo charlie delta", "echo foxtrot golf hotel"]
        chunk_engine.precompute_chunks(texts)
        other_engine.precompute_chunks(texts)
        assert chunk_engine.kv_store.bytes_stored > 0
        assert chunk_engine.kv_store.bytes_stored == other_engine.kv_store.bytes_stored

    def test_engine_precision_derives_from_store_for_all_backends(self):
        for backend in ("chunk", "trie", "tiered", "tiered_trie"):
            engine = BlendEngine.build(
                paper_model="Yi-34B", device="cpu_ram", seed=0,
                store=StoreConfig(backend=backend, kv_dtype="int8"),
            )
            assert engine.precision.name == "int8"
            assert engine.kv_dtype == "int8"


class TestEnginePrecision:
    def test_fp16_default_unchanged_by_policy_plumbing(self):
        """Explicit float16 policy is the default: identical generations and
        bitwise-identical fused KV."""
        chunks = ["the cat sat on the mat", "the dog slept by the door"]
        question = "who sat where?"
        default_engine = BlendEngine.build(paper_model="Mistral-7B", seed=0)
        explicit_engine = BlendEngine.build(
            paper_model="Mistral-7B", seed=0,
            store=StoreConfig(kv_dtype="float16"),
        )
        for engine in (default_engine, explicit_engine):
            engine.precompute_chunks(chunks)
        default_result = default_engine.run(chunks, question, max_new_tokens=4)
        explicit_result = explicit_engine.run(chunks, question, max_new_tokens=4)
        assert default_result.generated_ids == explicit_result.generated_ids
        assert _caches_equal(
            default_result.fusion.kv_cache, explicit_result.fusion.kv_cache
        )

    @pytest.mark.parametrize("kv_dtype", ["int8", "mixed"])
    def test_quantised_store_serves_and_stays_close(self, kv_dtype):
        chunks = ["the cat sat on the mat", "the dog slept by the door"]
        question = "who sat where?"
        reference = BlendEngine.build(paper_model="Mistral-7B", seed=0)
        quantised = BlendEngine.build(
            paper_model="Mistral-7B", seed=0,
            store=StoreConfig(kv_dtype=kv_dtype),
        )
        reference.precompute_chunks(chunks)
        quantised.precompute_chunks(chunks)
        assert (
            quantised.kv_store.bytes_stored < reference.kv_store.bytes_stored
        )
        result = quantised.run(chunks, question, max_new_tokens=4)
        ref_result = reference.run(chunks, question, max_new_tokens=4)
        assert len(result.generated_ids) == len(ref_result.generated_ids)
        for layer, ref_layer in zip(
            result.fusion.kv_cache.layers, ref_result.fusion.kv_cache.layers
        ):
            assert np.allclose(layer.keys, ref_layer.keys, rtol=0.2, atol=0.2)


class TestExecutorPrecision:
    @pytest.fixture(scope="class")
    def model(self):
        return TransformerModel(get_config("small"), seed=0)

    @pytest.fixture(scope="class")
    def request_inputs(self, model):
        rng = np.random.default_rng(0)
        chunk_caches = [
            model.chunk_prefill(
                rng.integers(4, model.config.vocab_size, size=32).astype(np.int64)
            )
            for _ in range(2)
        ]
        suffix = rng.integers(4, model.config.vocab_size, size=8).astype(np.int64)
        return chunk_caches, suffix

    def test_plan_prices_layers_at_policy_payload_width(self, model, request_inputs):
        chunk_caches, suffix = request_inputs
        device = get_device("nvme_ssd")
        plans = {}
        for dtype in ("float16", "int8", "mixed"):
            executor = PipelinedExecutor(
                model, FusorConfig(recompute_ratio=0.2),
                device=device, precision=dtype,
            )
            plans[dtype] = executor._plan_request(chunk_caches, suffix, None)
        n_layers = model.config.n_layers
        assert plans["float16"].layer_dtypes == ("float16",) * n_layers
        assert plans["int8"].layer_dtypes == ("int8",) * n_layers
        assert plans["mixed"].layer_dtypes == PrecisionPolicy("mixed").layer_dtype_table(
            n_layers
        )
        # Narrower payloads load faster, layer by layer.
        for fp16_delay, int8_delay in zip(
            plans["float16"].layer_delays, plans["int8"].layer_delays
        ):
            assert int8_delay < fp16_delay
        # Mixed: fp16-priced early layers, int8-priced late layers.
        assert plans["mixed"].layer_delays[0] == plans["float16"].layer_delays[0]
        assert plans["mixed"].layer_delays[-1] == plans["int8"].layer_delays[-1]

    @pytest.mark.parametrize("dtype", ["int8", "mixed"])
    def test_executes_through_quantised_wire_format(self, model, request_inputs, dtype):
        chunk_caches, suffix = request_inputs
        quantised = [quantize_kv_to_store_dtype(c, dtype) for c in chunk_caches]
        executor = PipelinedExecutor(
            model, FusorConfig(recompute_ratio=0.2),
            layer_load_time=0.0005, precision=dtype,
        )
        result = executor.execute(quantised, suffix, pipelined=True)
        reference = executor.execute(quantised, suffix, pipelined=False)
        # Pipelined and sequential execution agree bitwise at any precision.
        assert _caches_equal(result.fusion.kv_cache, reference.fusion.kv_cache)
