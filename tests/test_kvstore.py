"""KV cache store: hit/miss accounting, eviction and the usage tracker."""

import numpy as np
import pytest

from repro.kvstore.device import get_device
from repro.kvstore.store import (
    CacheStats,
    ChunkUsageTracker,
    EvictionPolicy,
    KVCacheStore,
    chunk_key,
)
from repro.model.tensors import KVCache, LayerKV


def _make_cache(n_tokens: int = 4, n_layers: int = 2) -> KVCache:
    layers = [
        LayerKV(np.ones((n_tokens, 1, 2)), np.ones((n_tokens, 1, 2)))
        for _ in range(n_layers)
    ]
    return KVCache(layers, np.arange(n_tokens), np.arange(n_tokens))


def _store(capacity_entries: int) -> KVCacheStore:
    entry_bytes = _make_cache().nbytes(2)
    return KVCacheStore(
        device=get_device("cpu_ram"),
        dtype_bytes=2,
        capacity_bytes=capacity_entries * entry_bytes,
    )


class TestHitMissAccounting:
    def test_miss_then_hit(self):
        store = _store(4)
        assert store.get("a") is None
        store.put("a", _make_cache())
        assert store.get("a") is not None
        assert store.stats.hits == 1
        assert store.stats.misses == 1
        assert store.stats.hit_rate == pytest.approx(0.5)

    def test_peek_does_not_touch_stats(self):
        store = _store(4)
        store.put("a", _make_cache())
        store.peek("a")
        store.peek("missing")
        assert store.stats.lookups == 0

    def test_stats_reset_keeps_bytes_stored(self):
        store = _store(4)
        store.put("a", _make_cache())
        store.get("a")
        bytes_stored = store.stats.bytes_stored
        store.stats.reset()
        assert store.stats.hits == 0
        assert store.stats.inserts == 0
        assert store.stats.bytes_stored == bytes_stored

    def test_stats_as_dict_is_json_friendly(self):
        stats = CacheStats(hits=3, misses=1)
        snapshot = stats.as_dict()
        assert snapshot["hits"] == 3
        assert snapshot["hit_rate"] == pytest.approx(0.75)


class TestEviction:
    def test_lru_evicts_least_recently_used(self):
        store = _store(2)
        store.put("a", _make_cache())
        store.put("b", _make_cache())
        store.get("a")  # refresh a; b becomes the LRU victim
        store.put("c", _make_cache())
        assert store.contains("a")
        assert not store.contains("b")
        assert store.stats.evictions == 1

    def test_fifo_ignores_recency(self):
        store = _store(2)
        store.policy = EvictionPolicy.FIFO
        store.put("a", _make_cache())
        store.put("b", _make_cache())
        store.get("a")
        store.put("c", _make_cache())
        assert not store.contains("a")
        assert store.contains("b")

    def test_oversized_entry_rejected(self):
        store = _store(1)
        with pytest.raises(ValueError):
            store.put("big", _make_cache(n_tokens=64))

    def test_overwrite_does_not_leak_bytes(self):
        store = _store(4)
        store.put("a", _make_cache())
        before = store.bytes_stored
        store.put("a", _make_cache())
        assert store.bytes_stored == before


class TestChunkKey:
    def test_stable_and_sensitive_to_inputs(self):
        ids = np.array([1, 2, 3])
        assert chunk_key(ids, "m") == chunk_key(ids, "m")
        assert chunk_key(ids, "m") != chunk_key(ids, "other-model")
        assert chunk_key(ids, "m") != chunk_key(ids, "m", prefix_key="p")

    def test_key_format_is_versioned(self):
        # "k2-" pins the raw-token-bytes hashing scheme: bump the version
        # when the digest inputs change, so stale stores never alias.
        key = chunk_key(np.array([1, 2, 3]), "m")
        assert key.startswith("k2-")
        tail = key[len("k2-"):]
        assert len(tail) == 32 and all(c in "0123456789abcdef" for c in tail)


class TestChunkUsageTracker:
    def test_hits_after_first_access(self):
        tracker = ChunkUsageTracker(capacity_entries=8)
        assert tracker.access("x") is False
        assert tracker.access("x") is True
        assert tracker.stats.hit_rate == pytest.approx(0.5)

    def test_lru_eviction_bounds_entries(self):
        tracker = ChunkUsageTracker(capacity_entries=2)
        tracker.access("a")
        tracker.access("b")
        tracker.access("a")  # refresh
        tracker.access("c")  # evicts b
        assert tracker.n_entries == 2
        assert tracker.contains("a")
        assert not tracker.contains("b")
        assert tracker.stats.evictions == 1
