"""Equivalence of the vectorized attention/GQA path against a naive reference.

The broadcast-GQA ``_attend`` (no ``np.repeat`` materialisation, in-place
mask fill, grouped einsum) must match a straightforward reference
implementation bit-for-bit up to float accumulation order — well within 1e-6.
"""

import numpy as np
import pytest

from repro.model.attention import full_attention, selective_attention
from repro.model.config import get_config
from repro.model.layers import softmax
from repro.model.tensors import LayerKV
from repro.model.transformer import TransformerModel


def _reference_attend(queries, keys, values, query_positions, key_positions, window_rows):
    """The pre-vectorization implementation: repeat KV heads, full masks."""
    n_heads = queries.shape[1]
    head_dim = queries.shape[2]
    group = n_heads // keys.shape[1]
    if group > 1:
        keys = np.repeat(keys, group, axis=1)
        values = np.repeat(values, group, axis=1)
    scores = np.einsum("qhd,khd->hqk", queries, keys) / np.sqrt(head_dim)
    mask = key_positions[None, None, :] > query_positions[None, :, None]
    scores = np.where(mask, -1e30, scores)
    weights = softmax(scores, axis=-1)
    context = np.einsum("hqk,khd->qhd", weights, values)
    forward = None
    if window_rows is not None and window_rows.size:
        forward = weights[:, window_rows, :].mean(axis=0)
    return context, forward


def _random_qkv(rng, n_tokens, n_heads, n_kv_heads, head_dim):
    q = rng.normal(size=(n_tokens, n_heads, head_dim))
    k = rng.normal(size=(n_tokens, n_kv_heads, head_dim))
    v = rng.normal(size=(n_tokens, n_kv_heads, head_dim))
    return q, k, v


class TestFullAttentionEquivalence:
    @pytest.mark.parametrize("n_heads,n_kv_heads", [(4, 4), (8, 2), (6, 3)])
    def test_matches_reference(self, n_heads, n_kv_heads):
        rng = np.random.default_rng(0)
        n_tokens, head_dim, window = 17, 8, 5
        q, k, v = _random_qkv(rng, n_tokens, n_heads, n_kv_heads, head_dim)
        positions = np.arange(n_tokens)

        out = full_attention(q, k, v, positions, query_window=window)
        window_rows = np.arange(n_tokens - window, n_tokens)
        ref_context, ref_forward = _reference_attend(
            q, k, v, positions, positions, window_rows
        )
        assert np.allclose(out.context, ref_context, atol=1e-6)
        assert np.allclose(out.forward_attention, ref_forward, atol=1e-6)

    def test_causality(self):
        """Changing a future key never changes an earlier query's output."""
        rng = np.random.default_rng(1)
        q, k, v = _random_qkv(rng, 10, 4, 2, 6)
        positions = np.arange(10)
        base = full_attention(q, k, v, positions).context
        k2, v2 = k.copy(), v.copy()
        k2[7:] += 10.0
        v2[7:] -= 5.0
        perturbed = full_attention(q, k2, v2, positions).context
        assert np.allclose(base[:7], perturbed[:7], atol=1e-6)
        assert not np.allclose(base[7:], perturbed[7:])


class TestSelectiveAttentionEquivalence:
    @pytest.mark.parametrize("n_heads,n_kv_heads", [(4, 4), (8, 2)])
    def test_matches_reference(self, n_heads, n_kv_heads):
        rng = np.random.default_rng(2)
        n_tokens, head_dim, window = 21, 8, 6
        _, k, v = _random_qkv(rng, n_tokens, n_heads, n_kv_heads, head_dim)
        selected = np.array([0, 3, 4, 11, 18, 19, 20])
        q_sel = rng.normal(size=(selected.size, n_heads, head_dim))
        positions = np.arange(n_tokens)

        out = selective_attention(q_sel, k, v, selected, positions, query_window=window)
        window_rows = np.nonzero(selected >= n_tokens - window)[0]
        ref_context, ref_forward = _reference_attend(
            q_sel, k, v, positions[selected], positions, window_rows
        )
        assert np.allclose(out.context, ref_context, atol=1e-6)
        assert np.allclose(out.forward_attention, ref_forward, atol=1e-6)

    def test_selective_rows_match_full_attention(self):
        """Selecting every token degenerates to full attention."""
        rng = np.random.default_rng(3)
        n_tokens = 12
        q, k, v = _random_qkv(rng, n_tokens, 4, 2, 6)
        positions = np.arange(n_tokens)
        full = full_attention(q, k, v, positions)
        sel = selective_attention(q, k, v, np.arange(n_tokens), positions)
        assert np.allclose(full.context, sel.context, atol=1e-6)


class TestLayerSelectiveInPlace:
    @pytest.fixture(scope="class")
    def model(self):
        return TransformerModel(get_config("small"), seed=0)

    def test_in_place_matches_copy_path(self, model):
        rng = np.random.default_rng(4)
        cfg = model.config
        n_tokens = 20
        selected = np.array([1, 5, 6, 13, 19])
        hidden_sel = rng.normal(size=(selected.size, cfg.hidden_size)).astype(
            cfg.np_dtype
        )
        positions = np.arange(n_tokens)

        def reused():
            r = np.random.default_rng(5)
            keys = r.normal(size=(n_tokens, cfg.n_kv_heads, cfg.head_dim))
            values = r.normal(size=(n_tokens, cfg.n_kv_heads, cfg.head_dim))
            return LayerKV(keys.astype(cfg.np_dtype), values.astype(cfg.np_dtype))

        copied = model.layer_selective(0, hidden_sel, selected, positions, reused())
        in_place_src = reused()
        in_place = model.layer_selective(
            0, hidden_sel, selected, positions, in_place_src, in_place=True
        )
        assert np.allclose(copied.hidden_selected, in_place.hidden_selected, atol=1e-6)
        assert np.allclose(copied.merged_kv.keys, in_place.merged_kv.keys, atol=1e-6)
        assert np.allclose(copied.merged_kv.values, in_place.merged_kv.values, atol=1e-6)
        # The in-place path scatters into the caller's buffers (no copy).
        assert in_place.merged_kv is in_place_src
