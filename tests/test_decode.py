"""Batched decode on preallocated KV buffers.

Locks down the decode-path refactor: :class:`GrowableKVCache` round-trips
bitwise to the legacy :class:`KVCache`, grows geometrically instead of
re-concatenating per token, tracks the next decode position on the cache
(regression for the former per-token ``positions.max()`` scan), and
``decode_batch`` over N requests matches N sequential ``decode_step`` loops
token-for-token.
"""

import numpy as np
import pytest

from repro.model.config import get_config
from repro.model.tensors import GrowableKVCache, KVCache, LayerKV
from repro.model.transformer import TransformerModel


@pytest.fixture(scope="module")
def model() -> TransformerModel:
    return TransformerModel(get_config("tiny"), seed=0)


def _random_prompt(model: TransformerModel, n_tokens: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(4, model.config.vocab_size, size=n_tokens).astype(np.int64)


def _prefill_caches(model: TransformerModel, lengths, seed: int = 0):
    return [
        model.full_prefill(_random_prompt(model, n, seed + i))
        for i, n in enumerate(lengths)
    ]


def _caches_equal(a: GrowableKVCache, b: GrowableKVCache, atol: float) -> None:
    assert a.n_tokens == b.n_tokens
    np.testing.assert_array_equal(a.token_ids, b.token_ids)
    np.testing.assert_array_equal(a.positions, b.positions)
    for layer_idx in range(a.n_layers):
        np.testing.assert_allclose(
            a.layer_keys(layer_idx), b.layer_keys(layer_idx), atol=atol, rtol=0
        )
        np.testing.assert_allclose(
            a.layer_values(layer_idx), b.layer_values(layer_idx), atol=atol, rtol=0
        )


class TestGrowableKVCache:
    def test_round_trip_to_legacy_kv_cache_is_bitwise(self, model):
        cache = _prefill_caches(model, [17])[0].kv_cache
        round_tripped = GrowableKVCache.from_kv_cache(cache, reserve=5).to_kv_cache()
        for original, back in zip(cache.layers, round_tripped.layers):
            np.testing.assert_array_equal(original.keys, back.keys)
            np.testing.assert_array_equal(original.values, back.values)
        np.testing.assert_array_equal(cache.token_ids, round_tripped.token_ids)
        np.testing.assert_array_equal(cache.positions, round_tripped.positions)

    def test_view_aliases_the_buffers(self, model):
        grown = GrowableKVCache.from_kv_cache(
            _prefill_caches(model, [6])[0].kv_cache
        )
        view = grown.view()
        grown._keys[0][2, 0, 0] = 123.0
        assert view.layers[0].keys[2, 0, 0] == 123.0

    def test_append_writes_rows_in_place(self):
        grown = GrowableKVCache(n_layers=2, n_kv_heads=1, head_dim=4, capacity=8)
        keys = np.arange(2 * 1 * 4, dtype=np.float32).reshape(2, 1, 4)
        row = grown.append(keys, keys * 2.0, token_id=9)
        assert row == 0
        assert grown.n_tokens == 1
        assert grown.next_position == 1
        np.testing.assert_array_equal(grown.layer_keys(1)[0], keys[1])
        np.testing.assert_array_equal(grown.layer_values(0)[0], keys[0] * 2.0)
        assert grown.token_ids[0] == 9
        assert grown.positions[0] == 0

    def test_growth_is_geometric_not_per_token(self):
        grown = GrowableKVCache(n_layers=1, n_kv_heads=1, head_dim=2, capacity=4)
        kv = np.zeros((1, 1, 2), dtype=np.float32)
        capacities = set()
        for token in range(200):
            grown.append(kv, kv, token_id=token)
            capacities.add(grown.capacity)
        # Doubling from 4 to >=200 passes through at most ~log2 capacities.
        assert grown.n_tokens == 200
        assert len(capacities) <= 7
        assert grown.capacity >= 200

    def test_reserve_prevents_mid_generation_reallocation(self):
        grown = GrowableKVCache(n_layers=1, n_kv_heads=1, head_dim=2, capacity=1)
        grown.reserve(64)
        buffer_before = grown._keys[0]
        kv = np.zeros((1, 1, 2), dtype=np.float32)
        for token in range(64):
            grown.append(kv, kv, token_id=token)
        assert grown._keys[0] is buffer_before

    def test_next_position_follows_last_token_not_max(self):
        """Regression: with non-contiguous (unsorted) chunk positions the
        next decode position follows the *last* token, not the numerically
        largest position (the legacy ``positions.max()`` scan got this
        wrong, besides being O(T) per token)."""
        layer = LayerKV(
            np.zeros((5, 1, 2), dtype=np.float32), np.zeros((5, 1, 2), dtype=np.float32)
        )
        cache = KVCache(
            [layer],
            token_ids=np.arange(5),
            positions=np.array([5, 6, 7, 2, 3], dtype=np.int64),
        )
        grown = GrowableKVCache.from_kv_cache(cache)
        assert grown.next_position == 4  # positions.max() + 1 would say 8

    def test_rejects_empty_cache_and_bad_append(self):
        with pytest.raises(ValueError):
            GrowableKVCache.from_kv_cache(KVCache([]))
        grown = GrowableKVCache(n_layers=2, n_kv_heads=1, head_dim=2)
        with pytest.raises(ValueError):
            grown.append(
                np.zeros((1, 1, 2), dtype=np.float32),
                np.zeros((1, 1, 2), dtype=np.float32),
                token_id=0,
            )


class TestDecodeStep:
    def test_appends_at_tracked_position(self, model):
        prefill = _prefill_caches(model, [9])[0]
        logits, cache = model.decode_step(prefill.kv_cache, 42)
        assert isinstance(cache, GrowableKVCache)
        assert logits.shape == (model.config.vocab_size,)
        assert cache.n_tokens == 10
        assert cache.positions[-1] == 9
        assert cache.next_position == 10
        assert cache.token_ids[-1] == 42

    def test_position_regression_non_contiguous_chunk_positions(self, model):
        """The appended token continues after the last chunk token even when
        an earlier chunk was embedded at larger absolute positions."""
        cfg = model.config
        chunk_a = model.chunk_prefill(_random_prompt(model, 4, 1), start_position=10)
        chunk_b = model.chunk_prefill(_random_prompt(model, 3, 2), start_position=0)
        combined = KVCache.concat([chunk_a, chunk_b])
        assert combined.positions.max() == 13  # the legacy scan's anchor
        _, cache = model.decode_step(combined, 7)
        assert cache.positions[-1] == 3  # follows chunk_b's last token (2) + 1
        assert cfg.n_layers == cache.n_layers

    def test_decode_attends_to_context_beyond_the_query_position(self, model):
        """Regression: cached tokens embedded at positions *larger* than the
        decode token's must still be attended — causality during decode is
        cache membership, not position order.  A positional mask would make
        the high-position chunk invisible, collapsing the logits onto those
        of a cache holding only the low-position chunk."""
        chunk_high = model.chunk_prefill(_random_prompt(model, 4, 1), start_position=10)
        chunk_low = model.chunk_prefill(_random_prompt(model, 3, 2), start_position=0)
        combined = KVCache.concat([chunk_high, chunk_low])
        with_context, _ = model.decode_step(combined, 7)
        without_context, _ = model.decode_step(combined.slice_tokens(4, 7), 7)
        assert not np.allclose(with_context, without_context)

    def test_steps_on_growable_cache_are_in_place(self, model):
        prefill = _prefill_caches(model, [8])[0]
        cache = GrowableKVCache.from_kv_cache(prefill.kv_cache, reserve=4)
        buffer_before = cache._keys[0]
        for token in (5, 6, 7, 8):
            _, cache = model.decode_step(cache, token)
        assert cache._keys[0] is buffer_before  # no reallocation, no concat
        assert cache.n_tokens == 12


class TestDecodeBatchEquivalence:
    """decode_batch over N requests vs N sequential decode_step loops."""

    LENGTHS = (12, 7, 19, 9)
    N_STEPS = 8

    @pytest.fixture(scope="class")
    def streams(self, model):
        rng = np.random.default_rng(3)
        return rng.integers(
            4, model.config.vocab_size, size=(len(self.LENGTHS), self.N_STEPS)
        ).astype(np.int64)

    def test_stepwise_logits_and_caches_match(self, model, streams):
        prefills = _prefill_caches(model, self.LENGTHS)
        sequential = [
            GrowableKVCache.from_kv_cache(p.kv_cache, reserve=self.N_STEPS)
            for p in prefills
        ]
        batched = [
            GrowableKVCache.from_kv_cache(p.kv_cache, reserve=self.N_STEPS)
            for p in prefills
        ]
        for step in range(self.N_STEPS):
            batch_logits = model.decode_batch(batched, streams[:, step])
            for i, cache in enumerate(sequential):
                logits, _ = model.decode_step(cache, int(streams[i, step]))
                assert int(np.argmax(logits)) == int(np.argmax(batch_logits[i]))
                np.testing.assert_allclose(
                    logits, batch_logits[i], rtol=1e-4, atol=1e-5
                )
        for seq, bat in zip(sequential, batched):
            _caches_equal(seq, bat, atol=1e-4)

    def test_greedy_generation_token_for_token(self, model):
        prefills = _prefill_caches(model, self.LENGTHS, seed=11)
        sequential = [
            model.generate(
                GrowableKVCache.from_kv_cache(p.kv_cache, reserve=24),
                p.last_logits,
                max_new_tokens=24,
            )
            for p in prefills
        ]
        batched = model.generate_batch(
            [GrowableKVCache.from_kv_cache(p.kv_cache, reserve=24) for p in prefills],
            [p.last_logits for p in prefills],
            max_new_tokens=24,
        )
        assert batched == sequential
        assert all(len(tokens) == 24 for tokens in batched)

    def test_batch_of_one_is_exactly_decode_step(self, model):
        prefill = _prefill_caches(model, [10])[0]
        a = GrowableKVCache.from_kv_cache(prefill.kv_cache, reserve=1)
        b = GrowableKVCache.from_kv_cache(prefill.kv_cache, reserve=1)
        logits_step, _ = model.decode_step(a, 33)
        logits_batch = model.decode_batch([b], [33])
        np.testing.assert_array_equal(logits_step, logits_batch[0])
        _caches_equal(a, b, atol=0.0)

    def test_input_validation(self, model):
        prefill = _prefill_caches(model, [5])[0]
        grown = GrowableKVCache.from_kv_cache(prefill.kv_cache)
        with pytest.raises(ValueError):
            model.decode_batch([grown], [1, 2])
        with pytest.raises(ValueError):
            model.decode_batch([], [])
        with pytest.raises(TypeError):
            model.decode_batch([prefill.kv_cache], [1])

    def test_invalid_token_id_leaves_caches_untouched(self, model):
        """Regression: token validation must run before any cache append, or
        a caught-and-retried error leaves phantom all-zero rows behind."""
        prefill = _prefill_caches(model, [5])[0]
        grown = GrowableKVCache.from_kv_cache(prefill.kv_cache, reserve=2)
        with pytest.raises(ValueError):
            model.decode_batch([grown], [model.config.vocab_size])
        assert grown.n_tokens == 5
        assert grown.next_position == 5
        logits = model.decode_batch([grown], [7])  # retry decodes cleanly
        assert logits.shape == (1, model.config.vocab_size)
        assert grown.n_tokens == 6


class TestGenerateEos:
    def test_eos_is_not_emitted(self, model):
        prefill = _prefill_caches(model, [6])[0]
        eos_id = int(np.argmax(prefill.last_logits))  # force EOS immediately
        generated = model.generate(
            prefill.kv_cache, prefill.last_logits, max_new_tokens=4, eos_id=eos_id
        )
        assert generated == []

    def test_include_eos_restores_the_marker(self, model):
        prefill = _prefill_caches(model, [6])[0]
        eos_id = int(np.argmax(prefill.last_logits))
        generated = model.generate(
            prefill.kv_cache,
            prefill.last_logits,
            max_new_tokens=4,
            eos_id=eos_id,
            include_eos=True,
        )
        assert generated == [eos_id]

    def test_token_count_matches_budget_without_eos(self, model):
        prefill = _prefill_caches(model, [6])[0]
        generated = model.generate(
            prefill.kv_cache, prefill.last_logits, max_new_tokens=5, eos_id=None
        )
        assert len(generated) == 5

    def test_finished_requests_drop_out_of_the_batch(self, model):
        prefills = _prefill_caches(model, [6, 8], seed=21)
        eos_id = int(np.argmax(prefills[0].last_logits))
        batched = model.generate_batch(
            [p.kv_cache for p in prefills],
            [p.last_logits for p in prefills],
            max_new_tokens=6,
            eos_id=eos_id,
        )
        assert batched[0] == []  # hit EOS on its first token
        expected = model.generate(
            prefills[1].kv_cache, prefills[1].last_logits, max_new_tokens=6,
            eos_id=eos_id,
        )
        assert batched[1] == expected
