"""Radix-trie KV store: prefix dedup, bitwise reassembly, refcounted eviction.

The engine-level class at the bottom is the PR's acceptance check: on a
shared-prefix workload the trie backend stores strictly fewer bytes than the
whole-chunk store at an equal hit rate, and the fused KV it feeds the model
is bitwise identical.
"""

import time

import numpy as np
import pytest

from repro.core.blend_engine import BlendEngine
from repro.kvstore.config import StoreConfig
from repro.kvstore.device import get_device
from repro.kvstore.store import KVCacheStore, chunk_key
from repro.kvstore.trie import RadixTrieStore
from repro.model.tensors import KVCache, LayerKV


def _cache(token_ids, n_layers: int = 2) -> KVCache:
    """KV rows deterministic per (token id, position, layer), like a real
    chunk prefill — equal token prefixes yield equal KV rows."""
    ids = np.asarray(token_ids, dtype=np.int64)
    positions = np.arange(ids.size, dtype=np.int64)
    layers = []
    for layer in range(n_layers):
        base = (ids * 31 + positions * 7 + layer).astype(np.float64)
        rows = np.repeat(base, 2).reshape(ids.size, 1, 2)
        layers.append(LayerKV(rows.copy(), rows + 0.5))
    return KVCache(layers, ids, positions)


def _trie(**kwargs) -> RadixTrieStore:
    return RadixTrieStore(device=get_device("cpu_ram"), dtype_bytes=2, **kwargs)


class TestTrieDedup:
    def test_shared_prefix_stored_once(self):
        store = _trie()
        a = _cache([1, 2, 3, 4, 5, 6, 7, 8])
        b = _cache([1, 2, 3, 4, 9, 10, 11, 12])
        store.put("a", a)
        store.put("b", b)
        logical_each = a.nbytes(2)
        # b contributes only its 4 novel suffix rows.
        assert store.bytes_stored == logical_each + logical_each // 2
        assert store.logical_bytes == 2 * logical_each
        assert store.dedup_ratio == pytest.approx(4 / 3)

    def test_lookup_reassembles_bitwise(self):
        store = _trie()
        a = _cache([1, 2, 3, 4, 5, 6, 7, 8])
        b = _cache([1, 2, 3, 4, 9, 10, 11, 12])
        store.put("a", a)
        store.put("b", b)
        for key, original in (("a", a), ("b", b)):
            fetched = store.get(key)
            assert np.array_equal(fetched.token_ids, original.token_ids)
            for got, want in zip(fetched.layers, original.layers):
                assert np.array_equal(got.keys, want.keys)
                assert np.array_equal(got.values, want.values)

    def test_read_delay_priced_at_logical_size(self):
        # Dedup changes residency, never the simulated read: a trie hit is
        # priced at the full-chunk bytes, same as the whole-chunk store.
        trie, flat = _trie(), KVCacheStore(device=get_device("cpu_ram"), dtype_bytes=2)
        a = _cache([1, 2, 3, 4, 5, 6, 7, 8])
        b = _cache([1, 2, 3, 4, 9, 10, 11, 12])
        for store in (trie, flat):
            store.put("a", a)
            store.put("b", b)
        assert trie.lookup("b").read_delay == flat.lookup("b").read_delay > 0.0

    def test_prefix_match_counts_shared_tokens(self):
        store = _trie()
        store.put("a", _cache([1, 2, 3, 4, 5, 6, 7, 8]))
        assert store.prefix_match(np.array([1, 2, 3, 9])) == 3
        assert store.prefix_match(np.array([1, 2, 3, 4, 5, 6, 7, 8])) == 8
        assert store.prefix_match(np.array([7, 7, 7])) == 0

    def test_divergent_positions_fall_back_to_standalone(self):
        store = _trie()
        a = _cache([1, 2, 3, 4])
        shifted = _cache([1, 2, 3, 4])
        shifted = KVCache(shifted.layers, shifted.token_ids, shifted.positions + 100)
        store.put("a", a)
        store.put("shifted", shifted)
        # Same tokens at different positions must not share rows.
        assert store.bytes_stored == 2 * a.nbytes(2)
        assert np.array_equal(store.get("shifted").positions, shifted.positions)


class TestTrieEviction:
    def test_refcount_eviction_frees_only_unshared_suffix(self):
        entry_bytes = _cache([1, 2, 3, 4, 5, 6, 7, 8]).nbytes(2)
        store = _trie(capacity_bytes=2 * entry_bytes)
        a = _cache([1, 2, 3, 4, 5, 6, 7, 8])
        b = _cache([1, 2, 3, 4, 9, 10, 11, 12])
        store.put("a", a)
        store.put("b", b)  # deduped total: 1.5 entries
        c = _cache([20, 21, 22, 23, 24, 25, 26, 27])
        # c pushes the total to 2.5 entries; evicting "a" (LRU) frees only
        # its unshared 4-row suffix (0.5 entries), which is exactly enough.
        store.put("c", c)
        assert not store.contains("a")
        assert store.stats.evictions == 1
        # b's shared prefix survived a's eviction, bitwise.
        fetched = store.get("b")
        for got, want in zip(fetched.layers, b.layers):
            assert np.array_equal(got.keys, want.keys)

    def test_lru_recency_protects_hot_entries(self):
        entry_bytes = _cache([1, 2, 3, 4]).nbytes(2)
        store = _trie(capacity_bytes=2 * entry_bytes)
        store.put("a", _cache([1, 2, 3, 4]))
        store.put("b", _cache([5, 6, 7, 8]))
        store.get("a")
        store.put("c", _cache([9, 10, 11, 12]))
        assert store.contains("a") and store.contains("c")
        assert not store.contains("b")

    def test_oversized_entry_rejected(self):
        store = _trie(capacity_bytes=8)
        with pytest.raises(ValueError, match="cannot fit"):
            store.put("a", _cache([1, 2, 3, 4]))

    def test_ttl_expires_entries(self):
        store = _trie(ttl_s=0.005)
        store.put("a", _cache([1, 2, 3, 4]))
        assert store.contains("a")
        time.sleep(0.02)
        assert not store.contains("a")
        assert store.stats.expirations == 1
        assert store.bytes_stored == 0

    def test_overwrite_does_not_leak_bytes(self):
        store = _trie()
        store.put("a", _cache([1, 2, 3, 4]))
        store.put("a", _cache([1, 2, 3, 4]))
        assert store.n_entries == 1
        assert store.bytes_stored == _cache([1, 2, 3, 4]).nbytes(2)


class TestTTLCleanMissRegressions:
    """TTL expiry mid-serving must surface as a clean miss, never a raise.

    The fault-tolerant gather path retries lookups and prices read delays
    on arbitrary keys at arbitrary times; a key whose entry expired between
    two of those calls has to behave exactly like one that was never
    stored.
    """

    def test_expired_entry_lookup_is_a_clean_miss(self):
        store = _trie(ttl_s=0.005)
        store.put("a", _cache([1, 2, 3, 4]))
        time.sleep(0.02)
        found = store.lookup("a")  # must not raise
        assert not found.hit and found.cache is None
        assert found.read_delay == 0.0
        assert store.stats.misses == 1
        assert store.stats.expirations == 1

    def test_expired_entry_read_delay_is_zero(self):
        store = _trie(ttl_s=0.005)
        store.put("a", _cache([1, 2, 3, 4]))
        assert store.read_delay("a") > 0.0
        time.sleep(0.02)
        assert store.read_delay("a") == 0.0

    def test_absent_key_read_delay_is_zero(self):
        assert _trie().read_delay("never-stored") == 0.0

    def test_expiry_between_contains_and_lookup_still_clean(self):
        # The racy interleaving: contains() says yes, the entry expires,
        # then lookup() runs — it must report a miss, not raise.
        store = _trie(ttl_s=0.005)
        store.put("a", _cache([1, 2, 3, 4]))
        assert store.contains("a")
        time.sleep(0.02)
        found = store.lookup("a")
        assert not found.hit


class TestChunkKeyVersioning:
    def test_key_carries_the_version_prefix(self):
        key = chunk_key(np.array([1, 2, 3], dtype=np.int64), model_name="m")
        assert key.startswith("k2-")
        assert len(key) == len("k2-") + 32


SHARED = "retrieval augmented generation shares this exact preamble across chunks"
CHUNKS = [
    f"{SHARED} and then diverges into document number {i} about topic {i}"
    for i in range(3)
]
QUESTION = "what do the documents share?"


class TestEngineBackendEquivalence:
    """ISSUE acceptance: trie vs whole-chunk store through the full engine."""

    @pytest.fixture(scope="class")
    def engines(self):
        build = lambda backend: BlendEngine.build(
            paper_model="Mistral-7B",
            device="cpu_ram",
            seed=0,
            store=StoreConfig(backend=backend),
        )
        return build("chunk"), build("trie")

    def test_trie_stores_strictly_fewer_bytes_at_equal_hit_rate(self, engines):
        chunk_engine, trie_engine = engines
        for engine in engines:
            engine.kv_store.clear()
            engine.reset_cache_stats()
            engine.precompute_chunks(CHUNKS)
            engine.run(CHUNKS, QUESTION)
        chunk_stats = chunk_engine.cache_stats
        trie_stats = trie_engine.cache_stats
        assert trie_stats["bytes_stored"] < chunk_stats["bytes_stored"]
        assert trie_stats["hits"] >= chunk_stats["hits"]
        assert trie_stats["misses"] <= chunk_stats["misses"]

    def test_fused_kv_is_bitwise_identical_across_backends(self, engines):
        chunk_engine, trie_engine = engines
        results = [engine.run(CHUNKS, QUESTION) for engine in engines]
        fused_chunk, fused_trie = (r.fusion.kv_cache for r in results)
        assert np.array_equal(fused_chunk.token_ids, fused_trie.token_ids)
        for got, want in zip(fused_trie.layers, fused_chunk.layers):
            assert np.array_equal(got.keys, want.keys)
            assert np.array_equal(got.values, want.values)
