"""Experiment runner: sweep semantics, report schema and paper-level claims."""

import json

import pytest

from repro.bench.experiment import (
    QUALITY_SCORES,
    ExperimentConfig,
    ExperimentRunner,
)
from repro.bench.report import (
    SCHEMA_VERSION,
    report_to_dict,
    save_report,
    validate_report,
)


@pytest.fixture(scope="module")
def report():
    config = ExperimentConfig(
        models=("mistral-7b", "yi-34b"),
        devices=("cpu_ram", "nvme_ssd"),
        n_requests=40,
        request_rate=0.8,
        seed=0,
    )
    return ExperimentRunner(config).run()


class TestSweepSemantics:
    def test_one_cell_per_sweep_point(self, report):
        config = report.config
        expected = (
            len(config.models)
            * len(config.devices)
            * len(config.schemes)
            * len(config.recompute_ratios)
        )
        assert len(report.cells) == expected

    def test_full_recompute_recomputes_everything(self, report):
        for cell in report.cells:
            if cell.scheme == "full_recompute":
                assert cell.mean_recomputed_fraction == pytest.approx(1.0)

    def test_cacheblend_recomputes_less_than_full(self, report):
        """CacheBlend recomputes the ratio on cached chunks plus cold chunks
        and the suffix in full — strictly less than full prefill, strictly
        more than its nominal ratio whenever any chunk is cold."""
        for cell in report.cells:
            if cell.scheme == "cacheblend":
                assert cell.recompute_ratio < cell.mean_recomputed_fraction < 1.0

    def test_quality_adjustment_inflates_lossy_schemes(self, report):
        for cell in report.cells:
            expected = cell.mean_ttft / QUALITY_SCORES[cell.scheme]
            assert cell.quality_adjusted_ttft == pytest.approx(expected)


class TestPaperClaims:
    def test_cacheblend_beats_baselines_on_every_model_device(self, report):
        """The acceptance criterion: CacheBlend wins TTFT against full
        recompute and quality-adjusted full reuse on 2 devices x 2 models."""
        assert len(report.comparisons) == 4
        for row in report.comparisons:
            assert row["cacheblend_beats_full_recompute"], row
            assert row["cacheblend_beats_full_reuse_quality_adjusted"], row
            assert row["speedup_vs_full_recompute"] > 1.0


class TestReportSchema:
    def test_document_validates_and_roundtrips(self, report, tmp_path):
        document = report_to_dict(report, tag="test")
        validate_report(document)
        assert document["schema_version"] == SCHEMA_VERSION
        reloaded = json.loads(json.dumps(document))
        validate_report(reloaded)

    def test_save_report_writes_bench_json(self, report, tmp_path):
        path = save_report(report, out_dir=tmp_path, tag="unit")
        assert path.name.startswith("BENCH_unit_")
        assert path.suffix == ".json"
        validate_report(json.loads(path.read_text()))

    def test_validation_rejects_missing_fields(self, report):
        document = report_to_dict(report, tag="broken")
        del document["cells"][0]["mean_ttft"]
        with pytest.raises(ValueError):
            validate_report(document)

    def test_validation_rejects_empty_cells(self, report):
        document = report_to_dict(report, tag="broken")
        document["cells"] = []
        with pytest.raises(ValueError):
            validate_report(document)


class TestMultiRatioSweep:
    def test_baselines_replicated_across_ratios(self):
        config = ExperimentConfig(
            models=("mistral-7b",),
            devices=("nvme_ssd",),
            recompute_ratios=(0.05, 0.3),
            n_requests=15,
        )
        report = ExperimentRunner(config).run()
        assert len(report.cells) == len(config.schemes) * 2
        # Ratio-independent schemes carry identical metrics on every ratio
        # row (they are served once); cacheblend genuinely differs.
        by_scheme: dict[str, list] = {}
        for cell in report.cells:
            by_scheme.setdefault(cell.scheme, []).append(cell)
        a, b = by_scheme["full_recompute"]
        assert a.mean_ttft == b.mean_ttft
        blend_a, blend_b = by_scheme["cacheblend"]
        assert blend_a.mean_ttft != blend_b.mean_ttft
        # Every ratio still gets a complete comparison row.
        assert len(report.comparisons) == 2
        for row in report.comparisons:
            assert "full_recompute_mean_ttft" in row
            assert "full_reuse_quality_adjusted_ttft" in row


class TestCLIConfig:
    def test_smoke_overrides_only_size_options(self):
        from repro.bench.__main__ import build_parser, config_from_args

        args = build_parser().parse_args(
            ["--smoke", "--dataset", "samsum", "--zipf-alpha", "2.0"]
        )
        config = config_from_args(args)
        smoke = ExperimentConfig.smoke()
        assert config.n_requests == smoke.n_requests
        assert config.request_rate == smoke.request_rate
        assert config.dataset == "samsum"
        assert config.zipf_alpha == 2.0

    def test_explicit_options_reach_the_config(self):
        from repro.bench.__main__ import build_parser, config_from_args

        args = build_parser().parse_args(
            ["--models", "llama-70b", "--schemes", "cacheblend", "--ratios", "0.2"]
        )
        config = config_from_args(args)
        assert config.models == ("llama-70b",)
        assert config.schemes == ("cacheblend",)
        assert config.recompute_ratios == (0.2,)


class TestConfigValidation:
    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            ExperimentConfig(schemes=("warp_drive",))

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(ValueError):
            ExperimentConfig(scheduler="psychic")

    def test_measured_decode_pacing_requires_continuous_scheduler(self):
        """FCFS never consumes the decode calibration; rejecting the combo
        beats silently charging the user for a no-op proxy run."""
        with pytest.raises(ValueError):
            ExperimentConfig(scheduler="fcfs", measured_decode_pacing=True)
        ExperimentConfig(scheduler="continuous", measured_decode_pacing=True)

    def test_measured_decode_pacing_forces_the_proxy_probe(self):
        """Library path: run() without with_proxy must still run the probe
        when measured pacing is requested, or the pacing would silently fall
        back to analytic."""
        config = ExperimentConfig(
            models=("mistral-7b",),
            devices=("cpu_ram",),
            n_requests=6,
            measured_decode_pacing=True,
        )
        report = ExperimentRunner(config).run()
        assert report.proxy is not None
        assert report.proxy["calibration"]["n_decode_observations"] >= 2

    def test_smoke_config_is_small(self):
        config = ExperimentConfig.smoke()
        assert config.n_requests <= 100
        assert len(config.models) == 2
        assert len(config.devices) == 2


class TestDecodeThroughputColumn:
    def test_every_cell_reports_decode_tokens_per_s(self, report):
        for cell in report.cells:
            assert cell.mean_decode_tokens_per_s > 0.0

    def test_column_required_by_the_schema(self, report):
        document = report_to_dict(report, tag="broken")
        del document["cells"][0]["mean_decode_tokens_per_s"]
        with pytest.raises(ValueError):
            validate_report(document)


class TestStoreCapacityAxis:
    """The store-capacity sweep axis: per-cell hit rate, bytes and TTFT."""

    @pytest.fixture(scope="class")
    def store_report(self):
        config = ExperimentConfig(
            models=("mistral-7b",),
            devices=("nvme_ssd",),
            schemes=("cacheblend", "full_recompute"),
            recompute_ratios=(0.15,),
            n_requests=40,
            store_capacity_chunks=(4, 64),
            seed=0,
        )
        return ExperimentRunner(config).run()

    def test_axis_multiplies_the_cell_count(self, store_report):
        config = store_report.config
        expected = (
            len(config.store_capacity_chunks)
            * len(config.models)
            * len(config.devices)
            * len(config.schemes)
            * len(config.recompute_ratios)
        )
        assert len(store_report.cells) == expected

    def test_cells_carry_the_store_columns(self, store_report):
        for cell in store_report.cells:
            assert cell.store_capacity_chunks in (4, 64)
            assert 0.0 <= cell.store_hit_rate <= 1.0
            assert cell.store_bytes_stored > 0
            assert 0.0 <= cell.store_slow_tier_hit_share <= 1.0

    def test_capacity_drives_the_hit_rate_ttft_hockey_stick(self, store_report):
        cells = {
            cell.store_capacity_chunks: cell
            for cell in store_report.cells
            if cell.scheme == "cacheblend"
        }
        small, large = cells[4], cells[64]
        assert small.store_hit_rate < large.store_hit_rate
        assert small.store_bytes_stored < large.store_bytes_stored
        # Less resident KV means more recompute and more slow-tier reads:
        # measured TTFT (per-tier read delays included) rises.
        assert small.mean_ttft > large.mean_ttft

    def test_store_columns_are_null_without_the_axis(self, report):
        for cell in report.cells:
            assert cell.store_capacity_chunks is None
            assert cell.store_hit_rate is None
            assert cell.store_bytes_stored is None
            assert cell.store_slow_tier_hit_share is None

    def test_document_with_the_axis_validates(self, store_report, tmp_path):
        document = report_to_dict(store_report, tag="store")
        validate_report(document)
        for row in document["comparisons"]:
            assert row["store_capacity_chunks"] in (4, 64)
            assert 0.0 <= row["store_hit_rate"] <= 1.0

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            ExperimentConfig(store_capacity_chunks=(0,))
        with pytest.raises(ValueError):
            ExperimentConfig(store_slow_capacity_factor=0.5)

    def test_cli_flags_reach_the_config(self):
        from repro.bench.__main__ import build_parser, config_from_args

        args = build_parser().parse_args(
            ["--store-capacities", "8", "32", "--store-slow-factor", "2.0"]
        )
        config = config_from_args(args)
        assert config.store_capacity_chunks == (8, 32)
        assert config.store_slow_capacity_factor == 2.0


class TestAdmissionAxis:
    """Overload robustness: SLO admission + preemption vs plain serving,
    compared inside a single report (the acceptance criterion)."""

    @pytest.fixture(scope="class")
    def overload_report(self):
        config = ExperimentConfig(
            models=("mistral-7b",),
            devices=("nvme_ssd",),
            schemes=("cacheblend",),
            n_requests=60,
            request_rate=3.0,
            arrival_pattern="bursty",
            ttft_slo_s=8.0,
            admission_policies=("none", "slo"),
            seed=13,
        )
        return ExperimentRunner(config).run()

    def test_one_cell_per_policy(self, overload_report):
        policies = sorted(c.admission_policy for c in overload_report.cells)
        assert policies == ["none", "slo"]

    def test_slo_policy_strictly_improves_goodput(self, overload_report):
        by_policy = {c.admission_policy: c for c in overload_report.cells}
        plain, slo = by_policy["none"], by_policy["slo"]
        assert slo.goodput > plain.goodput
        assert slo.slo_attainment > plain.slo_attainment
        # Shedding/preemption actually engaged (otherwise the comparison is
        # vacuous): at least one of the two mechanisms fired.
        assert slo.rejection_rate > 0.0 or slo.preemption_count > 0

    def test_admission_comparison_row_in_the_same_report(self, overload_report):
        rows = [
            row
            for row in overload_report.comparisons
            if row.get("comparison") == "admission_vs_none"
        ]
        assert len(rows) == 1
        (row,) = rows
        assert row["admission_improves_goodput"]
        assert row["goodput_gain"] > 1.0

    def test_document_validates(self, overload_report):
        validate_report(report_to_dict(overload_report, tag="overload"))

    def test_plain_cells_report_trivial_robustness_columns(self, report):
        for cell in report.cells:
            assert cell.admission_policy == "none"
            assert cell.rejection_rate == 0.0
            assert cell.preemption_count == 0
            assert cell.slo_attainment == 1.0
            # Without deadlines every served request "meets SLO", so goodput
            # collapses to throughput.
            assert cell.goodput == pytest.approx(cell.throughput)

    def test_slo_policy_requires_a_deadline(self):
        with pytest.raises(ValueError):
            ExperimentConfig(admission_policies=("none", "slo"))

    def test_slo_policy_requires_continuous_scheduler(self):
        with pytest.raises(ValueError):
            ExperimentConfig(
                scheduler="fcfs", ttft_slo_s=5.0, admission_policies=("slo",)
            )

    def test_unknown_policy_and_pattern_rejected(self):
        with pytest.raises(ValueError):
            ExperimentConfig(admission_policies=("vip_only",), ttft_slo_s=5.0)
        with pytest.raises(ValueError):
            ExperimentConfig(arrival_pattern="lumpy")


class TestFaultAxis:
    """Injected store faults: recompute fallback priced, twin-run inflation."""

    @pytest.fixture(scope="class")
    def fault_report(self):
        config = ExperimentConfig(
            models=("mistral-7b",),
            devices=("nvme_ssd",),
            schemes=("cacheblend", "full_recompute"),
            n_requests=40,
            fault_rate=0.05,
            seed=0,
        )
        return ExperimentRunner(config).run()

    def test_cells_carry_fault_columns(self, fault_report):
        for cell in fault_report.cells:
            assert cell.fault_rate == 0.05
            assert cell.fault_recovered_chunks > 0
            assert cell.fault_ttft_inflation is not None

    def test_fault_recovery_inflates_cacheblend_ttft(self, fault_report):
        """Recomputing faulted chunks costs real prefill time for schemes
        that reuse KV; full recompute never trusted the store, so its twin
        runs are identical."""
        by_scheme = {c.scheme: c for c in fault_report.cells}
        assert by_scheme["cacheblend"].fault_ttft_inflation > 1.0
        assert by_scheme["full_recompute"].fault_ttft_inflation == pytest.approx(1.0)

    def test_fault_relabelling_is_deterministic(self, fault_report):
        config = fault_report.config
        twin = ExperimentRunner(config).run()
        assert [c.fault_recovered_chunks for c in twin.cells] == [
            c.fault_recovered_chunks for c in fault_report.cells
        ]
        assert [c.mean_ttft for c in twin.cells] == [
            c.mean_ttft for c in fault_report.cells
        ]

    def test_fault_free_cells_have_null_inflation(self, report):
        for cell in report.cells:
            assert cell.fault_rate == 0.0
            assert cell.fault_recovered_chunks == 0
            assert cell.fault_ttft_inflation is None

    def test_fault_rate_validation(self):
        with pytest.raises(ValueError):
            ExperimentConfig(fault_rate=-0.1)
        with pytest.raises(ValueError):
            ExperimentConfig(fault_rate=1.5)

    def test_document_validates(self, fault_report):
        validate_report(report_to_dict(fault_report, tag="faults"))


class TestFleetAxis:
    """The fleet sweep axis: n_servers x routing_policy cells, schema v5."""

    @pytest.fixture(scope="class")
    def fleet_report(self):
        config = ExperimentConfig(
            models=("mistral-7b",),
            devices=("nvme_ssd",),
            schemes=("cacheblend",),
            n_requests=60,
            fleet_sizes=(2, 4),
            seed=0,
        )
        return ExperimentRunner(config).run()

    def test_one_cell_per_size_and_policy(self, fleet_report):
        config = fleet_report.config
        expected = (
            len(config.fleet_sizes)
            * len(config.routing_policies)
            * len(config.models)
            * len(config.devices)
            * len(config.schemes)
            * len(config.recompute_ratios)
        )
        assert len(fleet_report.cells) == expected

    def test_cells_carry_the_fleet_columns(self, fleet_report):
        for cell in fleet_report.cells:
            assert cell.routing_policy in ("least_loaded", "consistent_hash", "affinity")
            assert cell.n_replicas in (2, 4)
            assert cell.aggregate_throughput == cell.throughput
            assert len(cell.per_replica_hit_rates) == cell.n_replicas
            assert 0.0 <= cell.fleet_hit_rate <= 1.0
            assert cell.utilisation_skew >= 1.0 - 1e-9

    def test_affinity_beats_least_loaded_at_4_replicas(self, fleet_report):
        """The acceptance criterion at sweep level: under the default Zipf
        workload, affinity's aggregate store hit rate strictly exceeds
        least-loaded's at the same request rate."""
        by_policy = {
            cell.routing_policy: cell
            for cell in fleet_report.cells
            if cell.n_replicas == 4
        }
        assert (
            by_policy["affinity"].fleet_hit_rate
            > by_policy["least_loaded"].fleet_hit_rate
        )

    def test_routing_comparison_rows(self, fleet_report):
        rows = [
            row
            for row in fleet_report.comparisons
            if str(row.get("comparison", "")).startswith("routing_")
        ]
        # affinity + consistent_hash vs least_loaded, at each of 2 sizes.
        assert len(rows) == 4
        for row in rows:
            routing = (
                str(row["comparison"])
                .removeprefix("routing_")
                .removesuffix("_vs_least_loaded")
            )
            assert row["hit_rate_gain"] == pytest.approx(
                row[f"fleet_hit_rate_{routing}"] - row["fleet_hit_rate_least_loaded"]
            )
            assert f"p99_ttft_{routing}" in row
            assert f"utilisation_skew_{routing}" in row

    def test_document_validates_and_formats(self, fleet_report):
        from repro.bench.report import format_summary

        document = report_to_dict(fleet_report, tag="fleet")
        validate_report(document)
        summary = format_summary(document)
        assert "fleet x4" in summary

    def test_fleet_columns_are_null_without_the_axis(self, report):
        for cell in report.cells:
            assert cell.routing_policy is None
            assert cell.n_replicas is None
            assert cell.aggregate_throughput is None
            assert cell.per_replica_hit_rates is None
            assert cell.fleet_hit_rate is None
            assert cell.utilisation_skew is None

    def test_fleet_columns_required_by_the_schema(self, report):
        for column in (
            "routing_policy",
            "n_replicas",
            "aggregate_throughput",
            "per_replica_hit_rates",
            "fleet_hit_rate",
            "utilisation_skew",
        ):
            document = report_to_dict(report, tag="broken")
            del document["cells"][0][column]
            with pytest.raises(ValueError):
                validate_report(document)

    def test_malformed_fleet_cells_rejected(self, fleet_report):
        document = report_to_dict(fleet_report, tag="broken")
        document["cells"][0]["per_replica_hit_rates"] = [0.5]  # wrong length
        with pytest.raises(ValueError):
            validate_report(document)
        document = report_to_dict(fleet_report, tag="broken")
        document["cells"][0]["utilisation_skew"] = 0.2
        with pytest.raises(ValueError):
            validate_report(document)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ExperimentConfig(fleet_sizes=(0,))
        with pytest.raises(ValueError):
            ExperimentConfig(fleet_sizes=(2,), routing_policies=("warp_routing",))
        with pytest.raises(ValueError):
            ExperimentConfig(fleet_sizes=(2,), store_capacity_chunks=(8,))
        with pytest.raises(ValueError):
            ExperimentConfig(fleet_sizes=(2,), fault_rate=0.1)

    def test_cli_flags_reach_the_config(self):
        from repro.bench.__main__ import build_parser, config_from_args

        args = build_parser().parse_args(
            ["--fleet-sizes", "2", "4", "--routing-policies", "affinity"]
        )
        config = config_from_args(args)
        assert config.fleet_sizes == (2, 4)
        assert config.routing_policies == ("affinity",)


class TestRobustnessSchema:
    def test_robustness_columns_required_by_the_schema(self, report):
        for column in (
            "admission_policy",
            "goodput",
            "slo_attainment",
            "rejection_rate",
            "preemption_count",
            "fault_rate",
            "fault_recovered_chunks",
            "fault_ttft_inflation",
        ):
            document = report_to_dict(report, tag="broken")
            del document["cells"][0][column]
            with pytest.raises(ValueError):
                validate_report(document)

    def test_out_of_range_robustness_values_rejected(self, report):
        document = report_to_dict(report, tag="broken")
        document["cells"][0]["rejection_rate"] = 1.5
        with pytest.raises(ValueError):
            validate_report(document)

    def test_cli_flags_reach_the_config(self):
        from repro.bench.__main__ import build_parser, config_from_args

        args = build_parser().parse_args(
            [
                "--arrival", "bursty",
                "--ttft-slo", "8.0",
                "--admission-policies", "none", "slo",
                "--fault-rate", "0.05",
            ]
        )
        config = config_from_args(args)
        assert config.arrival_pattern == "bursty"
        assert config.ttft_slo_s == 8.0
        assert config.admission_policies == ("none", "slo")
        assert config.fault_rate == 0.05


class TestPrecisionAxis:
    """The KV precision sweep axis: dtype-priced bytes + measured quality."""

    @pytest.fixture(scope="class")
    def dtype_report(self):
        config = ExperimentConfig(
            models=("mistral-7b",),
            devices=("nvme_ssd",),
            schemes=("cacheblend", "full_recompute"),
            n_requests=40,
            kv_dtypes=("float16", "int8", "mixed"),
            seed=0,
        )
        return ExperimentRunner(config).run()

    def test_axis_multiplies_the_cell_count(self, dtype_report):
        config = dtype_report.config
        expected = (
            len(config.kv_dtypes)
            * len(config.models)
            * len(config.devices)
            * len(config.schemes)
            * len(config.recompute_ratios)
        )
        assert len(dtype_report.cells) == expected

    def test_cells_carry_the_precision_columns(self, dtype_report):
        for cell in dtype_report.cells:
            assert cell.kv_dtype in ("float16", "int8", "mixed")
            assert cell.store_bytes_stored > 0
            assert cell.mean_kv_deviation is not None
            assert cell.mean_kv_deviation >= 0.0
            assert cell.mean_attention_deviation >= 0.0

    def test_int8_stores_exactly_half_the_bytes_of_float16(self, dtype_report):
        by_dtype = {
            cell.kv_dtype: cell
            for cell in dtype_report.cells
            if cell.scheme == "cacheblend"
        }
        assert by_dtype["int8"].store_bytes_stored * 2 == (
            by_dtype["float16"].store_bytes_stored
        )
        # mixed sits strictly between the uniform widths.
        assert (
            by_dtype["int8"].store_bytes_stored
            < by_dtype["mixed"].store_bytes_stored
            < by_dtype["float16"].store_bytes_stored
        )

    def test_measured_quality_orders_with_precision(self, dtype_report):
        """The frontier's quality axis: wider KV dtypes deviate less, and the
        per-layer mixed policy lands at or below uniform int8."""
        by_dtype = {
            cell.kv_dtype: cell
            for cell in dtype_report.cells
            if cell.scheme == "cacheblend"
        }
        assert by_dtype["float16"].mean_kv_deviation < by_dtype["mixed"].mean_kv_deviation
        assert by_dtype["mixed"].mean_kv_deviation <= by_dtype["int8"].mean_kv_deviation

    def test_dtype_comparison_rows(self, dtype_report):
        all_rows = [
            row
            for row in dtype_report.comparisons
            if str(row.get("comparison", "")).startswith("dtype_")
        ]
        # int8 and mixed vs the float16 baseline, for each of the 2 schemes.
        assert len(all_rows) == 4
        rows = {
            str(row["comparison"]): row
            for row in all_rows
            if row["scheme"] == "cacheblend"
        }
        int8_row = rows["dtype_int8_vs_float16"]
        assert int8_row["bytes_density_gain"] == pytest.approx(2.0)
        assert int8_row["int8_denser_than_float16"] is True
        mixed_row = rows["dtype_mixed_vs_float16"]
        assert 1.0 < mixed_row["bytes_density_gain"] < 2.0

    def test_document_validates(self, dtype_report):
        document = report_to_dict(dtype_report)
        assert document["schema_version"] == SCHEMA_VERSION
        validate_report(document)

    def test_precision_columns_are_null_without_the_axis(self, report):
        for cell in report.cells:
            assert cell.kv_dtype is None
            assert cell.mean_kv_deviation is None
            assert cell.mean_attention_deviation is None

    def test_dtype_validation(self):
        with pytest.raises(ValueError, match="kv_dtype"):
            ExperimentConfig(kv_dtypes=("int4",))
        with pytest.raises(ValueError, match="mutually exclusive"):
            ExperimentConfig(kv_dtypes=("int8",), fleet_sizes=(2,))

    def test_cli_flags_reach_the_config(self):
        from repro.bench.__main__ import build_parser, config_from_args

        args = build_parser().parse_args(
            ["--smoke", "--kv-dtypes", "float16", "int8"]
        )
        config = config_from_args(args)
        assert config.kv_dtypes == ("float16", "int8")
