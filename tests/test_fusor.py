"""KV fusor: selective recompute accounting and gradual filtering."""

import numpy as np
import pytest

from repro.core.fusor import FusorConfig, KVFusor
from repro.model.config import get_config
from repro.model.transformer import TransformerModel


@pytest.fixture(scope="module")
def model() -> TransformerModel:
    return TransformerModel(get_config("tiny"), seed=0)


@pytest.fixture(scope="module")
def chunk_caches(model):
    rng = np.random.default_rng(0)
    return [
        model.chunk_prefill(
            rng.integers(4, model.config.vocab_size, size=24).astype(np.int64)
        )
        for _ in range(3)
    ]


@pytest.fixture(scope="module")
def suffix_ids():
    return np.arange(10, 18, dtype=np.int64)


class TestFusionAccounting:
    def test_layer0_fully_recomputed(self, model, chunk_caches, suffix_ids):
        fusor = KVFusor(model, FusorConfig(recompute_ratio=0.15))
        result = fusor.fuse(chunk_caches, suffix_ids)
        assert result.recompute_counts[0] == result.n_tokens

    def test_mean_recompute_fraction_tracks_ratio(self, model, chunk_caches, suffix_ids):
        """Selective layers recompute about ratio x tokens plus the suffix."""
        ratio = 0.15
        fusor = KVFusor(model, FusorConfig(recompute_ratio=ratio))
        result = fusor.fuse(chunk_caches, suffix_ids)
        n = result.n_tokens
        n_suffix = suffix_ids.size
        selective = result.recompute_counts[1:]
        lower = ratio * 0.8 * n  # schedule floor
        upper = ratio * 1.5 * n + n_suffix  # schedule boost plus forced suffix
        assert all(lower <= count <= upper for count in selective)
        # The mean includes layer 0's full recompute, so it must exceed the
        # selective-layer ratio but stay well below full prefill.
        assert ratio < result.mean_recompute_fraction < 1.0

    def test_selected_sets_shrink_across_layers(self, model, chunk_caches, suffix_ids):
        fusor = KVFusor(model, FusorConfig(recompute_ratio=0.3))
        result = fusor.fuse(chunk_caches, suffix_ids)
        counts = result.recompute_counts[1:]
        assert all(a >= b for a, b in zip(counts, counts[1:]))

    def test_suffix_always_recomputed(self, model, chunk_caches, suffix_ids):
        fusor = KVFusor(model, FusorConfig(recompute_ratio=0.1))
        result = fusor.fuse(chunk_caches, suffix_ids)
        suffix_indices = np.arange(result.suffix_start, result.n_tokens)
        for selected in result.selected_per_layer[1:]:
            assert np.isin(suffix_indices, selected).all()

    def test_higher_ratio_recomputes_more(self, model, chunk_caches, suffix_ids):
        fusor = KVFusor(model)
        low = fusor.fuse(chunk_caches, suffix_ids, recompute_ratio=0.1)
        high = fusor.fuse(chunk_caches, suffix_ids, recompute_ratio=0.5)
        assert high.mean_recompute_fraction > low.mean_recompute_fraction

    def test_first_layer_deviation_zero_on_suffix(self, model, chunk_caches, suffix_ids):
        fusor = KVFusor(model)
        result = fusor.fuse(chunk_caches, suffix_ids)
        assert np.allclose(result.first_layer_deviation[result.suffix_start :], 0.0)


class TestFullReuse:
    def test_full_reuse_recomputes_only_suffix(self, model, chunk_caches, suffix_ids):
        fusor = KVFusor(model)
        result = fusor.full_reuse(chunk_caches, suffix_ids)
        assert result.recompute_counts == [suffix_ids.size] * model.config.n_layers
        assert result.mean_recompute_fraction == pytest.approx(
            suffix_ids.size / result.n_tokens
        )

    def test_fused_cache_covers_all_tokens(self, model, chunk_caches, suffix_ids):
        fusor = KVFusor(model)
        result = fusor.fuse(chunk_caches, suffix_ids)
        n_chunk_tokens = sum(cache.n_tokens for cache in chunk_caches)
        assert result.kv_cache.n_tokens == n_chunk_tokens + suffix_ids.size
        assert result.kv_cache.n_layers == model.config.n_layers
