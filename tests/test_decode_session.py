"""Persistent batch-decode sessions.

Locks down the :class:`~repro.model.tensors.DecodeSession` subsystem:
session-based decode is token-for-token identical to per-call
``decode_batch`` and to sequential ``decode_step`` loops — including under
membership churn (joins/leaves mid-generation) and pad growth — caches
round-trip bitwise through a slot, steady-state steps perform *no* full K/V
re-gather (copy-count instrumentation), and buffers are released when a
member leaves (peak resident KV tracks the live batch).
"""

import numpy as np
import pytest

from repro.model.config import get_config
from repro.model.tensors import DecodeSession, GrowableKVCache, KVCache, LayerKV
from repro.model.transformer import TransformerModel


@pytest.fixture(scope="module")
def model() -> TransformerModel:
    return TransformerModel(get_config("tiny"), seed=0)


def _random_prompt(model: TransformerModel, n_tokens: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(4, model.config.vocab_size, size=n_tokens).astype(np.int64)


def _prefill_caches(model: TransformerModel, lengths, seed: int = 0):
    return [
        model.full_prefill(_random_prompt(model, n, seed + i))
        for i, n in enumerate(lengths)
    ]


class TestSessionStepEquivalence:
    """One session step vs decode_batch vs sequential decode_step loops."""

    LENGTHS = (12, 7, 19, 9)
    N_STEPS = 8

    @pytest.fixture(scope="class")
    def streams(self, model):
        rng = np.random.default_rng(3)
        return rng.integers(
            4, model.config.vocab_size, size=(len(self.LENGTHS), self.N_STEPS)
        ).astype(np.int64)

    def test_stepwise_logits_match_decode_batch_and_decode_step(self, model, streams):
        prefills = _prefill_caches(model, self.LENGTHS)
        batched = [
            GrowableKVCache.from_kv_cache(p.kv_cache, reserve=self.N_STEPS)
            for p in prefills
        ]
        sequential = [
            GrowableKVCache.from_kv_cache(p.kv_cache, reserve=self.N_STEPS)
            for p in prefills
        ]
        session = model.new_decode_session()
        for i, p in enumerate(prefills):
            session.join(i, p.kv_cache, reserve=self.N_STEPS)
        for step in range(self.N_STEPS):
            session_logits = model.decode_session_step(session, streams[:, step])
            batch_logits = model.decode_batch(batched, streams[:, step])
            np.testing.assert_allclose(
                session_logits, batch_logits, rtol=1e-4, atol=1e-5
            )
            for i, cache in enumerate(sequential):
                logits, _ = model.decode_step(cache, int(streams[i, step]))
                assert int(np.argmax(logits)) == int(np.argmax(session_logits[i]))
                np.testing.assert_allclose(
                    logits, session_logits[i], rtol=1e-4, atol=1e-5
                )

    def test_caches_round_trip_through_a_slot(self, model, streams):
        """After identical steps, extract() matches the growable cache the
        same tokens produced through decode_batch — and a join immediately
        followed by extract is bitwise."""
        prefills = _prefill_caches(model, self.LENGTHS)
        session = model.new_decode_session()
        for i, p in enumerate(prefills):
            session.join(i, p.kv_cache, reserve=self.N_STEPS)
            bitwise = session.extract(i)
            for a, b in zip(bitwise.layers, p.kv_cache.layers):
                np.testing.assert_array_equal(a.keys, b.keys)
                np.testing.assert_array_equal(a.values, b.values)
            np.testing.assert_array_equal(bitwise.token_ids, p.kv_cache.token_ids)
            np.testing.assert_array_equal(bitwise.positions, p.kv_cache.positions)
        reference = [
            GrowableKVCache.from_kv_cache(p.kv_cache, reserve=self.N_STEPS)
            for p in prefills
        ]
        for step in range(self.N_STEPS):
            model.decode_session_step(session, streams[:, step])
            model.decode_batch(reference, streams[:, step])
        for i, ref in enumerate(reference):
            extracted = session.extract(i)
            expected = ref.to_kv_cache()
            assert extracted.n_tokens == expected.n_tokens
            for a, b in zip(extracted.layers, expected.layers):
                np.testing.assert_allclose(a.keys, b.keys, rtol=1e-5, atol=1e-6)
                np.testing.assert_allclose(a.values, b.values, rtol=1e-5, atol=1e-6)
            np.testing.assert_array_equal(extracted.token_ids, expected.token_ids)
            np.testing.assert_array_equal(extracted.positions, expected.positions)

    def test_generate_session_matches_generate_batch(self, model):
        prefills = _prefill_caches(model, self.LENGTHS, seed=11)
        session = model.new_decode_session()
        for i, p in enumerate(prefills):
            session.join(i, p.kv_cache, reserve=24)
        via_session = model.generate_session(
            session, [p.last_logits for p in prefills], max_new_tokens=24
        )
        via_batch = model.generate_batch(
            [GrowableKVCache.from_kv_cache(p.kv_cache, reserve=24) for p in prefills],
            [p.last_logits for p in prefills],
            max_new_tokens=24,
        )
        assert via_session == via_batch
        assert session.n_members == 0  # fully drained on return

    def test_generate_session_eos_dropout_matches_generate_batch(self, model):
        prefills = _prefill_caches(model, (6, 8), seed=21)
        eos_id = int(np.argmax(prefills[0].last_logits))
        session = model.new_decode_session()
        for i, p in enumerate(prefills):
            session.join(i, p.kv_cache, reserve=6)
        via_session = model.generate_session(
            session,
            [p.last_logits for p in prefills],
            max_new_tokens=6,
            eos_id=eos_id,
        )
        via_batch = model.generate_batch(
            [p.kv_cache for p in prefills],
            [p.last_logits for p in prefills],
            max_new_tokens=6,
            eos_id=eos_id,
        )
        assert via_session == via_batch
        assert via_session[0] == []  # hit EOS on its first token

    def test_input_validation(self, model):
        prefill = _prefill_caches(model, [5])[0]
        session = model.new_decode_session()
        with pytest.raises(ValueError):
            model.decode_session_step(session, [1])  # no members yet
        session.join("r", prefill.kv_cache)
        with pytest.raises(ValueError):
            model.decode_session_step(session, [1, 2])
        with pytest.raises(ValueError):
            session.join("r", prefill.kv_cache)  # duplicate member
        with pytest.raises(KeyError):
            session.leave("unknown")

    def test_invalid_token_id_leaves_slots_untouched(self, model):
        prefill = _prefill_caches(model, [5])[0]
        session = model.new_decode_session()
        session.join("r", prefill.kv_cache, reserve=2)
        with pytest.raises(ValueError):
            model.decode_session_step(session, [model.config.vocab_size])
        assert session.length_of("r") == 5
        logits = model.decode_session_step(session, [7])  # retry decodes cleanly
        assert logits.shape == (1, model.config.vocab_size)
        assert session.length_of("r") == 6


class TestMembershipChurn:
    """Joins/leaves mid-generation keep remaining members' decode exact."""

    def test_join_mid_generation_matches_sequential(self, model):
        rng = np.random.default_rng(5)
        streams = rng.integers(4, model.config.vocab_size, size=(3, 10)).astype(np.int64)
        prefills = _prefill_caches(model, (9, 14, 6), seed=31)
        sequential = [
            GrowableKVCache.from_kv_cache(p.kv_cache, reserve=10) for p in prefills
        ]
        session = model.new_decode_session()
        session.join(0, prefills[0].kv_cache, reserve=10)
        session.join(1, prefills[1].kv_cache, reserve=10)
        joined_at = {0: 0, 1: 0, 2: 4}
        for step in range(10):
            if step == 4:
                session.join(2, prefills[2].kv_cache, reserve=6)  # late admission
            order = list(session.member_ids)
            tokens = [int(streams[m, step - joined_at[m]]) for m in order]
            session_logits = model.decode_session_step(session, tokens)
            for row, member in enumerate(order):
                logits, _ = model.decode_step(sequential[member], tokens[row])
                np.testing.assert_allclose(
                    logits, session_logits[row], rtol=1e-4, atol=1e-5
                )

    def test_leave_mid_generation_keeps_survivors_exact(self, model):
        rng = np.random.default_rng(6)
        streams = rng.integers(4, model.config.vocab_size, size=(4, 12)).astype(np.int64)
        prefills = _prefill_caches(model, (8, 11, 5, 16), seed=41)
        sequential = [
            GrowableKVCache.from_kv_cache(p.kv_cache, reserve=12) for p in prefills
        ]
        session = model.new_decode_session()
        for i, p in enumerate(prefills):
            session.join(i, p.kv_cache, reserve=12)
        for step in range(12):
            if step == 3:
                session.leave(1)  # early EOS
            if step == 7:
                session.leave(3)  # length cap
            order = list(session.member_ids)
            tokens = [int(streams[m, step]) for m in order]
            session_logits = model.decode_session_step(session, tokens)
            for row, member in enumerate(order):
                logits, _ = model.decode_step(sequential[member], tokens[row])
                np.testing.assert_allclose(
                    logits, session_logits[row], rtol=1e-4, atol=1e-5
                )
        assert set(session.member_ids) == {0, 2}

    def test_pad_growth_mid_generation_is_transparent(self, model):
        """A token capacity hit mid-run regrows the pad geometrically without
        changing the decoded logits."""
        prefill = _prefill_caches(model, [6])[0]
        tight = DecodeSession(
            model.config.n_layers,
            model.config.n_kv_heads,
            model.config.head_dim,
            dtype=model.config.np_dtype,
            token_capacity=7,  # one spare row: grows on the second step
            slot_capacity=1,
        )
        tight.join(0, prefill.kv_cache)
        roomy = model.new_decode_session(token_capacity=64)
        roomy.join(0, prefill.kv_cache, reserve=16)
        capacities = {tight.token_capacity}
        for step in range(16):
            token = [int(4 + step)]
            np.testing.assert_array_equal(
                model.decode_session_step(tight, token),
                model.decode_session_step(roomy, token),
            )
            capacities.add(tight.token_capacity)
        assert tight.token_capacity >= 22
        assert len(capacities) <= 3  # geometric, not per-token
        assert tight.stats.grows >= 1


class TestCopyInstrumentation:
    """Acceptance: no full K/V re-gather on stable membership."""

    def test_steady_state_steps_append_only(self, model):
        prefills = _prefill_caches(model, (10, 13, 7), seed=51)
        session = model.new_decode_session()
        for i, p in enumerate(prefills):
            session.join(i, p.kv_cache, reserve=16)
        session.stats.reset()  # joins (the one allowed refill) are done
        for step in range(16):
            model.decode_session_step(session, [4 + step] * 3)
        assert session.stats.steps == 16
        assert session.stats.append_rows == 3 * 16  # one row per member per step
        assert session.stats.refill_rows == 0  # no re-gather, ever
        assert session.stats.grows == 0  # reserve prevented reallocation

    def test_join_refills_exactly_the_joined_rows(self, model):
        prefills = _prefill_caches(model, (10, 13), seed=61)
        session = model.new_decode_session()
        session.join(0, prefills[0].kv_cache, reserve=4)
        assert session.stats.refill_rows == 10
        session.join(1, prefills[1].kv_cache, reserve=4)
        assert session.stats.refill_rows == 10 + 13

    def test_leave_of_the_last_slot_copies_nothing(self, model):
        prefills = _prefill_caches(model, (5, 6), seed=71)
        session = model.new_decode_session()
        for i, p in enumerate(prefills):
            session.join(i, p.kv_cache)
        session.stats.reset()
        session.leave(1)  # dense prefix already; no hole to fill
        assert session.stats.refill_rows == 0
        session.stats.reset()
        # Re-join then remove the *first* member: the survivor moves once.
        session.join(1, prefills[1].kv_cache)
        session.stats.reset()
        session.leave(0)
        assert session.stats.refill_rows == session.length_of(1)


class TestMemoryRelease:
    """Buffers are dropped on leave; peak resident KV tracks the live batch."""

    def test_slot_axis_shrinks_after_leaves(self, model):
        prefill = _prefill_caches(model, [8])[0]
        session = model.new_decode_session(slot_capacity=2)
        for i in range(16):
            session.join(i, prefill.kv_cache, reserve=4)
        peak = session.resident_bytes()
        assert session.slot_capacity >= 16
        for i in range(15):
            session.leave(i)
        assert session.n_members == 1
        assert session.slot_capacity < 16
        assert session.resident_bytes() < peak / 2
        # The survivor still decodes correctly after all the compaction.
        reference = GrowableKVCache.from_kv_cache(prefill.kv_cache, reserve=1)
        expected, _ = model.decode_step(reference, 9)
        np.testing.assert_allclose(
            model.decode_session_step(session, [9])[0], expected, rtol=1e-4, atol=1e-5
        )

    def test_reused_slot_does_not_leak_previous_token_ids(self, model):
        """Regression: joining a cache with empty token_ids into a slot a
        previous member vacated must not surface the old occupant's ids
        through extract()."""
        prefill = _prefill_caches(model, [8])[0]
        session = model.new_decode_session()
        session.join("old", prefill.kv_cache)
        session.leave("old")
        anonymous = KVCache(
            [layer.copy() for layer in prefill.kv_cache.layers]  # no token_ids
        )
        session.join("new", anonymous, reserve=2)
        extracted = session.extract("new")
        assert np.all(extracted.token_ids == 0)
        np.testing.assert_array_equal(
            extracted.positions, np.arange(prefill.kv_cache.n_tokens)
        )

    def test_leave_forgets_the_member(self, model):
        prefill = _prefill_caches(model, [5])[0]
        session = model.new_decode_session()
        session.join("r", prefill.kv_cache)
        session.leave("r")
        assert session.n_members == 0
        with pytest.raises(KeyError):
            session.extract("r")

    def test_growable_cache_release_drops_buffers(self, model):
        prefill = _prefill_caches(model, [32])[0]
        cache = GrowableKVCache.from_kv_cache(prefill.kv_cache, reserve=32)
        assert cache.resident_bytes() > 0
        cache.release()
        assert cache.released
        assert cache.resident_bytes() == 0
        assert cache.n_tokens == 0
        with pytest.raises(RuntimeError):
            cache.layer_keys(0)
        with pytest.raises(RuntimeError):
            cache.append_token(1)
        # Every access path honours the contract — no bare IndexError from
        # the emptied buffers, no silently empty views.
        with pytest.raises(RuntimeError):
            cache.write_layer(0, 0, np.zeros(1), np.zeros(1))
        with pytest.raises(RuntimeError):
            cache.token_ids
        with pytest.raises(RuntimeError):
            cache.positions
        with pytest.raises(RuntimeError):
            cache.to_kv_cache()

    def test_generate_batch_releases_only_its_own_conversions(self, model):
        """generate_batch frees the scratch caches it converted from legacy
        KVCache inputs (the generation is over; nobody can reach them) but
        must never release a caller-provided GrowableKVCache."""
        prefills = _prefill_caches(model, (6, 9), seed=81)
        provided = GrowableKVCache.from_kv_cache(prefills[0].kv_cache, reserve=8)
        model.generate_batch(
            [provided, prefills[1].kv_cache],  # one growable, one legacy
            [p.last_logits for p in prefills],
            max_new_tokens=4,
        )
        assert not provided.released
        _, cache = model.decode_step(provided, 5)  # still fully usable
        assert cache.n_tokens == provided.n_tokens
        # Legacy inputs are untouched and a rerun reproduces the generation.
        first = model.generate(prefills[1].kv_cache, prefills[1].last_logits, 4)
        second = model.generate(prefills[1].kv_cache, prefills[1].last_logits, 4)
        assert first == second

    def test_session_validation(self, model):
        with pytest.raises(ValueError):
            DecodeSession(0, 1, 4)
        with pytest.raises(ValueError):
            DecodeSession(1, 1, 4, token_capacity=0)
        session = model.new_decode_session()
        empty = KVCache(
            [LayerKV(np.zeros((0, model.config.n_kv_heads, model.config.head_dim)),
                     np.zeros((0, model.config.n_kv_heads, model.config.head_dim)))
             for _ in range(model.config.n_layers)]
        )
        with pytest.raises(ValueError):
            session.join("empty", empty)
        wrong_shape = KVCache(
            [LayerKV(np.zeros((3, 1, 2)), np.zeros((3, 1, 2)))
             for _ in range(model.config.n_layers)]
        )
        with pytest.raises(ValueError):
            session.join("shape", wrong_shape)


class TestPreemptionInvariants:
    """Pause/resume mid-generation must be invisible to the tokens.

    The scheduler's decode preemption maps to ``session.preempt`` (extract
    + leave) followed by a later re-``join``; the resumed stream must be
    bitwise identical to one that was never paused, no matter when the
    pause happens or how the batch churns around it.
    """

    LENGTHS = (11, 8, 15)
    N_STEPS = 10

    @pytest.fixture(scope="class")
    def streams(self, model):
        rng = np.random.default_rng(17)
        return rng.integers(
            4, model.config.vocab_size, size=(len(self.LENGTHS), self.N_STEPS)
        ).astype(np.int64)

    def _run_with_pause(self, model, streams, pause_at: int, resume_at: int):
        """Member 1 is preempted at *pause_at* and resumes at *resume_at*;
        its steps between the two are replayed after resuming so every
        member sees the same token stream.  Returns per-member logits of
        member 1's steps plus its final extracted cache."""
        prefills = _prefill_caches(model, self.LENGTHS, seed=70)
        session = model.new_decode_session()
        for i, p in enumerate(prefills):
            session.join(i, p.kv_cache, reserve=self.N_STEPS)
        paused = None
        victim_logits = []
        victim_step = 0
        for step in range(self.N_STEPS):
            if step == pause_at:
                paused = session.preempt(1)
            if step == resume_at and paused is not None:
                session.join(1, paused, reserve=self.N_STEPS)
                paused = None
            order = list(session.member_ids)
            tokens = [int(streams[m, victim_step if m == 1 else step]) for m in order]
            logits = model.decode_session_step(session, tokens)
            for slot, m in enumerate(order):
                if m == 1:
                    victim_logits.append(logits[slot])
                    victim_step += 1
        final = session.extract(1) if 1 in session.member_ids else paused
        return victim_logits, final

    def test_preempted_then_resumed_decode_is_bitwise_identical(self, model, streams):
        # Unpreempted reference: member 1 decodes its stream start to end.
        prefills = _prefill_caches(model, self.LENGTHS, seed=70)
        reference = model.new_decode_session()
        for i, p in enumerate(prefills):
            reference.join(i, p.kv_cache, reserve=self.N_STEPS)
        ref_logits = []
        for step in range(self.N_STEPS):
            logits = model.decode_session_step(reference, streams[:, step])
            ref_logits.append(logits[1])
        ref_cache = reference.extract(1)

        got_logits, got_cache = self._run_with_pause(
            model, streams, pause_at=4, resume_at=7
        )
        # The victim decoded fewer steps (it was paused) but every step it
        # did decode is bitwise equal to the unpreempted run's same step.
        assert len(got_logits) < self.N_STEPS
        for step, got in enumerate(got_logits):
            np.testing.assert_array_equal(got, ref_logits[step])
        # And its cache is the unpreempted cache truncated to those steps.
        n = got_cache.n_tokens
        np.testing.assert_array_equal(got_cache.token_ids, ref_cache.token_ids[:n])
        np.testing.assert_array_equal(got_cache.positions, ref_cache.positions[:n])
        for got_layer, ref_layer in zip(got_cache.layers, ref_cache.layers):
            np.testing.assert_array_equal(got_layer.keys, ref_layer.keys[:n])
            np.testing.assert_array_equal(got_layer.values, ref_layer.values[:n])

    def test_preempt_roundtrip_is_bitwise_through_rejoin(self, model):
        prefills = _prefill_caches(model, self.LENGTHS, seed=71)
        session = model.new_decode_session()
        for i, p in enumerate(prefills):
            session.join(i, p.kv_cache, reserve=4)
        paused = session.preempt(1)
        assert 1 not in session.member_ids
        assert session.stats.preemptions == 1
        session.join(1, paused, reserve=4)
        restored = session.extract(1)
        np.testing.assert_array_equal(restored.token_ids, paused.token_ids)
        for got_layer, want_layer in zip(restored.layers, paused.layers):
            np.testing.assert_array_equal(got_layer.keys, want_layer.keys)
            np.testing.assert_array_equal(got_layer.values, want_layer.values)

    def test_survivors_unaffected_by_a_preemption(self, model, streams):
        """Members 0 and 2 must decode identically whether or not member 1
        is preempted beside them."""
        prefills = _prefill_caches(model, self.LENGTHS, seed=72)
        undisturbed = model.new_decode_session()
        churned = model.new_decode_session()
        for i, p in enumerate(prefills):
            undisturbed.join(i, p.kv_cache, reserve=self.N_STEPS)
            churned.join(i, p.kv_cache, reserve=self.N_STEPS)
        for step in range(self.N_STEPS):
            if step == 3:
                churned.preempt(1)
            ref = model.decode_session_step(undisturbed, streams[:, step])
            order = list(churned.member_ids)
            got = model.decode_session_step(
                churned, [int(streams[m, step]) for m in order]
            )
            for slot, m in enumerate(order):
                np.testing.assert_array_equal(got[slot], ref[m])
