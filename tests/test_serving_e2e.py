"""End-to-end measured serving path: workload → scheduler → engine → executor.

Every test here drives the *executed* pipeline (``execution="pipelined"``)
rather than the analytic model, locking down that served requests carry
measured :class:`~repro.core.pipeline.PipelineTrace` spans, that the spans
obey the §5 schedule, and that the measured rates flow into the scheduler's
cost estimates.  Run this tier alone with ``pytest -q -m e2e``.
"""

import math

import numpy as np
import pytest

from repro.bench.experiment import ExperimentConfig, ExperimentRunner
from repro.bench.workload import WorkloadGenerator
from repro.core.blend_engine import BlendEngine
from repro.core.executor import PipelinedExecutor
from repro.core.fusor import FusorConfig
from repro.kvstore.device import get_device
from repro.model.config import PAPER_MODEL_PAIRS, get_config
from repro.serving.costmodel import GPUSpec, OnlineCostCalibration, ServingCostModel
from repro.serving.engine import SCHEMES, InferenceEngine
from repro.serving.request import GenerationRequest
from repro.serving.scheduler import ContinuousBatchingScheduler
from repro.serving.simulator import LoadSimulator, WorkloadSpec

pytestmark = pytest.mark.e2e

#: Slack for comparing perf_counter timestamps recorded on two threads.
EPS = 1e-6

_CHUNK_POOL = [
    f"chunk {i} body token alpha beta gamma delta epsilon zeta eta theta {i}"
    for i in range(8)
]


def _texts_for(request: GenerationRequest) -> list[str]:
    """Deterministically map a generated request onto pool chunk texts."""
    rng = np.random.default_rng(request.request_id)
    n = min(max(2, request.n_chunks // 2), len(_CHUNK_POOL))
    picks = rng.choice(len(_CHUNK_POOL), size=n, replace=False)
    return [_CHUNK_POOL[i] for i in picks]


@pytest.fixture(scope="module")
def engine() -> BlendEngine:
    e = BlendEngine.build(paper_model="Mistral-7B", device="cpu_ram", seed=0)
    e.precompute_chunks(_CHUNK_POOL)
    return e


@pytest.fixture(scope="module")
def served_batch(engine):
    """A workload-generated batch served through the pipelined executor."""
    generator = WorkloadGenerator(dataset="samsum", request_rate=2.0, seed=3)
    requests = generator.generate(5)
    batch = [
        (_texts_for(request), f"question for request {request.request_id}?")
        for request in requests
    ]
    return engine.run_batch(batch, execution="pipelined")


class TestMeasuredTraces:
    def test_every_request_carries_a_measured_trace(self, served_batch):
        for result in served_batch:
            assert result.execution == "pipelined"
            assert result.trace is not None
            assert result.trace.load_start.size == result.fusion.kv_cache.n_layers
            # Spans are real measurements: every load/compute took > 0 time.
            assert np.all(result.trace.load_end > result.trace.load_start)
            assert np.all(result.trace.compute_end > result.trace.compute_start)

    def test_load_spans_are_non_overlapping_per_layer(self, served_batch):
        for result in served_batch:
            trace = result.trace
            assert np.all(trace.load_start[1:] >= trace.load_end[:-1] - EPS)

    def test_compute_spans_are_non_overlapping_per_layer(self, served_batch):
        for result in served_batch:
            trace = result.trace
            assert np.all(trace.compute_start[1:] >= trace.compute_end[:-1] - EPS)

    def test_no_layer_computes_before_its_load_finishes(self, served_batch):
        for result in served_batch:
            trace = result.trace
            assert np.all(trace.compute_start >= trace.load_end - EPS)

    def test_measured_ttft_finite_and_positive(self, served_batch):
        for result in served_batch:
            assert result.measured_ttft is not None
            assert math.isfinite(result.measured_ttft)
            assert result.measured_ttft > 0.0
            assert result.ttft == result.measured_ttft  # pipelined headline TTFT

    def test_measured_ttft_includes_a_measured_first_decode_step(self, served_batch):
        """Acceptance: pipelined TTFT runs to the first token — the fused
        pipeline's trace plus one *measured* decode step through the batched
        decode path on a preallocated cache."""
        for result in served_batch:
            assert result.measured_first_decode_s is not None
            assert math.isfinite(result.measured_first_decode_s)
            assert result.measured_first_decode_s > 0.0
            # Warm store: no cold-chunk prefill, so the measured TTFT is
            # exactly the pipeline trace plus the first decode step.
            assert result.cache_stats["misses"] == 0
            assert result.measured_ttft == pytest.approx(
                result.trace.total_time + result.measured_first_decode_s
            )

    def test_generation_is_cobatched_across_the_batch(self, served_batch):
        """Acceptance: the serving loop decodes the whole pipelined batch in
        lock-step on one DecodeSession — the first decode step is one shared
        batched step, not N per-request steps."""
        widths = {result.decode_batch_width for result in served_batch}
        assert widths == {len(served_batch)}
        first_steps = {result.measured_first_decode_s for result in served_batch}
        assert len(first_steps) == 1  # one measured step, shared by the batch

    def test_analytic_estimate_reported_beside_measured(self, served_batch):
        for result in served_batch:
            assert math.isfinite(result.ttft_estimate)
            assert result.ttft_estimate > 0.0
            assert result.ttft_estimate != result.measured_ttft

    def test_batch_completion_offsets_are_ordered(self, served_batch):
        offsets = [r.measured_ttft for r in served_batch]
        # Requests complete in queue order on the shared compute stream.
        assert offsets == sorted(offsets)


class TestPaperModelPresets:
    @pytest.mark.parametrize("paper_model", sorted(PAPER_MODEL_PAIRS))
    def test_measured_ttft_for_every_paper_model(self, paper_model):
        e = BlendEngine.build(paper_model=paper_model, device="cpu_ram", seed=1)
        chunks = _CHUNK_POOL[:2]
        e.precompute_chunks(chunks)
        result = e.run(chunks, "what is measured?", execution="pipelined")
        assert result.trace is not None
        assert math.isfinite(result.measured_ttft) and result.measured_ttft > 0.0


class TestCrossRequestPipelining:
    @pytest.fixture(scope="class")
    def calibrated_executor(self, engine):
        """Executor pinned to the load≈compute point of the proxy model."""
        rng = np.random.default_rng(0)
        caches = [
            engine.model.chunk_prefill(
                rng.integers(4, engine.model.config.vocab_size, size=64).astype(np.int64)
            )
            for _ in range(2)
        ]
        suffix = rng.integers(4, engine.model.config.vocab_size, size=8).astype(np.int64)
        probe = PipelinedExecutor(
            engine.model, FusorConfig(recompute_ratio=0.15), layer_load_time=0.0
        )
        calibration = probe.execute(caches, suffix, pipelined=False)
        load_time = float(calibration.compute_times[1:].mean())
        executor = PipelinedExecutor(
            engine.model, FusorConfig(recompute_ratio=0.15), layer_load_time=load_time
        )
        return executor, [(caches, suffix)] * 3

    def test_next_request_loads_while_previous_computes(self, calibrated_executor):
        executor, items = calibrated_executor
        batch = executor.execute_batch(items, pipelined=True)
        first, second = batch.requests[0], batch.requests[1]
        # Request B's layer-0 load starts before request A's last compute ends.
        assert second.trace.load_start[0] < first.trace.compute_end[-1]

    def test_pipelined_makespan_strictly_below_sequential(self, calibrated_executor):
        """Acceptance: cross-request pipelining wins at the calibrated point."""
        executor, items = calibrated_executor
        pipelined = min(
            executor.execute_batch(items, pipelined=True).makespan for _ in range(2)
        )
        sequential = min(
            executor.execute_batch(items, pipelined=False).makespan for _ in range(2)
        )
        assert pipelined < sequential


class TestMeasuredFeedsScheduling:
    @pytest.fixture(scope="class")
    def calibration(self):
        cal = OnlineCostCalibration()
        e = BlendEngine.build(
            paper_model="Mistral-7B", device="cpu_ram", seed=2, calibration=cal
        )
        chunks = _CHUNK_POOL[:3]
        e.precompute_chunks(chunks)
        e.run_batch(
            [(chunks[:2], "first?"), (chunks[1:], "second?")], execution="pipelined"
        )
        return cal

    def test_calibration_ready_after_pipelined_serving(self, calibration):
        assert calibration.ready
        assert calibration.n_observations >= 2
        assert calibration.load_s_per_token > 0.0
        assert calibration.compute_s_per_token > 0.0

    def test_decode_calibration_ready_after_pipelined_serving(self, calibration):
        """The batch's first decode step is one co-batched session step, so
        it lands as a *single* observation tagged with the batch width —
        never one observation per request (that would double-count the
        amortised step)."""
        assert calibration.decode_ready
        assert calibration.n_decode_observations == 1
        assert calibration.decode_step_time() > 0.0
        # Both requests decoded in one width-2 session step.
        assert set(calibration.decode_s_per_step_by_width) == {2}
        assert calibration.decode_step_time(2) == calibration.decode_step_time()

    def test_measured_ttft_service_includes_the_decode_step(self, calibration):
        cost_model = ServingCostModel(
            get_config("mistral-7b"), GPUSpec(), calibration=calibration
        )
        inference = InferenceEngine(
            cost_model, scheme="cacheblend", device=get_device("nvme_ssd")
        )
        request = GenerationRequest(request_id=0)
        result = inference.serve(request)
        cached_context = int(
            round(request.cached_chunk_fraction * request.n_context_tokens)
        )
        fuse_only = cost_model.ttft_cacheblend_measured(
            cached_context + request.n_suffix_tokens,
            request.n_suffix_tokens,
            inference.recompute_ratio,
        )
        assert result.ttft_service_measured == pytest.approx(
            fuse_only + calibration.decode_step_time()
        )

    def test_scheduler_paces_decode_at_the_measured_rate(self, calibration):
        """With a decode-ready calibration the continuous scheduler's decode
        iterations last the measured per-step delay, not the analytic
        ``decode_time`` slice."""
        cost_model = ServingCostModel(
            get_config("mistral-7b"), GPUSpec(), calibration=calibration
        )
        inference = InferenceEngine(
            cost_model, scheme="cacheblend", device=get_device("nvme_ssd")
        )
        request = GenerationRequest(request_id=0, arrival_time=0.0)
        results = inference.serve_batch([request])
        analytic = ContinuousBatchingScheduler().schedule([request], results)
        measured = ContinuousBatchingScheduler(
            decode_calibration=calibration
        ).schedule([request], results)
        decode_steps = request.n_output_tokens - 1
        expected_shift = decode_steps * (
            results[0].decode_time / decode_steps - calibration.decode_step_time()
        )
        assert measured[0].completion_time == pytest.approx(
            analytic[0].completion_time - expected_shift
        )
        # TTFT (prefill pacing) is untouched by the decode calibration.
        assert measured[0].first_token_time == pytest.approx(
            analytic[0].first_token_time
        )

    def test_cost_model_reports_measured_cacheblend_ttft(self, calibration):
        cost_model = ServingCostModel(
            get_config("mistral-7b"), GPUSpec(), calibration=calibration
        )
        measured = cost_model.ttft_cacheblend_measured(2048, 32, 0.15)
        analytic = cost_model.ttft_cacheblend(2048, 32, 0.15, get_device("cpu_ram"))
        assert math.isfinite(measured) and measured > 0.0
        assert measured != analytic

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_every_scheme_preset_serves_finite_ttft(self, calibration, scheme):
        cost_model = ServingCostModel(
            get_config("mistral-7b"), GPUSpec(), calibration=calibration
        )
        needs_device = scheme in ("full_reuse", "cacheblend")
        inference = InferenceEngine(
            cost_model,
            scheme=scheme,
            device=get_device("nvme_ssd") if needs_device else None,
        )
        result = inference.serve(GenerationRequest(request_id=0))
        assert math.isfinite(result.ttft_service) and result.ttft_service > 0.0
        if scheme == "cacheblend":
            assert result.ttft_service_measured is not None
            assert math.isfinite(result.ttft_service_measured)
            assert result.ttft_service_measured > 0.0
        else:
            assert result.ttft_service_measured is None

    def test_simulator_propagates_measured_column(self, calibration):
        cost_model = ServingCostModel(
            get_config("mistral-7b"), GPUSpec(), calibration=calibration
        )
        inference = InferenceEngine(
            cost_model, scheme="cacheblend", device=get_device("nvme_ssd")
        )
        simulator = LoadSimulator(inference, WorkloadSpec(), seed=5)
        result = simulator.run(1.0, n_requests=20)
        assert result.mean_ttft_service_measured is not None
        assert result.mean_ttft_service_measured > 0.0

    def test_overlap_scheduler_cuts_makespan_for_stall_heavy_batches(self, calibration):
        cost_model = ServingCostModel(
            get_config("mistral-7b"), GPUSpec(), calibration=calibration
        )
        inference = InferenceEngine(
            cost_model, scheme="cacheblend", device=get_device("slow_disk")
        )
        requests = [
            GenerationRequest(request_id=i, arrival_time=0.0) for i in range(6)
        ]
        results = inference.serve_batch(requests)
        assert any(r.stall_time > 0.0 for r in results)
        plain = ContinuousBatchingScheduler(overlap_loads=False).schedule(
            requests, results
        )
        overlapped = ContinuousBatchingScheduler(overlap_loads=True).schedule(
            requests, results
        )
        assert max(t.completion_time for t in overlapped) < max(
            t.completion_time for t in plain
        )

    def test_overlap_scheduler_preserves_lifecycle_invariants(self, calibration):
        cost_model = ServingCostModel(
            get_config("mistral-7b"), GPUSpec(), calibration=calibration
        )
        inference = InferenceEngine(
            cost_model, scheme="cacheblend", device=get_device("nvme_ssd")
        )
        simulator = LoadSimulator(inference, WorkloadSpec(), seed=9)
        requests = simulator.generate_requests(2.0, 30)
        results = inference.serve_batch(requests)
        timings = ContinuousBatchingScheduler(overlap_loads=True).schedule(
            requests, results
        )
        for timing in timings:
            assert timing.start_time >= timing.arrival_time - 1e-12
            assert timing.first_token_time >= timing.start_time
            assert timing.completion_time >= timing.first_token_time - 1e-9


class TestSweepReportsMeasured:
    @pytest.fixture(scope="class")
    def report(self):
        config = ExperimentConfig(
            models=("mistral-7b",),
            devices=("cpu_ram",),
            n_requests=8,
            request_rate=1.0,
            seed=0,
        )
        return ExperimentRunner(config).run(with_proxy=True)

    def test_proxy_reports_measured_and_estimated_side_by_side(self, report):
        proxy = report.proxy
        assert proxy["execution"] == "pipelined"
        assert len(proxy["measured_ttfts"]) == len(proxy["estimated_ttfts"])
        for measured in proxy["measured_ttfts"]:
            assert math.isfinite(measured) and measured > 0.0

    def test_proxy_batch_pipelining_beats_sequential(self, report):
        batch = report.proxy["batch"]
        assert batch["pipelined_makespan_s"] < batch["sequential_makespan_s"]
        assert batch["cross_request_speedup"] > 1.0

    def test_cacheblend_cells_carry_the_measured_column(self, report):
        for cell in report.cells:
            if cell.scheme == "cacheblend":
                assert cell.mean_ttft_service_measured is not None
                assert cell.mean_ttft_service_measured > 0.0
            else:
                assert cell.mean_ttft_service_measured is None
            assert math.isfinite(cell.mean_ttft) and cell.mean_ttft > 0.0

    def test_calibration_snapshot_in_proxy_block(self, report):
        calibration = report.proxy["calibration"]
        assert calibration["n_observations"] >= 2
        assert calibration["load_s_per_token"] > 0.0
        assert calibration["compute_s_per_token"] > 0.0

    def test_proxy_reports_measured_first_decode_steps(self, report):
        proxy = report.proxy
        assert len(proxy["measured_first_decode_s"]) == proxy["n_requests"]
        for first_decode in proxy["measured_first_decode_s"]:
            assert math.isfinite(first_decode) and first_decode > 0.0
        # The probe generates through the batched decode path.
        assert all(n > 0 for n in proxy["n_generated"])
        calibration = report.proxy["calibration"]
        assert calibration["n_decode_observations"] >= 2
        assert calibration["decode_s_per_step"] > 0.0

    def test_measured_column_exceeds_the_fuse_only_delay(self, report):
        """The measured sweep column runs to the first token: it must carry
        more than the fused pipeline alone (the first decode step)."""
        decode_step = report.proxy["calibration"]["decode_s_per_step"]
        for cell in report.cells:
            if cell.scheme == "cacheblend":
                assert cell.mean_ttft_service_measured > decode_step
