"""Tiered KV store: promotion, demotion cascade, read delays, stats, config."""

import numpy as np
import pytest

from repro.kvstore.config import StoreConfig
from repro.kvstore.device import get_device
from repro.kvstore.hierarchy import TieredChunkTracker, TieredKVStore
from repro.kvstore.protocol import ChunkStore
from repro.kvstore.store import KVCacheStore
from repro.kvstore.trie import RadixTrieStore
from repro.model.tensors import KVCache, LayerKV


def _cache(seed: int, n_tokens: int = 4) -> KVCache:
    ids = np.arange(seed * 100, seed * 100 + n_tokens, dtype=np.int64)
    rows = np.full((n_tokens, 1, 2), float(seed))
    return KVCache([LayerKV(rows.copy(), rows.copy())], ids, np.arange(n_tokens))


ENTRY_BYTES = _cache(1).nbytes(2)


def _tiered(ram_entries: int = 2, ssd_entries: int = 8) -> TieredKVStore:
    return TieredKVStore(
        tiers=[
            KVCacheStore(
                device=get_device("cpu_ram"),
                dtype_bytes=2,
                capacity_bytes=ram_entries * ENTRY_BYTES,
            ),
            KVCacheStore(
                device=get_device("nvme_ssd"),
                dtype_bytes=2,
                capacity_bytes=ssd_entries * ENTRY_BYTES,
            ),
        ]
    )


class TestTieredLookup:
    def test_put_lands_in_the_fastest_fitting_tier(self):
        store = _tiered()
        store.put("a", _cache(1))
        assert store.tiers[0].contains("a")
        assert not store.tiers[1].contains("a")

    def test_lookup_reports_the_serving_tier_and_its_delay(self):
        store = _tiered()
        store.put("a", _cache(1))
        store.tiers[1].put("b", _cache(2))
        fast = store.lookup("a")
        slow = store.lookup("b")
        assert fast.tier_index == 0
        assert slow.tier_index == 1
        ram, ssd = get_device("cpu_ram"), get_device("nvme_ssd")
        assert fast.read_delay == ram.read_time(ENTRY_BYTES)
        # b was just promoted, but its *lookup* was served (and priced) at
        # the SSD tier it was resident in.
        assert slow.read_delay == ssd.read_time(ENTRY_BYTES)
        assert slow.read_delay > fast.read_delay

    def test_miss_reports_no_tier(self):
        store = _tiered()
        found = store.lookup("nope")
        assert found.cache is None and found.tier_index is None
        assert store.stats.misses == 1

    def test_promotion_copies_slow_hits_to_ram(self):
        store = _tiered()
        store.tiers[1].put("b", _cache(2))
        store.lookup("b")
        # Inclusive hierarchy: the promoted copy lands in RAM, the SSD copy
        # stays so a later RAM eviction does not have to write it back.
        assert store.tiers[0].contains("b")
        assert store.tiers[1].contains("b")
        assert store.lookup("b").tier_index == 0

    def test_promotion_can_be_disabled(self):
        store = _tiered()
        store.promote_on_hit = False
        store.tiers[1].put("b", _cache(2))
        store.lookup("b")
        assert not store.tiers[0].contains("b")
        assert store.tiers[1].contains("b")


class TestDemotionCascade:
    def test_ram_eviction_demotes_to_ssd(self):
        store = _tiered(ram_entries=2)
        for seed in (1, 2, 3):
            store.put(f"c{seed}", _cache(seed))
        # c1 was evicted from RAM to make room for c3 and landed on SSD.
        assert not store.tiers[0].contains("c1")
        assert store.tiers[1].contains("c1")
        assert store.lookup("c1").tier_index == 1

    def test_demotion_can_be_disabled(self):
        store = TieredKVStore(
            tiers=[
                KVCacheStore(
                    device=get_device("cpu_ram"),
                    dtype_bytes=2,
                    capacity_bytes=2 * ENTRY_BYTES,
                ),
                KVCacheStore(device=get_device("nvme_ssd"), dtype_bytes=2),
            ],
            demote_on_evict=False,
        )
        for seed in (1, 2, 3):
            store.put(f"c{seed}", _cache(seed))
        assert not store.contains("c1")

    def test_oversized_entry_rejected_by_every_tier(self):
        store = _tiered(ram_entries=1, ssd_entries=1)
        with pytest.raises(ValueError, match="does not fit"):
            store.put("big", _cache(1, n_tokens=64))


class TestTieredStats:
    def test_stats_aggregate_across_tiers(self):
        store = _tiered()
        store.put("a", _cache(1))
        store.tiers[1].put("b", _cache(2))
        store.lookup("a")
        store.lookup("b")
        store.lookup("nope")
        assert store.stats.hits == 2
        assert store.stats.misses == 1
        # 3 resident copies: a in RAM, b in SSD plus its promoted RAM copy.
        assert store.bytes_stored == 3 * ENTRY_BYTES
        assert store.n_entries == 3

    def test_stats_by_tier_names_the_devices(self):
        store = _tiered()
        per_tier = store.stats_by_tier()
        assert [row["device"] for row in per_tier] == ["cpu_ram", "nvme_ssd"]
        assert all("hits" in row and "bytes_stored" in row for row in per_tier)

    def test_reset_stats_clears_every_tier(self):
        store = _tiered()
        store.lookup("nope")
        store.reset_stats()
        assert store.stats.misses == 0
        assert all(tier.stats.misses == 0 for tier in store.tiers)


class TestChunkStoreProtocol:
    def test_every_backend_satisfies_the_protocol(self):
        for store in (
            KVCacheStore(device=get_device("cpu_ram")),
            RadixTrieStore(device=get_device("cpu_ram")),
            _tiered(),
        ):
            assert isinstance(store, ChunkStore)

    def test_store_config_builds_every_backend(self):
        for backend, expected in (
            ("chunk", KVCacheStore),
            ("trie", RadixTrieStore),
            ("tiered", TieredKVStore),
            ("tiered_trie", TieredKVStore),
        ):
            store = StoreConfig(backend=backend).build(device=get_device("cpu_ram"))
            assert isinstance(store, expected)
        trie_tiers = StoreConfig(backend="tiered_trie").build()
        assert all(isinstance(tier, RadixTrieStore) for tier in trie_tiers.tiers)

    def test_store_config_rejects_unknown_backend(self):
        with pytest.raises(ValueError):
            StoreConfig(backend="redis")


class TestCleanMissRegressions:
    """Demoted-then-evicted and expired keys must read as clean misses.

    Locks the robustness contract the fault-tolerant gather path depends
    on: no churn sequence may turn a store read into a ``KeyError``.
    """

    def _demote_then_evict(self) -> TieredKVStore:
        # RAM holds 1 entry, SSD holds 1: inserting a/b/c demotes "a" to
        # SSD, then demoting "b" evicts "a" from the SSD tier entirely.
        store = _tiered(ram_entries=1, ssd_entries=1)
        for seed, key in enumerate(("a", "b", "c"), start=1):
            store.put(key, _cache(seed))
        assert not store.contains("a")
        return store

    def test_demoted_then_evicted_key_is_a_clean_miss(self):
        store = self._demote_then_evict()
        found = store.lookup("a")  # must not raise
        assert not found.hit
        assert found.cache is None and found.tier_index is None
        assert found.read_delay == 0.0

    def test_demoted_then_evicted_key_read_delay_is_zero(self):
        store = self._demote_then_evict()
        assert store.read_delay("a") == 0.0
        assert store.tiers[0].read_delay("a") == 0.0
        assert store.tiers[1].read_delay("a") == 0.0

    def test_read_delay_prices_the_serving_tier(self):
        store = _tiered()
        store.put("a", _cache(1))
        store.tiers[1].put("b", _cache(2))
        assert store.read_delay("a") == get_device("cpu_ram").read_time(ENTRY_BYTES)
        assert store.read_delay("b") == get_device("nvme_ssd").read_time(ENTRY_BYTES)

    def test_randomised_churn_never_raises(self):
        # 400 mixed ops over tight TTL'd trie tiers with demotion churn:
        # every lookup/read_delay returns cleanly, hit or miss.
        rng = np.random.default_rng(7)
        entry = RadixTrieStore(device=get_device("cpu_ram"))
        probe = _cache(1, n_tokens=6)
        entry.put("probe", probe)
        nbytes = entry.logical_bytes
        store = TieredKVStore(
            tiers=[
                RadixTrieStore(
                    device=get_device("cpu_ram"),
                    capacity_bytes=3 * nbytes,
                    ttl_s=0.002,
                ),
                RadixTrieStore(
                    device=get_device("nvme_ssd"),
                    capacity_bytes=6 * nbytes,
                    ttl_s=0.002,
                ),
            ]
        )
        keys = [f"k{i}" for i in range(12)]
        for step in range(400):
            key = keys[int(rng.integers(len(keys)))]
            op = int(rng.integers(3))
            if op == 0:
                store.put(key, _cache(int(rng.integers(1, 50)), n_tokens=6))
            elif op == 1:
                found = store.lookup(key)
                assert found.hit == (found.cache is not None)
            else:
                assert store.read_delay(key) >= 0.0


class TestTieredChunkTracker:
    def test_replays_hits_by_tier(self):
        tracker = TieredChunkTracker(tier_capacities=(2, 4))
        assert tracker.access("a") is None
        assert tracker.access("b") is None
        assert tracker.access("a") == 0
        tracker.access("c")  # evicts "b" from RAM -> tier 1
        assert tracker.tier_of("b") == 1
        assert tracker.access("b") == 1
        # The hit promoted "b" back to the RAM tier.
        assert tracker.tier_of("b") == 0

    def test_capacity_bounds_total_residency(self):
        tracker = TieredChunkTracker(tier_capacities=(1, 2))
        for key in "abcdef":
            tracker.access(key)
        assert tracker.n_entries == 3
        assert tracker.stats.evictions > 0
