"""FCFS vs continuous batching: shared invariants and batching behaviour."""

import numpy as np
import pytest

from repro.kvstore.device import get_device
from repro.model.config import get_config
from repro.serving.costmodel import ServingCostModel
from repro.serving.engine import InferenceEngine
from repro.serving.request import GenerationRequest
from repro.serving.scheduler import (
    ContinuousBatchingScheduler,
    FCFSScheduler,
    Scheduler,
)
from repro.serving.simulator import LoadSimulator, WorkloadSpec


@pytest.fixture(scope="module")
def engine() -> InferenceEngine:
    cost_model = ServingCostModel(get_config("mistral-7b"))
    return InferenceEngine(
        cost_model, scheme="cacheblend", device=get_device("nvme_ssd")
    )


@pytest.fixture(scope="module")
def workload(engine):
    simulator = LoadSimulator(engine, WorkloadSpec(n_output_tokens=64), seed=7)
    requests = simulator.generate_requests(2.0, 60)
    results = engine.serve_batch(requests)
    return requests, results


SCHEDULERS = [
    FCFSScheduler(n_servers=2),
    ContinuousBatchingScheduler(n_servers=2),
]


class TestSharedInvariants:
    @pytest.mark.parametrize("scheduler", SCHEDULERS, ids=lambda s: type(s).__name__)
    def test_no_request_starts_before_arrival(self, scheduler, workload):
        requests, results = workload
        timings = scheduler.schedule(requests, results)
        assert all(t.start_time >= t.arrival_time - 1e-12 for t in timings)

    @pytest.mark.parametrize("scheduler", SCHEDULERS, ids=lambda s: type(s).__name__)
    def test_lifecycle_ordering(self, scheduler, workload):
        requests, results = workload
        timings = scheduler.schedule(requests, results)
        for timing in timings:
            assert timing.first_token_time >= timing.start_time
            assert timing.completion_time >= timing.first_token_time - 1e-9

    @pytest.mark.parametrize("scheduler", SCHEDULERS, ids=lambda s: type(s).__name__)
    def test_output_aligned_with_input_order(self, scheduler, workload):
        requests, results = workload
        timings = scheduler.schedule(requests, results)
        assert [t.request_id for t in timings] == [r.request_id for r in requests]

    @pytest.mark.parametrize("scheduler", SCHEDULERS, ids=lambda s: type(s).__name__)
    def test_satisfies_scheduler_protocol(self, scheduler):
        assert isinstance(scheduler, Scheduler)

    @pytest.mark.parametrize("scheduler_cls", [FCFSScheduler, ContinuousBatchingScheduler])
    def test_length_mismatch_rejected(self, scheduler_cls, workload):
        requests, results = workload
        with pytest.raises(ValueError):
            scheduler_cls().schedule(requests, results[:-1])


class TestThroughputScaling:
    @pytest.mark.parametrize("scheduler_cls", [FCFSScheduler, ContinuousBatchingScheduler])
    def test_throughput_monotone_in_n_servers(self, scheduler_cls, workload):
        requests, results = workload
        makespans = []
        for n_servers in (1, 2, 4):
            timings = scheduler_cls(n_servers=n_servers).schedule(requests, results)
            makespans.append(max(t.completion_time for t in timings))
        assert makespans[0] >= makespans[1] - 1e-9
        assert makespans[1] >= makespans[2] - 1e-9


class TestContinuousBatching:
    def test_decode_interleaving_beats_fcfs_ttft(self, workload):
        """With long decodes, iteration-level admission cuts queueing TTFT."""
        requests, results = workload
        fcfs = FCFSScheduler(n_servers=2).schedule(requests, results)
        batched = ContinuousBatchingScheduler(n_servers=2).schedule(requests, results)
        assert np.mean([t.ttft for t in batched]) < np.mean([t.ttft for t in fcfs])

    def test_token_budget_serialises_admission(self):
        """A budget of one request's tokens degenerates to one-at-a-time."""
        requests = [
            GenerationRequest(request_id=i, n_chunks=2, chunk_tokens=512, arrival_time=0.0)
            for i in range(3)
        ]
        cost_model = ServingCostModel(get_config("mistral-7b"))
        engine = InferenceEngine(
            cost_model, scheme="cacheblend", device=get_device("nvme_ssd")
        )
        results = engine.serve_batch(requests)
        tight = ContinuousBatchingScheduler(
            n_servers=1, max_batch_tokens=requests[0].n_total_tokens
        ).schedule(requests, results)
        # Requests run back to back: each starts when the previous completes.
        by_start = sorted(tight, key=lambda t: t.start_time)
        for earlier, later in zip(by_start, by_start[1:]):
            assert later.start_time >= earlier.completion_time - 1e-9

    def test_oversized_request_still_admitted(self):
        request = GenerationRequest(request_id=0, n_chunks=8, chunk_tokens=1024)
        cost_model = ServingCostModel(get_config("mistral-7b"))
        engine = InferenceEngine(
            cost_model, scheme="cacheblend", device=get_device("nvme_ssd")
        )
        results = engine.serve_batch([request])
        timings = ContinuousBatchingScheduler(
            n_servers=1, max_batch_tokens=256
        ).schedule([request], results)
        assert timings[0].completion_time > 0.0

    def test_simulator_accepts_injected_scheduler(self, engine):
        simulator = LoadSimulator(
            engine,
            WorkloadSpec(n_output_tokens=64),
            scheduler=ContinuousBatchingScheduler(n_servers=2),
            seed=7,
        )
        result = simulator.run(2.0, n_requests=40)
        assert result.mean_ttft > 0.0
        assert result.throughput > 0.0


class TestDecodeTimeIntegratesKVGrowth:
    """Regression: decode_time must price the *growing* context, not pin the
    whole generation at the initial ``context_tokens``."""

    @pytest.fixture(scope="class")
    def cost_model(self):
        return ServingCostModel(get_config("mistral-7b"))

    def test_single_token_matches_per_token_delay(self, cost_model):
        for context in (0, 1_000, 100_000):
            assert cost_model.decode_time(1, context_tokens=context) == pytest.approx(
                cost_model.decode_time_per_token(context_tokens=context)
            )

    def test_long_decode_exceeds_initial_context_pricing(self, cost_model):
        """Deep in the memory-bound regime every appended token makes the
        next one dearer; the former flat pricing underestimated this."""
        context, n_new = 200_000, 4_000
        flat = n_new * cost_model.decode_time_per_token(context_tokens=context)
        integrated = cost_model.decode_time(n_new, context_tokens=context)
        assert integrated > flat
        # ...but never beyond pricing every token at the *final* context.
        final = n_new * cost_model.decode_time_per_token(
            context_tokens=context + n_new - 1
        )
        assert integrated < final

    def test_matches_explicit_per_token_sum(self, cost_model):
        context, n_new = 150_000, 64
        explicit = sum(
            cost_model.decode_time_per_token(context_tokens=context + k)
            for k in range(n_new)
        )
        assert cost_model.decode_time(n_new, context_tokens=context) == pytest.approx(
            explicit
        )

    def test_compute_bound_decode_stays_flat(self, cost_model):
        """With negligible context the per-token cost is constant, so the
        closed form reduces to the flat product."""
        n_new = 16
        flat = n_new * cost_model.decode_time_per_token(context_tokens=0)
        assert cost_model.decode_time(n_new, context_tokens=0) == pytest.approx(
            flat, rel=0.05
        )

    def test_zero_or_negative_tokens_cost_nothing(self, cost_model):
        assert cost_model.decode_time(0, context_tokens=1_000) == 0.0
        assert cost_model.decode_time(-3, context_tokens=1_000) == 0.0


class TestWidthAwareDecodePacing:
    """Co-batched decode at the scheduler level: an iteration's W decoding
    requests cost one measured batched step at width W, not W serial steps."""

    @staticmethod
    def _calibration() -> "OnlineCostCalibration":
        from repro.serving.costmodel import OnlineCostCalibration

        cal = OnlineCostCalibration()
        cal.observe_decode(0.010, batch_width=1)
        cal.observe_decode(0.016, batch_width=4)
        return cal

    def test_buckets_interpolate_clamp_and_extrapolate(self):
        cal = self._calibration()
        assert cal.decode_step_time(1) == pytest.approx(0.010)
        assert cal.decode_step_time(4) == pytest.approx(0.016)
        # Linear interpolation between observed widths...
        assert cal.decode_step_time(2) == pytest.approx(0.012)
        assert cal.decode_step_time(3) == pytest.approx(0.014)
        # ...slope extrapolation beyond the widest bucket (per-step cost
        # grows with width; clamping would price a 16-wide iteration at the
        # 4-wide step cost and make measured pacing optimistic)...
        assert cal.decode_step_time(16) == pytest.approx(0.016 + 0.002 * 12)
        # ...floored at flat when the top buckets are non-monotonic, and
        # clamped with only one bucket observed.
        from repro.serving.costmodel import OnlineCostCalibration

        noisy = OnlineCostCalibration()
        noisy.observe_decode(0.016, batch_width=2)
        noisy.observe_decode(0.010, batch_width=4)
        assert noisy.decode_step_time(32) == pytest.approx(0.010)
        lone = OnlineCostCalibration()
        lone.observe_decode(0.02, batch_width=3)
        assert lone.decode_step_time(32) == pytest.approx(0.02)
        # The width-agnostic EWMA is still the legacy aggregate.
        assert cal.decode_step_time() == pytest.approx(
            0.75 * 0.010 + 0.25 * 0.016
        )

    def test_bucket_validation(self):
        cal = self._calibration()
        with pytest.raises(ValueError):
            cal.observe_decode(0.01, batch_width=0)
        with pytest.raises(ValueError):
            cal.decode_step_time(0)
        from repro.serving.costmodel import OnlineCostCalibration

        with pytest.raises(RuntimeError):
            OnlineCostCalibration().decode_step_time(2)

    def test_snapshot_includes_the_width_buckets(self):
        snapshot = self._calibration().as_dict()
        assert snapshot["decode_s_per_step_by_width"] == {
            "1": pytest.approx(0.010),
            "4": pytest.approx(0.016),
        }

    def test_cobatched_iterations_amortise_decode(self):
        """Four decode-heavy requests in one batch: width-aware pacing prices
        each iteration at one width-4 step (~0.016 s), the legacy behaviour
        at four width-1 steps (0.040 s) — the measured amortisation finally
        reaches scheduler-level completion times."""
        cal = self._calibration()
        requests = [
            GenerationRequest(
                request_id=i, n_chunks=1, chunk_tokens=64, n_output_tokens=33,
                arrival_time=0.0,
            )
            for i in range(4)
        ]
        cost_model = ServingCostModel(get_config("mistral-7b"))
        engine = InferenceEngine(
            cost_model, scheme="cacheblend", device=get_device("nvme_ssd")
        )
        results = engine.serve_batch(requests)
        paced = ContinuousBatchingScheduler(decode_calibration=cal).schedule(
            requests, results
        )
        unpaced = ContinuousBatchingScheduler().schedule(requests, results)
        decode_steps = requests[0].n_output_tokens - 1  # 32 lock-step iterations
        # All four decode together; batched iterations are width-4 steps.
        batched_decode = decode_steps * cal.decode_step_time(4)
        serial_measured = decode_steps * 4 * cal.decode_step_time(1)
        measured_makespan = max(t.completion_time for t in paced)
        analytic_makespan = max(t.completion_time for t in unpaced)
        prefill_part = analytic_makespan - decode_steps * sum(
            r.decode_time / decode_steps for r in results
        )
        assert measured_makespan == pytest.approx(prefill_part + batched_decode)
        assert measured_makespan < prefill_part + serial_measured
        # Lifecycle invariants survive the width-aware pricing.
        for timing in paced:
            assert timing.first_token_time >= timing.start_time
            assert timing.completion_time >= timing.first_token_time

    def test_single_decoder_still_paces_at_width_one(self):
        cal = self._calibration()
        request = GenerationRequest(request_id=0, n_output_tokens=9, arrival_time=0.0)
        cost_model = ServingCostModel(get_config("mistral-7b"))
        engine = InferenceEngine(
            cost_model, scheme="cacheblend", device=get_device("nvme_ssd")
        )
        results = engine.serve_batch([request])
        paced = ContinuousBatchingScheduler(decode_calibration=cal).schedule(
            [request], results
        )
        unpaced = ContinuousBatchingScheduler().schedule([request], results)
        shift = (request.n_output_tokens - 1) * (
            results[0].decode_time / (request.n_output_tokens - 1)
            - cal.decode_step_time(1)
        )
        assert paced[0].completion_time == pytest.approx(
            unpaced[0].completion_time - shift
        )
