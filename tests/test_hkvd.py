"""HKVD token selection and the gradual-filtering ratio schedule."""

import numpy as np
import pytest

from repro.core.hkvd import HKVDSelector, ratio_schedule, select_top_fraction


class TestRatioSchedule:
    def test_average_approximates_target(self):
        schedule = ratio_schedule(0.15, n_layers=32)
        assert abs(float(np.mean(schedule)) - 0.15 * (1.5 + 0.8) / 2) < 1e-9

    def test_decays_from_boost_to_floor(self):
        schedule = ratio_schedule(0.2, n_layers=10, boost=1.5, floor=0.8)
        assert schedule[0] == pytest.approx(0.3)
        assert schedule[-1] == pytest.approx(0.16)
        assert all(a >= b for a, b in zip(schedule, schedule[1:]))

    def test_clipped_to_unit_interval(self):
        schedule = ratio_schedule(0.9, n_layers=4, boost=1.5)
        assert max(schedule) <= 1.0
        assert min(schedule) >= 0.0

    def test_single_layer(self):
        assert ratio_schedule(0.15, n_layers=1) == [pytest.approx(0.225)]

    @pytest.mark.parametrize("bad", [-0.1, 1.1])
    def test_rejects_out_of_range_target(self, bad):
        with pytest.raises(ValueError):
            ratio_schedule(bad, n_layers=4)

    def test_rejects_boost_below_floor(self):
        with pytest.raises(ValueError):
            ratio_schedule(0.2, n_layers=4, boost=0.5, floor=0.8)


class TestSelectTopFraction:
    def test_picks_highest_deviation_tokens(self):
        deviation = np.array([0.1, 5.0, 0.2, 4.0, 0.3])
        chosen = select_top_fraction(deviation, ratio=0.4)
        assert chosen.tolist() == [1, 3]

    def test_ratio_is_fraction_of_whole_sequence(self):
        deviation = np.arange(10, dtype=float)
        chosen = select_top_fraction(deviation, ratio=0.3)
        assert chosen.tolist() == [7, 8, 9]

    def test_candidates_restrict_selection(self):
        deviation = np.array([9.0, 8.0, 7.0, 1.0, 0.5])
        chosen = select_top_fraction(
            deviation, ratio=0.4, candidates=np.array([3, 4])
        )
        assert chosen.tolist() == [3, 4]

    def test_always_include_added_and_deduplicated(self):
        deviation = np.array([5.0, 1.0, 0.0, 0.0])
        chosen = select_top_fraction(
            deviation, ratio=0.25, always_include=np.array([0, 3])
        )
        assert chosen.tolist() == [0, 3]

    def test_zero_ratio_selects_only_always_include(self):
        deviation = np.ones(8)
        chosen = select_top_fraction(deviation, ratio=0.0, always_include=np.array([7]))
        assert chosen.tolist() == [7]


class TestHKVDSelector:
    def test_gradual_filtering_shrinks_selection(self):
        rng = np.random.default_rng(0)
        n_tokens = 100
        selector = HKVDSelector(target_ratio=0.2, n_layers=6)
        selected = selector.first_selection(rng.random(n_tokens))
        for _ in range(4):
            deviation = np.zeros(n_tokens)
            deviation[selected] = rng.random(selected.size)
            selected = selector.next_selection(deviation)
        counts = selector.selected_counts
        assert all(a >= b for a, b in zip(counts, counts[1:]))

    def test_selection_is_subset_of_previous(self):
        rng = np.random.default_rng(1)
        selector = HKVDSelector(target_ratio=0.3, n_layers=4)
        first = selector.first_selection(rng.random(50))
        second = selector.next_selection(rng.random(50))
        assert np.isin(second, first).all()

    def test_suffix_always_included(self):
        suffix = np.array([48, 49])
        selector = HKVDSelector(target_ratio=0.1, n_layers=4, always_include=suffix)
        deviation = np.zeros(50)
        deviation[:10] = 1.0
        selected = selector.first_selection(deviation)
        assert np.isin(suffix, selected).all()
        selected = selector.next_selection(deviation)
        assert np.isin(suffix, selected).all()

    def test_next_before_first_raises(self):
        selector = HKVDSelector(target_ratio=0.2, n_layers=4)
        with pytest.raises(RuntimeError):
            selector.next_selection(np.ones(10))
