"""Property-style invariants of cross-request pipelining and execution modes.

Two families:

* schedule invariants over randomized (n_layers, per-layer times, queue
  depth) configurations, checked on the deterministic analytic
  :func:`~repro.core.pipeline.cross_request_schedule` (no thread noise) and
  once on the threaded executor at a delay-dominated operating point;
* numerical equivalence: the fused KV is bitwise-equal between
  ``execution="pipelined"`` and ``"analytic"`` BlendEngine paths, and
  between the executor's pipelined and sequential schedules.
"""

import numpy as np
import pytest

from repro.core.blend_engine import BlendEngine
from repro.core.executor import PipelinedExecutor
from repro.core.fusor import FusorConfig
from repro.core.pipeline import (
    cross_request_pipelined_time,
    cross_request_schedule,
    cross_request_sequential_time,
)
from repro.model.config import get_config
from repro.model.transformer import TransformerModel
from repro.serving.costmodel import ServingCostModel
from repro.serving.engine import EngineResult
from repro.serving.request import GenerationRequest
from repro.serving.scheduler import ContinuousBatchingScheduler

EPS = 1e-9


def _random_queue(rng: np.random.Generator):
    """A random (loads, computes) queue: depth 1..6, 1..12 layers, mixed scales."""
    depth = int(rng.integers(1, 7))
    n_layers = int(rng.integers(1, 13))
    loads, computes = [], []
    for _ in range(depth):
        scale = float(rng.choice([1e-4, 1e-3, 1e-2]))
        loads.append(list(rng.uniform(0.0, scale, size=n_layers)))
        computes.append(list(rng.uniform(0.0, scale, size=n_layers)))
    return loads, computes


class TestCrossRequestScheduleProperties:
    @pytest.mark.parametrize("seed", range(25))
    def test_pipelined_makespan_never_exceeds_sequential(self, seed):
        loads, computes = _random_queue(np.random.default_rng(seed))
        pipelined = cross_request_pipelined_time(loads, computes)
        sequential = cross_request_sequential_time(loads, computes)
        assert pipelined <= sequential + EPS

    @pytest.mark.parametrize("seed", range(25))
    def test_makespan_bounded_below_by_both_streams(self, seed):
        """Loads are serial on the device, computes serial on the GPU."""
        loads, computes = _random_queue(np.random.default_rng(seed))
        pipelined = cross_request_pipelined_time(loads, computes)
        total_load = sum(sum(request) for request in loads)
        total_compute = sum(sum(request) for request in computes)
        assert pipelined >= max(total_load, total_compute) - EPS

    @pytest.mark.parametrize("seed", range(10))
    def test_spans_well_formed_within_and_across_requests(self, seed):
        loads, computes = _random_queue(np.random.default_rng(seed))
        traces = cross_request_schedule(loads, computes)
        previous_end = 0.0
        for trace in traces:
            assert np.all(trace.compute_start >= trace.load_end - EPS)
            assert np.all(trace.load_start[1:] >= trace.load_end[:-1] - EPS)
            assert np.all(trace.compute_start[1:] >= trace.compute_end[:-1] - EPS)
            # Compute is one stream: request r starts after request r-1 ends.
            if trace.compute_start.size:
                assert trace.compute_start[0] >= previous_end - EPS
                previous_end = float(trace.compute_end[-1])

    @pytest.mark.parametrize("seed", range(10))
    def test_makespan_monotone_in_queue_depth(self, seed):
        loads, computes = _random_queue(np.random.default_rng(seed))
        makespans = [
            cross_request_pipelined_time(loads[: depth + 1], computes[: depth + 1])
            for depth in range(len(loads))
        ]
        assert all(a <= b + EPS for a, b in zip(makespans, makespans[1:]))

    def test_mismatched_queue_shapes_rejected(self):
        with pytest.raises(ValueError):
            cross_request_schedule([[1.0]], [[1.0], [1.0]])
        with pytest.raises(ValueError):
            cross_request_schedule([[1.0, 2.0]], [[1.0]])


class TestThreadedBatchInvariant:
    def test_executed_pipelined_makespan_below_sequential_at_calibrated_point(self):
        """At load≈compute, cross-request overlap must win despite thread noise."""
        model = TransformerModel(get_config("small"), seed=0)
        rng = np.random.default_rng(0)
        caches = [
            model.chunk_prefill(
                rng.integers(4, model.config.vocab_size, size=64).astype(np.int64)
            )
            for _ in range(2)
        ]
        suffix = rng.integers(4, model.config.vocab_size, size=8).astype(np.int64)
        config = FusorConfig(recompute_ratio=0.2)
        probe = PipelinedExecutor(model, config, layer_load_time=0.0)
        calibration = probe.execute(caches, suffix, pipelined=False)
        load_time = float(calibration.compute_times[1:].mean())
        executor = PipelinedExecutor(model, config, layer_load_time=load_time)
        items = [(caches, suffix)] * 3
        pipelined = min(
            executor.execute_batch(items, pipelined=True).makespan for _ in range(2)
        )
        sequential = min(
            executor.execute_batch(items, pipelined=False).makespan for _ in range(2)
        )
        assert pipelined < sequential


class TestExecutionModeEquivalence:
    CHUNKS = [
        "the first chunk talks about retrieval and caching of key values",
        "the second chunk talks about selective recompute of tokens",
        "the third chunk talks about pipelined loading from storage",
    ]

    @pytest.fixture(scope="class")
    def engine(self):
        e = BlendEngine.build(paper_model="Mistral-7B", device="cpu_ram", seed=0)
        e.precompute_chunks(self.CHUNKS)
        return e

    @pytest.mark.parametrize("ratio", [0.0, 0.15, 0.5])
    def test_fused_kv_bitwise_equal_between_modes(self, engine, ratio):
        question = "which chunk mentions storage?"
        analytic = engine.run(
            self.CHUNKS, question, recompute_ratio=ratio, execution="analytic"
        )
        pipelined = engine.run(
            self.CHUNKS, question, recompute_ratio=ratio, execution="pipelined"
        )
        for a, b in zip(
            analytic.fusion.kv_cache.layers, pipelined.fusion.kv_cache.layers
        ):
            assert np.array_equal(a.keys, b.keys)
            assert np.array_equal(a.values, b.values)
        assert np.array_equal(analytic.fusion.last_logits, pipelined.fusion.last_logits)
        assert analytic.fusion.recompute_counts == pipelined.fusion.recompute_counts

    def test_executor_pipelined_bitwise_equals_sequential(self, engine):
        caches = [
            engine.kv_store.peek(engine.chunk_cache_key(engine.encode(text)))
            for text in self.CHUNKS
        ]
        suffix = engine.encode("same bytes both ways?")
        executor = PipelinedExecutor(
            engine.model, FusorConfig(recompute_ratio=0.15), layer_load_time=0.001
        )
        seq = executor.execute(caches, suffix, pipelined=False)
        pipe = executor.execute(caches, suffix, pipelined=True)
        for a, b in zip(seq.fusion.kv_cache.layers, pipe.fusion.kv_cache.layers):
            assert np.array_equal(a.keys, b.keys)
            assert np.array_equal(a.values, b.values)


def _stall_heavy_results(rng: np.random.Generator, n: int):
    requests, results = [], []
    for i in range(n):
        gpu = float(rng.uniform(0.05, 0.3))
        stall = float(rng.uniform(0.0, 0.4))
        decode = float(rng.uniform(0.0, 0.2))
        requests.append(
            GenerationRequest(request_id=i, n_chunks=2, chunk_tokens=256, arrival_time=0.0)
        )
        results.append(
            EngineResult(
                scheme="cacheblend",
                gpu_time=gpu,
                ttft_service=gpu + stall,
                decode_time=decode,
                stall_time=stall,
            )
        )
    return requests, results


class TestSchedulerOverlapProperties:
    @pytest.mark.parametrize("seed", range(10))
    def test_overlap_never_increases_makespan(self, seed):
        requests, results = _stall_heavy_results(np.random.default_rng(seed), 6)
        plain = ContinuousBatchingScheduler(overlap_loads=False).schedule(
            requests, results
        )
        overlapped = ContinuousBatchingScheduler(overlap_loads=True).schedule(
            requests, results
        )
        assert max(t.completion_time for t in overlapped) <= (
            max(t.completion_time for t in plain) + EPS
        )

    @pytest.mark.parametrize("seed", range(10))
    def test_overlap_respects_gpu_lower_bound(self, seed):
        """Hidden stalls never push the makespan below the serial GPU work."""
        requests, results = _stall_heavy_results(np.random.default_rng(seed), 6)
        overlapped = ContinuousBatchingScheduler(overlap_loads=True).schedule(
            requests, results
        )
        gpu_total = sum(r.gpu_time + r.decode_time for r in results)
        assert max(t.completion_time for t in overlapped) >= gpu_total - EPS


class TestMeasuredCostModelGuards:
    def test_measured_ttft_requires_observations(self):
        cost_model = ServingCostModel(get_config("mistral-7b"))
        with pytest.raises(RuntimeError):
            cost_model.ttft_cacheblend_measured(1024, 32, 0.15)
