"""Workload generator: distributions, determinism and reuse accounting."""

import numpy as np
import pytest

from repro.bench.workload import DATASET_PRESETS, WorkloadGenerator, get_dataset


class TestRequestShape:
    def test_chunk_counts_within_dataset_bounds(self):
        spec = get_dataset("2wikimqa")
        generator = WorkloadGenerator(dataset="2wikimqa", seed=0)
        for request in generator.generate(100):
            assert spec.min_chunks <= request.n_chunks <= spec.max_chunks

    def test_chunk_tokens_track_dataset_mean(self):
        spec = get_dataset("multinews")
        generator = WorkloadGenerator(dataset="multinews", seed=1)
        requests = generator.generate(300)
        mean_tokens = np.mean([r.chunk_tokens for r in requests])
        assert abs(mean_tokens - spec.chunk_tokens_mean) < 3 * spec.chunk_tokens_std

    def test_cached_fractions_within_unit_interval(self):
        generator = WorkloadGenerator(seed=2)
        for request in generator.generate(100):
            assert 0.0 <= request.cached_chunk_fraction <= 1.0
            assert 0.0 <= request.prefix_cached_fraction <= request.cached_chunk_fraction


class TestArrivals:
    def test_arrivals_strictly_increasing(self):
        generator = WorkloadGenerator(request_rate=2.0, seed=3)
        arrivals = [r.arrival_time for r in generator.generate(200)]
        assert all(b > a for a, b in zip(arrivals, arrivals[1:]))

    def test_mean_rate_matches_configuration(self):
        rate = 4.0
        generator = WorkloadGenerator(request_rate=rate, seed=4)
        requests = generator.generate(2000)
        empirical = len(requests) / requests[-1].arrival_time
        assert empirical == pytest.approx(rate, rel=0.15)


class TestDeterminismAndReuse:
    def test_same_seed_same_stream(self):
        a = WorkloadGenerator(seed=5).generate(50)
        b = WorkloadGenerator(seed=5).generate(50)
        assert [(r.n_chunks, r.chunk_tokens, r.arrival_time) for r in a] == [
            (r.n_chunks, r.chunk_tokens, r.arrival_time) for r in b
        ]

    def test_different_seed_differs(self):
        a = WorkloadGenerator(seed=6).generate(50)
        b = WorkloadGenerator(seed=7).generate(50)
        assert [r.arrival_time for r in a] != [r.arrival_time for r in b]

    def test_popularity_skew_raises_hit_rate(self):
        uniform = WorkloadGenerator(zipf_alpha=0.0, seed=8)
        uniform.generate(300)
        skewed = WorkloadGenerator(zipf_alpha=1.5, seed=8)
        skewed.generate(300)
        assert skewed.stats.chunk_hit_rate > uniform.stats.chunk_hit_rate

    def test_stats_are_consistent(self):
        generator = WorkloadGenerator(seed=9)
        requests = generator.generate(120)
        stats = generator.stats
        assert stats.n_requests == 120
        assert stats.n_chunk_accesses == sum(r.n_chunks for r in requests)
        assert stats.mean_cached_chunk_fraction == pytest.approx(
            np.mean([r.cached_chunk_fraction for r in requests])
        )
        document = stats.as_dict()
        assert document["cache"]["hits"] + document["cache"]["misses"] == (
            stats.n_chunk_accesses
        )

    def test_unknown_dataset_rejected(self):
        with pytest.raises(KeyError):
            WorkloadGenerator(dataset="nope")

    def test_all_presets_generate(self):
        for name in DATASET_PRESETS:
            requests = WorkloadGenerator(dataset=name, seed=0).generate(10)
            assert len(requests) == 10


class TestTieredStoreSimulation:
    def test_replay_reports_per_request_residency(self):
        generator = WorkloadGenerator(dataset="2wikimqa", seed=0)
        generator.generate(50)
        simulation = generator.simulate_tiered_store(8, 32)
        assert len(simulation.per_request) == 50
        assert 0.0 <= simulation.hit_rate <= 1.0
        for cached, prefix, slow in simulation.per_request:
            assert 0.0 <= prefix <= cached <= 1.0
            assert 0.0 <= slow <= 1.0
        assert sum(simulation.resident_chunks) <= 8 + 32

    def test_bigger_ram_tier_raises_the_hit_rate(self):
        def replay(capacity):
            generator = WorkloadGenerator(dataset="2wikimqa", seed=0)
            generator.generate(80)
            return generator.simulate_tiered_store(capacity, 4 * capacity)

        assert replay(4).hit_rate < replay(64).hit_rate

    def test_replay_requires_a_recorded_trace(self):
        generator = WorkloadGenerator(dataset="2wikimqa", seed=0)
        with pytest.raises(RuntimeError):
            generator.simulate_tiered_store(8, 32)


class TestArrivalPatterns:
    """Bursty/diurnal presets: overload windows at the same average rate."""

    def test_unknown_pattern_rejected(self):
        with pytest.raises(ValueError):
            WorkloadGenerator(arrival_pattern="tsunami")

    @pytest.mark.parametrize("pattern", ["poisson", "bursty", "diurnal"])
    def test_arrivals_strictly_increasing(self, pattern):
        generator = WorkloadGenerator(
            request_rate=2.0, arrival_pattern=pattern, seed=11
        )
        arrivals = [r.arrival_time for r in generator.generate(200)]
        assert all(b > a for a, b in zip(arrivals, arrivals[1:]))

    @pytest.mark.parametrize("pattern", ["bursty", "diurnal"])
    def test_long_run_rate_is_preserved(self, pattern):
        rate = 4.0
        generator = WorkloadGenerator(
            request_rate=rate, arrival_pattern=pattern, seed=12
        )
        requests = generator.generate(2000)
        empirical = len(requests) / requests[-1].arrival_time
        assert empirical == pytest.approx(rate, rel=0.2)

    def test_bursty_concentrates_arrivals_into_overload_windows(self):
        """The in-burst gaps run several times faster than the nominal rate,
        so gap variance (burstiness) must clearly exceed Poisson's."""
        rate = 2.0
        poisson = WorkloadGenerator(request_rate=rate, seed=13).generate(1000)
        bursty = WorkloadGenerator(
            request_rate=rate, arrival_pattern="bursty", seed=13
        ).generate(1000)

        def squared_cv(requests):
            gaps = np.diff([r.arrival_time for r in requests])
            return float(np.var(gaps) / np.mean(gaps) ** 2)

        assert squared_cv(bursty) > 1.5 * squared_cv(poisson)
        # The median gap is an in-burst gap: well under the nominal mean.
        gaps = np.diff([r.arrival_time for r in bursty])
        assert float(np.median(gaps)) < 0.5 / rate

    def test_diurnal_rate_oscillates(self):
        """Arrival density in the peak half-cycle beats the trough's."""
        generator = WorkloadGenerator(
            request_rate=2.0, arrival_pattern="diurnal", seed=14
        )
        arrivals = np.array([r.arrival_time for r in generator.generate(1000)])
        span = arrivals[-1]
        counts, _ = np.histogram(arrivals, bins=8, range=(0.0, span))
        assert counts.max() > 1.5 * max(1, counts.min())

    def test_patterns_are_deterministic_per_seed(self):
        a = WorkloadGenerator(arrival_pattern="bursty", seed=15).generate(50)
        b = WorkloadGenerator(arrival_pattern="bursty", seed=15).generate(50)
        assert [r.arrival_time for r in a] == [r.arrival_time for r in b]


class TestTTFTSLOStamping:
    def test_deadline_stamped_on_every_request(self):
        generator = WorkloadGenerator(ttft_slo_s=5.0, seed=16)
        for request in generator.generate(40):
            assert request.deadline_s == 5.0

    def test_no_slo_means_no_deadline(self):
        generator = WorkloadGenerator(seed=17)
        for request in generator.generate(40):
            assert request.deadline_s is None

    def test_non_positive_slo_rejected(self):
        with pytest.raises(ValueError):
            WorkloadGenerator(ttft_slo_s=0.0)
        with pytest.raises(ValueError):
            WorkloadGenerator(ttft_slo_s=-1.0)
