"""PipelinedExecutor: measured trace invariants and pipelined speedup."""

import numpy as np
import pytest

from repro.core.executor import PipelinedExecutor
from repro.core.fusor import FusorConfig
from repro.model.config import ModelConfig, get_config
from repro.model.transformer import TransformerModel

#: Slack for comparing perf_counter timestamps recorded on two threads.
EPS = 1e-6


@pytest.fixture(scope="module")
def model() -> TransformerModel:
    return TransformerModel(get_config("small"), seed=0)


@pytest.fixture(scope="module")
def chunk_caches(model):
    rng = np.random.default_rng(0)
    return [
        model.chunk_prefill(
            rng.integers(4, model.config.vocab_size, size=48).astype(np.int64)
        )
        for _ in range(3)
    ]


@pytest.fixture(scope="module")
def suffix_ids(model):
    rng = np.random.default_rng(1)
    return rng.integers(4, model.config.vocab_size, size=12).astype(np.int64)


def _executor(model, layer_load_time):
    return PipelinedExecutor(
        model, FusorConfig(recompute_ratio=0.2), layer_load_time=layer_load_time
    )


class TestTraceInvariants:
    @pytest.mark.parametrize("pipelined", [True, False])
    def test_no_compute_before_its_load_ends(
        self, model, chunk_caches, suffix_ids, pipelined
    ):
        result = _executor(model, 0.002).execute(
            chunk_caches, suffix_ids, pipelined=pipelined
        )
        trace = result.trace
        assert np.all(trace.compute_start >= trace.load_end - EPS)
        # Loads are sequential on the (simulated) device.
        assert np.all(trace.load_start[1:] >= trace.load_end[:-1] - EPS)
        # Compute layers run in order.
        assert np.all(trace.compute_start[1:] >= trace.compute_end[:-1] - EPS)
        # Spans are real (measured): every load/compute took > 0 time.
        assert np.all(result.load_times > 0.0)
        assert np.all(result.compute_times > 0.0)

    def test_no_stall_beyond_first_load_when_loads_are_faster(
        self, model, chunk_caches, suffix_ids
    ):
        """Loads faster than compute ⇒ the only wait is the unavoidable first load."""
        result = _executor(model, 0.0).execute(chunk_caches, suffix_ids, pipelined=True)
        trace = result.trace
        bubbles = trace.stall_time - trace.compute_start[0]
        assert bubbles == pytest.approx(0.0, abs=2e-3)

    def test_sequential_never_overlaps(self, model, chunk_caches, suffix_ids):
        result = _executor(model, 0.002).execute(
            chunk_caches, suffix_ids, pipelined=False
        )
        trace = result.trace
        # Each layer's load starts only after the previous layer's compute.
        assert np.all(trace.load_start[1:] >= trace.compute_end[:-1] - EPS)


class TestNumericsMatch:
    def test_pipelined_equals_sequential(self, model, chunk_caches, suffix_ids):
        executor = _executor(model, 0.001)
        seq = executor.execute(chunk_caches, suffix_ids, pipelined=False)
        pipe = executor.execute(chunk_caches, suffix_ids, pipelined=True)
        assert np.allclose(seq.fusion.last_logits, pipe.fusion.last_logits)
        assert seq.fusion.recompute_counts == pipe.fusion.recompute_counts
        for a, b in zip(seq.fusion.kv_cache.layers, pipe.fusion.kv_cache.layers):
            assert np.allclose(a.keys, b.keys)
            assert np.allclose(a.values, b.values)

    def test_accounting_matches_in_memory_fusor(self, model, chunk_caches, suffix_ids):
        """The executor (fp16 store round-trip) keeps the fusor's accounting."""
        result = _executor(model, 0.0).execute(chunk_caches, suffix_ids)
        fusion = result.fusion
        n = fusion.n_tokens
        assert n == sum(c.n_tokens for c in chunk_caches) + suffix_ids.size
        assert fusion.recompute_counts[0] == n
        suffix_indices = np.arange(fusion.suffix_start, n)
        for selected in fusion.selected_per_layer[1:]:
            assert np.isin(suffix_indices, selected).all()

    def test_shape_mismatch_rejected(self, model, suffix_ids):
        other = TransformerModel(
            ModelConfig(name="tiny-2kv", n_kv_heads=2, runnable=True), seed=0
        )
        cache = other.chunk_prefill(np.arange(4, 20, dtype=np.int64))
        with pytest.raises(ValueError):
            _executor(model, 0.0).execute([cache], suffix_ids)


class TestMeasuredSpeedup:
    def test_pipelining_hides_recompute(self, model, chunk_caches, suffix_ids):
        """At the calibrated load≈compute point, pipelining is ≥1.3x faster."""
        probe = _executor(model, 0.0).execute(
            chunk_caches, suffix_ids, pipelined=False
        )
        mean_compute = float(probe.compute_times.mean())
        executor = _executor(model, mean_compute)
        seq = min(
            executor.execute(chunk_caches, suffix_ids, pipelined=False).total_time
            for _ in range(2)
        )
        pipe = min(
            executor.execute(chunk_caches, suffix_ids, pipelined=True).total_time
            for _ in range(2)
        )
        assert pipe < seq
        assert seq / pipe >= 1.3
