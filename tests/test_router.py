"""Fleet tier: routing policies, replica placement and fleet simulation.

The acceptance claim lives in ``TestAffinityBeatsLeastLoaded``: at 4 replicas
under the default Zipf workload, affinity routing achieves a strictly higher
aggregate store hit rate than least-loaded at the same request rate.
"""

import pytest

from repro.bench.workload import WorkloadGenerator
from repro.kvstore.device import get_device
from repro.kvstore.store import ChunkUsageTracker
from repro.model.config import get_config
from repro.serving.costmodel import ServingCostModel
from repro.serving.engine import InferenceEngine
from repro.serving.request import GenerationRequest
from repro.serving.router import (
    ROUTING_POLICIES,
    AffinityRouter,
    ConsistentHashRouter,
    LeastLoadedRouter,
    Replica,
    Router,
    build_router,
    simulate_fleet,
)
from repro.serving.scheduler import ContinuousBatchingScheduler


def _request(request_id: int, arrival: float = 0.0) -> GenerationRequest:
    return GenerationRequest(
        request_id=request_id,
        n_chunks=3,
        chunk_tokens=128,
        n_suffix_tokens=16,
        n_output_tokens=4,
        arrival_time=arrival,
    )


def _light_replicas(n: int, capacity: int = 8) -> list[Replica]:
    return [
        Replica(replica_id=r, store=ChunkUsageTracker(capacity_entries=capacity))
        for r in range(n)
    ]


def _engine(model: str = "mistral-7b", device: str = "nvme_ssd") -> InferenceEngine:
    return InferenceEngine(
        ServingCostModel(get_config(model)),
        scheme="cacheblend",
        device=get_device(device),
    )


class TestTrackerHotness:
    """ChunkUsageTracker's lifetime access counts (the affinity signal)."""

    def test_resident_keys_track_the_lru_window(self):
        tracker = ChunkUsageTracker(capacity_entries=2)
        for key in ("a", "b", "c"):
            tracker.access(key)
        assert tracker.resident_keys() == ["b", "c"]  # "a" evicted

    def test_access_count_survives_eviction(self):
        tracker = ChunkUsageTracker(capacity_entries=1)
        tracker.access("hot")
        tracker.access("other")  # evicts "hot"
        tracker.access("hot")
        assert tracker.access_count("hot") == 2
        assert tracker.access_count("never_seen") == 0

    def test_hottest_keys_ranked_by_count(self):
        tracker = ChunkUsageTracker(capacity_entries=8)
        for key in ("a", "b", "b", "c", "c", "c"):
            tracker.access(key)
        assert tracker.hottest_keys(2) == ["c", "b"]
        with pytest.raises(ValueError):
            tracker.hottest_keys(0)


class TestReplicaPlacement:
    def test_place_relabels_from_the_private_store(self):
        replica = _light_replicas(1)[0]
        request = _request(0)
        cold = replica.place(0, request, [1, 2, 3])
        assert cold.cached_chunk_fraction == 0.0
        assert cold.slow_tier_fraction is None
        warm = replica.place(1, request, [1, 2, 3])
        assert warm.cached_chunk_fraction == pytest.approx(1.0)
        assert warm.prefix_cached_fraction == pytest.approx(1.0)

    def test_prefix_fraction_counts_only_the_leading_run(self):
        replica = _light_replicas(1)[0]
        replica.place(0, _request(0), [1, 3])
        relabelled = replica.place(1, _request(1), [2, 1, 3])
        # Chunks 1 and 3 hit but the leading chunk 2 missed: no prefix reuse.
        assert relabelled.cached_chunk_fraction == pytest.approx(2 / 3)
        assert relabelled.prefix_cached_fraction == 0.0

    def test_engine_backed_place_advances_the_load_signal(self):
        replica = Replica(
            replica_id=0,
            store=ChunkUsageTracker(capacity_entries=8),
            engine=_engine(),
        )
        assert replica.assigned_work_s == 0.0
        replica.place(0, _request(0), [1, 2, 3])
        assert replica.assigned_work_s > 0.0
        assert replica.available_at >= replica.assigned_work_s


class TestLeastLoadedRouter:
    def test_prefers_the_earliest_projected_start(self):
        replicas = _light_replicas(3)
        replicas[0].available_at = 5.0
        replicas[1].available_at = 1.0
        replicas[2].available_at = 3.0
        router = LeastLoadedRouter()
        assert router.route(_request(0), [1], replicas) == 1

    def test_idle_ties_break_on_replica_id(self):
        router = LeastLoadedRouter()
        assert router.route(_request(0), [1], _light_replicas(4)) == 0

    def test_satisfies_the_router_protocol(self):
        assert isinstance(LeastLoadedRouter(), Router)
        assert isinstance(ConsistentHashRouter(n_replicas=2), Router)
        assert isinstance(AffinityRouter(), Router)


class TestConsistentHashRouter:
    def test_placement_is_deterministic(self):
        a = ConsistentHashRouter(n_replicas=4)
        b = ConsistentHashRouter(n_replicas=4)
        for chunk in range(200):
            assert a.owner(chunk) == b.owner(chunk)

    def test_same_chunks_always_land_on_the_same_replica(self):
        router = ConsistentHashRouter(n_replicas=4)
        replicas = _light_replicas(4)
        first = router.route(_request(0), [7, 11, 13], replicas)
        replicas[(first + 1) % 4].available_at = 0.0  # load must not matter
        assert router.route(_request(1, arrival=9.0), [7, 11, 13], replicas) == first

    def test_growing_the_fleet_moves_only_a_minority_of_chunks(self):
        before = ConsistentHashRouter(n_replicas=4)
        after = ConsistentHashRouter(n_replicas=5)
        moved = sum(before.owner(c) != after.owner(c) for c in range(1000))
        # Consistent hashing moves ~1/N of the keys; a modulo scheme would
        # move ~4/5 of them.
        assert moved < 500

    def test_plurality_vote_over_the_request_chunks(self):
        router = ConsistentHashRouter(n_replicas=3)
        chunks = list(range(30))
        majority_owner = router.owner(0)
        majority = [c for c in chunks if router.owner(c) == majority_owner][:3]
        minority = [c for c in chunks if router.owner(c) != majority_owner][:1]
        placed = router.route(_request(0), majority + minority, _light_replicas(3))
        assert placed == majority_owner

    def test_chunkless_request_goes_to_replica_zero(self):
        router = ConsistentHashRouter(n_replicas=3)
        assert router.route(_request(0), [], _light_replicas(3)) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ConsistentHashRouter(n_replicas=0)
        with pytest.raises(ValueError):
            ConsistentHashRouter(n_replicas=2, n_vnodes=0)


class TestAffinityRouter:
    def test_cold_start_falls_back_to_least_loaded(self):
        replicas = _light_replicas(3)
        replicas[0].available_at = 2.0
        assert AffinityRouter().route(_request(0), [1, 2], replicas) == 1

    def test_overlap_beats_load(self):
        replicas = _light_replicas(3)
        replicas[2].store.access(7)
        replicas[2].available_at = 1.0  # busier, but holds the chunk
        assert AffinityRouter().route(_request(0), [7], replicas) == 2

    def test_hotter_overlap_outbids_a_cold_copy(self):
        replicas = _light_replicas(2)
        replicas[0].store.access(7)
        for _ in range(5):
            replicas[1].store.access(7)
        assert AffinityRouter().route(_request(0), [7], replicas) == 1

    def test_bounded_load_excludes_the_overloaded_home(self):
        replicas = _light_replicas(2)
        replicas[0].store.access(7)
        # Replica 0 holds the hot chunk but is far past load_factor x mean.
        replicas[0].assigned_work_s = 10.0
        replicas[1].assigned_work_s = 1.0
        placed = AffinityRouter(load_factor=1.25).route(_request(0), [7], replicas)
        assert placed == 1

    def test_uniform_load_keeps_affinity_routing(self):
        replicas = _light_replicas(2)
        replicas[1].store.access(7)
        replicas[0].assigned_work_s = 1.0
        replicas[1].assigned_work_s = 1.0
        assert AffinityRouter().route(_request(0), [7], replicas) == 1

    def test_load_factor_validation(self):
        with pytest.raises(ValueError):
            AffinityRouter(load_factor=0.9)


class TestBuildRouter:
    def test_builds_every_policy(self):
        for policy in ROUTING_POLICIES:
            router = build_router(policy, n_replicas=3)
            assert router.policy == policy

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="routing policy"):
            build_router("coin_flip", n_replicas=2)


@pytest.fixture(scope="module")
def zipf_workload():
    """Default-parameter Zipf workload plus its chunk access trace."""
    generator = WorkloadGenerator(seed=0)
    requests = generator.generate(120)
    chunk_ids = [ids for ids, _ in generator.last_chunk_accesses]
    return generator, requests, chunk_ids


def _run_fleet(requests, chunk_ids, policy, n_replicas, capacity=160):
    return simulate_fleet(
        requests,
        chunk_ids,
        policy=policy,
        n_replicas=n_replicas,
        engine_factory=lambda r: _engine(),
        scheduler_factory=lambda r: ContinuousBatchingScheduler(n_servers=1),
        store_capacity_chunks=capacity,
    )


class TestSimulateFleet:
    @pytest.fixture(scope="class")
    def fleet(self, zipf_workload):
        _, requests, chunk_ids = zipf_workload
        return _run_fleet(requests, chunk_ids, "affinity", 4)

    def test_outputs_stay_in_global_request_order(self, fleet, zipf_workload):
        _, requests, _ = zipf_workload
        assert len(fleet.requests) == len(requests)
        assert len(fleet.results) == len(requests)
        assert len(fleet.timings) == len(requests)
        for original, local, timing in zip(requests, fleet.requests, fleet.timings):
            assert local.request_id == original.request_id
            assert timing.request_id == original.request_id
            assert local.arrival_time == original.arrival_time

    def test_every_request_has_a_home_replica(self, fleet, zipf_workload):
        _, requests, _ = zipf_workload
        assert len(fleet.replica_of) == len(requests)
        assert all(0 <= home < fleet.n_replicas for home in fleet.replica_of)
        assert sum(fleet.per_replica_n_requests) == len(requests)

    def test_fleet_metrics_are_well_formed(self, fleet):
        assert len(fleet.per_replica_hit_rates) == fleet.n_replicas
        assert all(0.0 <= rate <= 1.0 for rate in fleet.per_replica_hit_rates)
        assert 0.0 <= fleet.aggregate_hit_rate <= 1.0
        assert fleet.utilisation_skew >= 1.0 - 1e-9
        assert len(fleet.per_replica_busy_s) == fleet.n_replicas

    def test_single_replica_fleet_has_no_skew(self, zipf_workload):
        _, requests, chunk_ids = zipf_workload
        fleet = _run_fleet(requests, chunk_ids, "least_loaded", 1)
        assert fleet.utilisation_skew == pytest.approx(1.0)
        assert fleet.replica_of == [0] * len(requests)

    def test_placement_is_deterministic(self, zipf_workload):
        _, requests, chunk_ids = zipf_workload
        a = _run_fleet(requests, chunk_ids, "affinity", 4)
        b = _run_fleet(requests, chunk_ids, "affinity", 4)
        assert a.replica_of == b.replica_of
        assert a.aggregate_hit_rate == b.aggregate_hit_rate
        assert [t.ttft for t in a.timings] == [t.ttft for t in b.timings]

    def test_length_mismatch_rejected(self, zipf_workload):
        _, requests, chunk_ids = zipf_workload
        with pytest.raises(ValueError):
            _run_fleet(requests, chunk_ids[:-1], "affinity", 2)


class TestAffinityBeatsLeastLoaded:
    """Acceptance: at 4 replicas under the default Zipf workload, affinity
    routing wins the aggregate store hit rate against least-loaded at the
    same request rate (the whole point of cache-aware placement: hot chunks
    stop being re-fetched on every replica they happen to land on)."""

    @pytest.fixture(scope="class")
    def runs(self, zipf_workload):
        _, requests, chunk_ids = zipf_workload
        return {
            policy: _run_fleet(requests, chunk_ids, policy, 4)
            for policy in ROUTING_POLICIES
        }

    def test_affinity_hit_rate_strictly_higher(self, runs):
        assert runs["affinity"].aggregate_hit_rate > runs["least_loaded"].aggregate_hit_rate

    def test_consistent_hash_also_beats_affinity_blind_routing(self, runs):
        assert (
            runs["consistent_hash"].aggregate_hit_rate
            > runs["least_loaded"].aggregate_hit_rate
        )

    def test_bounded_load_keeps_the_fleet_from_collapsing(self, runs):
        # Pure affinity pins the Zipf hot set to one replica; the bounded
        # load factor keeps every replica serving real work.
        assert all(n > 0 for n in runs["affinity"].per_replica_n_requests)
        assert runs["affinity"].utilisation_skew < 2.0
