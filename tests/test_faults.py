"""FaultyStore: seeded injection, protocol conformance, typed failures."""

import numpy as np
import pytest

from repro.kvstore.device import get_device
from repro.kvstore.faults import (
    ALL_FAULT_KINDS,
    FaultConfig,
    FaultKind,
    FaultyStore,
    StoreFault,
    StoreReadTimeout,
    StoreUnavailable,
)
from repro.kvstore.hierarchy import TieredKVStore
from repro.kvstore.protocol import ChunkStore
from repro.kvstore.serialization import KVCorruptionError
from repro.kvstore.store import KVCacheStore
from repro.kvstore.trie import RadixTrieStore
from repro.model.tensors import KVCache, LayerKV


def _cache(seed: int, n_tokens: int = 4) -> KVCache:
    ids = np.arange(seed * 100, seed * 100 + n_tokens, dtype=np.int64)
    rows = np.full((n_tokens, 1, 2), float(seed), dtype=np.float32)
    return KVCache([LayerKV(rows.copy(), rows.copy())], ids, np.arange(n_tokens))


def _faulty(rate=1.0, kinds=ALL_FAULT_KINDS, seed=0, **config_kw) -> FaultyStore:
    inner = KVCacheStore(device=get_device("cpu_ram"))
    inner.put("a", _cache(1))
    return FaultyStore(inner, FaultConfig(rate=rate, kinds=kinds, seed=seed, **config_kw))


class TestFaultConfig:
    def test_rate_validated(self):
        with pytest.raises(ValueError, match="rate"):
            FaultConfig(rate=1.5)

    def test_kinds_validated(self):
        with pytest.raises(ValueError, match="kind"):
            FaultConfig(rate=0.1, kinds=())

    def test_slow_delay_validated(self):
        with pytest.raises(ValueError, match="slow_read_delay_s"):
            FaultConfig(rate=0.1, slow_read_delay_s=-1.0)


class TestInjection:
    def test_zero_rate_is_transparent(self):
        store = _faulty(rate=0.0)
        found = store.lookup("a")
        assert found.hit
        assert store.fault_stats.total == 0

    def test_misses_never_fault(self):
        store = _faulty(rate=1.0)
        found = store.lookup("never-stored")  # must not raise
        assert not found.hit
        assert store.fault_stats.total == 0

    def test_read_timeout_raises_typed(self):
        store = _faulty(kinds=(FaultKind.READ_TIMEOUT,))
        with pytest.raises(StoreReadTimeout):
            store.lookup("a")
        assert store.fault_stats.injected["read_timeout"] == 1

    def test_transient_miss_raises_typed(self):
        store = _faulty(kinds=(FaultKind.TRANSIENT_MISS,))
        with pytest.raises(StoreUnavailable):
            store.lookup("a")
        # The entry still exists: the failure was transient, not an evict.
        assert store.inner.contains("a")

    def test_corruption_trips_the_real_checksum(self):
        store = _faulty(kinds=(FaultKind.CORRUPT_PAYLOAD,))
        with pytest.raises(KVCorruptionError):
            store.lookup("a")

    def test_slow_read_inflates_the_delay_only(self):
        store = _faulty(kinds=(FaultKind.SLOW_READ,), slow_read_delay_s=0.25)
        clean = store.inner.lookup("a")
        slow = store.lookup("a")
        assert slow.hit
        assert slow.read_delay == pytest.approx(clean.read_delay + 0.25)
        np.testing.assert_array_equal(slow.cache.token_ids, clean.cache.token_ids)

    def test_typed_faults_share_a_base_class(self):
        assert issubclass(StoreReadTimeout, StoreFault)
        assert issubclass(StoreUnavailable, StoreFault)

    def test_get_goes_through_injection(self):
        store = _faulty(kinds=(FaultKind.READ_TIMEOUT,))
        with pytest.raises(StoreReadTimeout):
            store.get("a")


class TestDeterminism:
    def test_same_seed_same_fault_sequence(self):
        def sequence(seed):
            store = _faulty(rate=0.5, seed=seed)
            outcomes = []
            for _ in range(40):
                try:
                    outcomes.append("hit" if store.lookup("a").hit else "miss")
                except StoreFault as fault:
                    outcomes.append(type(fault).__name__)
                except KVCorruptionError:
                    outcomes.append("corrupt")
            return outcomes

        assert sequence(3) == sequence(3)
        assert sequence(3) != sequence(4)

    def test_rate_roughly_respected(self):
        store = _faulty(rate=0.25, seed=1)
        faults = 0
        for _ in range(400):
            try:
                store.lookup("a")
            except (StoreFault, KVCorruptionError):
                faults += 1
        assert 60 <= faults <= 140  # ~100 expected

    def test_fault_stats_roll_up(self):
        store = _faulty(rate=1.0, seed=2)
        for _ in range(20):
            try:
                store.lookup("a")
            except (StoreFault, KVCorruptionError):
                pass
        stats = store.fault_stats.as_dict()
        assert stats["injected_total"] == store.fault_stats.lookups
        assert sum(stats[f"injected_{kind.value}"] for kind in FaultKind) == 20
        store.reset_fault_stats()
        assert store.fault_stats.total == 0


class TestDelegation:
    def test_satisfies_chunk_store_protocol(self):
        assert isinstance(_faulty(), ChunkStore)

    def test_inner_attributes_pass_through(self):
        store = _faulty(rate=0.0)
        assert store.bytes_stored == store.inner.bytes_stored > 0
        assert store.n_entries == 1
        assert store.device.name == "cpu_ram"
        assert store.contains("a")
        assert store.stats is store.inner.stats

    def test_put_reaches_the_inner_store(self):
        store = _faulty(rate=0.0)
        store.put("b", _cache(2))
        assert store.inner.contains("b")

    def test_wraps_tiered_and_trie_backends(self):
        for inner in (
            RadixTrieStore(device=get_device("cpu_ram")),
            TieredKVStore(
                tiers=[
                    KVCacheStore(device=get_device("cpu_ram")),
                    KVCacheStore(device=get_device("nvme_ssd")),
                ]
            ),
        ):
            inner.put("a", _cache(1))
            wrapped = FaultyStore(inner, FaultConfig(rate=0.0))
            assert wrapped.lookup("a").hit
            assert isinstance(wrapped, ChunkStore)

    def test_tier_introspection_passes_through(self):
        inner = TieredKVStore(
            tiers=[
                KVCacheStore(device=get_device("cpu_ram")),
                KVCacheStore(device=get_device("nvme_ssd")),
            ]
        )
        wrapped = FaultyStore(inner, FaultConfig(rate=0.0))
        assert [row["device"] for row in wrapped.stats_by_tier()] == [
            "cpu_ram",
            "nvme_ssd",
        ]
