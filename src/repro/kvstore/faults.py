"""Seeded fault injection for ``ChunkStore`` backends.

:class:`FaultyStore` wraps any :class:`~repro.kvstore.protocol.ChunkStore`
and injects failures on the read path — the chaos half of the robustness
story.  Four fault kinds model how a real KV store degrades:

* ``read_timeout``: the read never returns within budget — raised as a
  typed :class:`StoreReadTimeout`.
* ``transient_miss``: the entry exists but this read fails (a dropped RPC,
  a mid-compaction tier) — raised as :class:`StoreUnavailable`.
* ``corrupt_payload``: the stored bytes are damaged.  The injector
  round-trips the entry through :func:`~repro.kvstore.serialization.
  serialize_kv`, flips a payload byte, and decodes — so the resulting
  :class:`~repro.kvstore.serialization.KVCorruptionError` is raised by the
  *real* RPKV4 blake2b integrity check, end to end, not simulated.
* ``slow_read``: the read succeeds but the returned
  :class:`~repro.kvstore.protocol.StoreLookup` carries an inflated
  ``read_delay`` (a stalled slow tier) — what a per-lookup timeout policy
  has to cut off.

Faults fire only on hits (a miss has nothing to break), from a dedicated
``np.random.default_rng(seed)`` stream, so a run is exactly reproducible
and the wrapped store's own statistics stay meaningful.  Everything not on
the lookup path delegates to the inner store untouched.

:class:`~repro.core.blend_engine.BlendEngine` is the intended consumer: its
retry-with-backoff lookup policy absorbs transient faults and falls back to
recomputing the chunk when retries are exhausted (see
``LookupRetryPolicy``), which is how serving stays correct — never fast and
wrong — under store failure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from repro.kvstore.protocol import ChunkStore, StoreLookup
from repro.kvstore.serialization import deserialize_kv, serialize_kv
from repro.model.tensors import KVCache


class StoreFault(RuntimeError):
    """Base class for injected (or real) store read failures.

    Typed so the engine's lookup policy can retry these while letting
    programming errors propagate.
    """


class StoreReadTimeout(StoreFault):
    """A store read exceeded its time budget."""


class StoreUnavailable(StoreFault):
    """A store read failed transiently; the entry may still exist."""


class FaultKind(str, Enum):
    """The injectable failure modes, in wire-friendly string form."""

    READ_TIMEOUT = "read_timeout"
    SLOW_READ = "slow_read"
    CORRUPT_PAYLOAD = "corrupt_payload"
    TRANSIENT_MISS = "transient_miss"


ALL_FAULT_KINDS = tuple(FaultKind)


@dataclass(frozen=True)
class FaultConfig:
    """Injection policy of a :class:`FaultyStore`.

    ``rate`` is the per-hit fault probability; ``kinds`` the enabled
    failure modes (uniformly drawn per fault); ``slow_read_delay_s`` the
    extra simulated read delay a ``slow_read`` fault adds — set it above
    the engine's per-lookup timeout to make stalls count as timeouts.
    """

    rate: float = 0.0
    kinds: tuple[FaultKind, ...] = ALL_FAULT_KINDS
    slow_read_delay_s: float = 0.05
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("fault rate must be within [0, 1]")
        if not self.kinds:
            raise ValueError("at least one fault kind must be enabled")
        if any(kind not in ALL_FAULT_KINDS for kind in self.kinds):
            raise ValueError(f"unknown fault kind in {self.kinds!r}")
        if self.slow_read_delay_s < 0.0:
            raise ValueError("slow_read_delay_s must be >= 0")


@dataclass
class FaultStats:
    """Counts of injected faults by kind."""

    injected: dict = field(
        default_factory=lambda: {kind.value: 0 for kind in FaultKind}
    )
    lookups: int = 0

    @property
    def total(self) -> int:
        return sum(self.injected.values())

    def as_dict(self) -> dict[str, int]:
        out = {f"injected_{kind}": n for kind, n in self.injected.items()}
        out["injected_total"] = self.total
        out["faulted_lookups"] = self.lookups
        return out


class FaultyStore:
    """A :class:`ChunkStore` wrapper injecting seeded read-path failures.

    Only ``lookup``/``get`` are intercepted; every other attribute —
    ``put``, ``contains``, ``stats``, tier internals like
    ``stats_by_tier`` — resolves on the wrapped store, so the wrapper is
    drop-in anywhere the inner store was (including
    :class:`~repro.core.blend_engine.BlendEngine.build` plumbing and the
    proxy probe's tier reporting).
    """

    def __init__(self, inner: ChunkStore, config: FaultConfig) -> None:
        self.inner = inner
        self.config = config
        self.fault_stats = FaultStats()
        self._rng = np.random.default_rng(config.seed)

    # -- intercepted read path -----------------------------------------
    def lookup(self, key: str) -> StoreLookup:
        found = self.inner.lookup(key)
        if not found.hit or self.config.rate <= 0.0:
            return found
        if self._rng.random() >= self.config.rate:
            return found
        kind = self.config.kinds[int(self._rng.integers(len(self.config.kinds)))]
        self.fault_stats.injected[kind.value] += 1
        self.fault_stats.lookups += 1
        if kind is FaultKind.READ_TIMEOUT:
            raise StoreReadTimeout(f"injected read timeout for {key!r}")
        if kind is FaultKind.TRANSIENT_MISS:
            raise StoreUnavailable(f"injected transient read failure for {key!r}")
        if kind is FaultKind.CORRUPT_PAYLOAD:
            self._corrupt(found.cache)  # raises KVCorruptionError
            raise AssertionError("corruption injection did not trip the checksum")
        return StoreLookup(
            cache=found.cache,
            read_delay=found.read_delay + self.config.slow_read_delay_s,
            tier_index=found.tier_index,
            nbytes=found.nbytes,
        )

    def get(self, key: str) -> KVCache | None:
        return self.lookup(key).cache

    def _corrupt(self, cache: KVCache) -> None:
        """Trip the real RPKV4 integrity check on a damaged copy of *cache*."""
        blob = bytearray(serialize_kv(cache))
        flip = len(blob) - 1 - int(self._rng.integers(max(1, cache.n_tokens * 8)))
        blob[max(0, flip)] ^= 0xFF
        deserialize_kv(bytes(blob))

    def reset_fault_stats(self) -> None:
        self.fault_stats = FaultStats()

    # -- everything else is the inner store ----------------------------
    def __getattr__(self, name: str):
        return getattr(self.inner, name)
