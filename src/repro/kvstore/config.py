"""Declarative store configuration: pick a backend, build a ChunkStore.

:class:`~repro.core.blend_engine.BlendEngine.build` used to take a single
``store_capacity_bytes`` knob and always construct a whole-chunk
:class:`~repro.kvstore.store.KVCacheStore`.  With multiple backends (chunk /
trie dedup / tiered hierarchies) the store choice is its own axis, so the
engine now accepts a :class:`StoreConfig` — a frozen, JSON-friendly recipe —
or any pre-built :class:`~repro.kvstore.protocol.ChunkStore`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kvstore.device import get_device
from repro.kvstore.hierarchy import TieredKVStore
from repro.kvstore.precision import ELEM_BYTES, PRECISION_PRESETS, PrecisionPolicy
from repro.kvstore.store import EvictionPolicy, KVCacheStore
from repro.kvstore.trie import RadixTrieStore

#: Store backends :meth:`StoreConfig.build` can construct.
STORE_BACKENDS = ("chunk", "trie", "tiered", "tiered_trie")

#: Bytes per stored KV element for each *uniform* store dtype (per-layer
#: policies like ``mixed`` have no scalar width — use ``precision``).
KV_DTYPE_BYTES = dict(ELEM_BYTES)


@dataclass(frozen=True)
class StoreConfig:
    """Recipe for a chunk KV store backend.

    Parameters
    ----------
    backend:
        ``"chunk"`` — whole-chunk :class:`KVCacheStore` (the historical
        default); ``"trie"`` — prefix-dedup :class:`RadixTrieStore`;
        ``"tiered"`` / ``"tiered_trie"`` — a :class:`TieredKVStore` over
        ``tier_devices`` with chunk or trie tiers respectively.
    capacity_bytes:
        Capacity of a single-tier store (``None`` = the device preset's).
        Ignored by tiered backends, which size from ``tier_capacity_bytes``.
    tier_devices / tier_capacity_bytes:
        Device preset names fastest-first and matching per-tier capacities
        (``None`` entries fall back to each device preset's capacity).
    policy:
        Eviction policy shared by every (single or tier) store.
    kv_dtype:
        Store precision: a uniform payload dtype (``float32``/``float16``/
        ``int8``) or the per-layer ``mixed`` preset.  Resolved into the
        :attr:`precision` policy that governs byte accounting, the
        quantisation round-trip the engine applies before ``put``, and the
        serialized wire format.
    promote_on_hit / demote_on_evict:
        Tiered-backend behaviour: copy hits up to tier 0, demote eviction
        victims one tier down.
    ttl_s:
        Optional entry time-to-live (trie backends only).
    """

    backend: str = "chunk"
    capacity_bytes: int | None = None
    tier_devices: tuple[str, ...] = ("cpu_ram", "nvme_ssd")
    tier_capacity_bytes: tuple[int | None, ...] | None = None
    policy: EvictionPolicy = EvictionPolicy.LRU
    kv_dtype: str = "float16"
    promote_on_hit: bool = True
    demote_on_evict: bool = True
    ttl_s: float | None = None

    def __post_init__(self) -> None:
        if self.backend not in STORE_BACKENDS:
            raise ValueError(
                f"unknown store backend {self.backend!r}; expected one of {STORE_BACKENDS}"
            )
        if self.kv_dtype not in PRECISION_PRESETS:
            raise ValueError(
                f"unknown kv_dtype {self.kv_dtype!r}; expected one of {PRECISION_PRESETS}"
            )
        if not self.tier_devices:
            raise ValueError("tier_devices must name at least one device")
        if self.tier_capacity_bytes is not None and len(self.tier_capacity_bytes) != len(
            self.tier_devices
        ):
            raise ValueError("tier_capacity_bytes must match tier_devices in length")

    @property
    def precision(self) -> PrecisionPolicy:
        """The per-layer precision policy ``kv_dtype`` resolves to."""
        return PrecisionPolicy.get(self.kv_dtype)

    @property
    def dtype_bytes(self) -> int:
        """Scalar element width of a *uniform* ``kv_dtype``.

        Per-layer policies (``mixed``) have no single width — callers that
        need byte accounting should go through :attr:`precision` instead.
        """
        try:
            return KV_DTYPE_BYTES[self.kv_dtype]
        except KeyError:
            raise ValueError(
                f"kv_dtype {self.kv_dtype!r} has no scalar element width; "
                "use the per-layer precision policy"
            ) from None

    @property
    def tiered(self) -> bool:
        return self.backend in ("tiered", "tiered_trie")

    def build(self, device=None, dtype_bytes: int | None = None):
        """Construct the configured :class:`ChunkStore`.

        ``device`` overrides the single-tier storage device (the engine
        passes the device its controller picked); ``dtype_bytes`` overrides
        the payload width when the caller's timing model disagrees with
        ``kv_dtype`` (legacy paths; ignored for byte accounting, which the
        precision policy governs).
        """
        precision = self.precision
        if dtype_bytes is not None:
            width = dtype_bytes
        else:
            uniform = precision.uniform_dtype
            width = ELEM_BYTES[uniform] if uniform is not None else 2
        if not self.tiered:
            storage = device if device is not None else get_device(self.tier_devices[0])
            cls = KVCacheStore if self.backend == "chunk" else RadixTrieStore
            kwargs = dict(
                device=storage,
                dtype_bytes=width,
                policy=self.policy,
                capacity_bytes=self.capacity_bytes,
                precision=precision,
            )
            if self.backend == "trie" and self.ttl_s is not None:
                kwargs["ttl_s"] = self.ttl_s
            return cls(**kwargs)

        tier_cls = KVCacheStore if self.backend == "tiered" else RadixTrieStore
        capacities = self.tier_capacity_bytes or tuple(None for _ in self.tier_devices)
        tiers = []
        for name, capacity in zip(self.tier_devices, capacities):
            kwargs = dict(
                device=get_device(name),
                dtype_bytes=width,
                policy=self.policy,
                capacity_bytes=capacity,
                precision=precision,
            )
            if self.backend == "tiered_trie" and self.ttl_s is not None:
                kwargs["ttl_s"] = self.ttl_s
            tiers.append(tier_cls(**kwargs))
        return TieredKVStore(
            tiers=tiers,
            promote_on_hit=self.promote_on_hit,
            demote_on_evict=self.demote_on_evict,
        )
