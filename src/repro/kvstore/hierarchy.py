"""Multi-tier KV cache store (e.g. CPU RAM backed by an SSD).

The prefix-caching baseline in the paper stores KV caches "in both RAM and
SSD"; this tiered store models that: lookups search tiers from fastest to
slowest, hits are optionally promoted to the fastest tier, and inserts go to
the fastest tier that can hold the entry (falling back to slower tiers).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.kvstore.store import CacheStats, KVCacheStore
from repro.model.tensors import KVCache


@dataclass
class TierLookup:
    """Result of a tiered lookup: the cache plus where it was found."""

    cache: KVCache | None
    tier_index: int | None
    read_delay: float


@dataclass
class TieredKVStore:
    """An ordered list of stores, fastest first."""

    tiers: list[KVCacheStore]
    promote_on_hit: bool = True
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        if not self.tiers:
            raise ValueError("a tiered store needs at least one tier")

    def contains(self, key: str) -> bool:
        return any(tier.contains(key) for tier in self.tiers)

    def get(self, key: str) -> TierLookup:
        """Look *key* up tier by tier, promoting on hit if configured."""
        for index, tier in enumerate(self.tiers):
            if tier.contains(key):
                delay = tier.read_delay(key)
                cache = tier.get(key)
                self.stats.hits += 1
                if self.promote_on_hit and index > 0 and cache is not None:
                    self._try_promote(key, cache)
                return TierLookup(cache=cache, tier_index=index, read_delay=delay)
        self.stats.misses += 1
        return TierLookup(cache=None, tier_index=None, read_delay=0.0)

    def put(self, key: str, cache: KVCache) -> int:
        """Insert into the fastest tier with room (evicting there if needed)."""
        for index, tier in enumerate(self.tiers):
            nbytes = cache.nbytes(tier.dtype_bytes)
            if nbytes <= tier.capacity_bytes:
                self.stats.inserts += 1
                return tier.put(key, cache)
            if index == len(self.tiers) - 1:
                raise ValueError("cache does not fit in any tier")
        raise AssertionError("unreachable")

    def _try_promote(self, key: str, cache: KVCache) -> None:
        fastest = self.tiers[0]
        if cache.nbytes(fastest.dtype_bytes) <= fastest.capacity_bytes:
            fastest.put(key, cache)

    @property
    def total_bytes_stored(self) -> int:
        return sum(tier.bytes_stored for tier in self.tiers)

    @property
    def n_entries(self) -> int:
        return sum(tier.n_entries for tier in self.tiers)
