"""Multi-tier KV cache store (e.g. CPU RAM backed by an SSD).

The prefix-caching baseline in the paper stores KV caches "in both RAM and
SSD"; this tiered store models that: lookups search tiers from fastest to
slowest, hits are optionally promoted to the fastest tier, and inserts go to
the fastest tier whose capacity can hold the entry.  Capacity-driven
evictions in a tier *demote* the victim to the next tier down (via the
tiers' ``on_evict`` hooks) instead of dropping it, so the hierarchy behaves
like an inclusive RAM cache over a larger SSD working set.

:class:`TieredKVStore` implements the same :class:`~repro.kvstore.protocol.
ChunkStore` surface as the single-tier stores — ``get`` returns the cache,
``lookup`` returns a :class:`~repro.kvstore.protocol.StoreLookup` whose
``read_delay`` is the serving tier's — so a
:class:`~repro.core.blend_engine.BlendEngine` can sit on top of either
without caring.  Tiers may themselves be whole-chunk
:class:`~repro.kvstore.store.KVCacheStore` or dedup
:class:`~repro.kvstore.trie.RadixTrieStore` instances.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.kvstore.device import StorageDevice
from repro.kvstore.protocol import StoreLookup
from repro.kvstore.store import CacheStats, EvictionPolicy
from repro.model.tensors import KVCache

#: Backward-compatible alias: tiered lookups used to return a dedicated
#: ``TierLookup``; the unified protocol folded it into ``StoreLookup``.
TierLookup = StoreLookup


@dataclass
class TieredKVStore:
    """An ordered list of single-tier stores, fastest first.

    Each tier keeps its own :class:`CacheStats` (per-tier hit rates and
    residency); the tiered store's own ``stats`` aggregates top-level
    hits/misses/inserts so it drops in wherever a single store's counters
    were read.
    """

    tiers: list
    promote_on_hit: bool = True
    #: Demote a tier's eviction victims into the next tier down instead of
    #: dropping them (the last tier always drops).
    demote_on_evict: bool = True
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        if not self.tiers:
            raise ValueError("a tiered store needs at least one tier")
        if self.demote_on_evict:
            for index, tier in enumerate(self.tiers[:-1]):
                tier.on_evict = self._demoter(index + 1)

    def _demoter(self, to_index: int):
        def demote(key: str, cache: KVCache) -> None:
            below = self.tiers[to_index]
            if below.contains(key):
                return  # inclusive hierarchy: a promoted copy already lives below
            nbytes = below.cache_nbytes(cache)
            if nbytes <= below.capacity_bytes:
                below.put(key, cache)

        return demote

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------
    def contains(self, key: str) -> bool:
        return any(tier.contains(key) for tier in self.tiers)

    def get(self, key: str) -> KVCache | None:
        """Look *key* up tier by tier; returns the cache like any ChunkStore."""
        return self.lookup(key).cache

    def lookup(self, key: str) -> StoreLookup:
        """Tiered lookup: the serving tier's read delay, promotion on hit."""
        for index, tier in enumerate(self.tiers):
            found = tier.lookup(key)
            if found.hit:
                self.stats.hits += 1
                if self.promote_on_hit and index > 0:
                    self._try_promote(key, found.cache)
                return StoreLookup(
                    cache=found.cache,
                    read_delay=found.read_delay,
                    tier_index=index,
                    nbytes=found.nbytes,
                )
        self.stats.misses += 1
        return StoreLookup(cache=None)

    def peek(self, key: str) -> KVCache | None:
        """Fetch without touching statistics, recency or promotion."""
        for tier in self.tiers:
            cache = tier.peek(key)
            if cache is not None:
                return cache
        return None

    def put(self, key: str, cache: KVCache) -> int:
        """Insert into the fastest tier whose capacity holds the entry."""
        for index, tier in enumerate(self.tiers):
            nbytes = tier.cache_nbytes(cache)
            if nbytes <= tier.capacity_bytes:
                self.stats.inserts += 1
                return tier.put(key, cache)
            if index == len(self.tiers) - 1:
                raise ValueError("cache does not fit in any tier")
        raise AssertionError("unreachable")

    def remove(self, key: str) -> bool:
        removed = False
        for tier in self.tiers:
            removed = tier.remove(key) or removed
        return removed

    def clear(self) -> None:
        for tier in self.tiers:
            tier.clear()

    def reset_stats(self) -> None:
        self.stats.reset()
        for tier in self.tiers:
            tier.reset_stats()

    def _try_promote(self, key: str, cache: KVCache) -> None:
        fastest = self.tiers[0]
        if fastest.cache_nbytes(cache) <= fastest.capacity_bytes:
            fastest.put(key, cache)

    # ------------------------------------------------------------------
    # Delay accounting
    # ------------------------------------------------------------------
    def read_delay(self, key: str) -> float:
        """Simulated read delay of the fastest tier currently holding *key*.

        0.0 when no tier holds it — a demoted-then-evicted key prices like
        the clean miss :meth:`lookup` reports, never a ``KeyError``.  Does
        not touch hit/miss statistics, recency or promotion.
        """
        for tier in self.tiers:
            if tier.contains(key):
                return tier.read_delay(key)
        return 0.0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def device(self) -> StorageDevice:
        """The fastest tier's device (what callers price promotions at)."""
        return self.tiers[0].device

    @property
    def dtype_bytes(self) -> int:
        return self.tiers[0].dtype_bytes

    @property
    def precision(self):
        """The tiers' precision policy (``None`` for scalar-width tiers)."""
        return self.tiers[0].precision

    def cache_nbytes(self, cache: KVCache) -> int:
        """Stored bytes of *cache* under the fastest tier's precision."""
        return self.tiers[0].cache_nbytes(cache)

    @property
    def bytes_stored(self) -> int:
        return sum(tier.bytes_stored for tier in self.tiers)

    @property
    def total_bytes_stored(self) -> int:
        return self.bytes_stored

    @property
    def n_entries(self) -> int:
        return sum(tier.n_entries for tier in self.tiers)

    def stats_by_tier(self) -> list[dict[str, float]]:
        """Per-tier stat snapshots, fastest first (for reports)."""
        return [
            {"device": tier.device.name, **tier.stats.as_dict()}
            for tier in self.tiers
        ]


@dataclass
class TieredChunkTracker:
    """Key-only model of a tiered chunk store, for hit-rate accounting.

    The tiered analogue of :class:`~repro.kvstore.store.ChunkUsageTracker`:
    tracks which chunk keys each tier would hold — LRU replacement, hits
    promoted to tier 0, victims demoted one tier down — without
    materialising KV tensors.  The workload generator replays recorded chunk
    accesses through it to derive, per request, how much cached context is
    resident in each tier under a given capacity.
    """

    tier_capacities: tuple[int, ...]
    promote_on_hit: bool = True
    demote_on_evict: bool = True
    policy: EvictionPolicy = EvictionPolicy.LRU
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        if not self.tier_capacities:
            raise ValueError("need at least one tier capacity")
        if any(cap < 1 for cap in self.tier_capacities):
            raise ValueError("tier capacities must be >= 1")
        from collections import OrderedDict

        self._tiers: list = [OrderedDict() for _ in self.tier_capacities]
        self.tier_hits: list[int] = [0 for _ in self.tier_capacities]

    def access(self, key: object) -> int | None:
        """Record one chunk access; returns the serving tier index, or None.

        A miss inserts the chunk at tier 0 (the real system precomputes and
        stores it there), cascading demotions down the hierarchy.
        """
        for index, keys in enumerate(self._tiers):
            if key in keys:
                self.stats.hits += 1
                self.tier_hits[index] += 1
                if self.policy is EvictionPolicy.LRU:
                    keys.move_to_end(key)
                if self.promote_on_hit and index > 0:
                    del keys[key]
                    self._insert(0, key)
                return index
        self.stats.misses += 1
        self._insert(0, key)
        self.stats.inserts += 1
        return None

    def _insert(self, tier: int, key: object) -> None:
        keys = self._tiers[tier]
        while len(keys) >= self.tier_capacities[tier]:
            victim, _ = keys.popitem(last=False)
            self.stats.evictions += 1
            if self.demote_on_evict and tier + 1 < len(self._tiers):
                if victim not in self._tiers[tier + 1]:
                    self._insert(tier + 1, victim)
        keys[key] = None

    def contains(self, key: object) -> bool:
        return any(key in keys for keys in self._tiers)

    def tier_of(self, key: object) -> int | None:
        for index, keys in enumerate(self._tiers):
            if key in keys:
                return index
        return None

    def resident_keys_by_tier(self) -> list[list[object]]:
        return [list(keys) for keys in self._tiers]

    @property
    def n_entries(self) -> int:
        return sum(len(keys) for keys in self._tiers)
