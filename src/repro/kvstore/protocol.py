"""The ``ChunkStore`` protocol: one substitutable interface for KV stores.

Historically :class:`~repro.kvstore.store.KVCacheStore` returned the cache
entry from ``get`` while :class:`~repro.kvstore.hierarchy.TieredKVStore`
returned a ``TierLookup`` wrapper — so the two could not be swapped under a
:class:`~repro.core.blend_engine.BlendEngine`.  This module defines the
shared contract every store backend implements:

* ``get(key)`` always returns the :class:`~repro.model.tensors.KVCache`
  itself (or ``None``), updating recency and hit/miss statistics;
* ``lookup(key)`` returns a :class:`StoreLookup` carrying the cache *plus*
  the simulated read delay (and, for tiered stores, which tier served it),
  so callers that price storage latency — the engine's executor path — get
  the delay without a second ``read_delay`` round trip;
* ``put(key, cache)`` inserts, evicting as needed, and returns the bytes
  evicted to make room;
* ``stats`` / ``bytes_stored`` expose the shared
  :class:`~repro.kvstore.store.CacheStats` accounting.

Backends: the whole-chunk :class:`~repro.kvstore.store.KVCacheStore`, the
token-level dedup :class:`~repro.kvstore.trie.RadixTrieStore` and the
multi-tier :class:`~repro.kvstore.hierarchy.TieredKVStore` (whose tiers may
themselves be chunk or trie stores).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Protocol, runtime_checkable

from repro.kvstore.device import StorageDevice
from repro.model.tensors import KVCache

if TYPE_CHECKING:  # avoid a cycle: store.py imports StoreLookup from here
    from repro.kvstore.store import CacheStats


@dataclass
class StoreLookup:
    """Result of one :meth:`ChunkStore.lookup`.

    Attributes
    ----------
    cache:
        The stored KV cache, or ``None`` on a miss.
    read_delay:
        Simulated seconds to read the entry from its device (0.0 on a miss).
        For tiered stores this is the delay of the tier that actually served
        the hit — slower than the front tier's when the entry had been
        demoted, which is exactly the excess the serving path prices in.
    tier_index:
        Which tier served the hit (0 = fastest); ``None`` for single-tier
        stores and misses.
    nbytes:
        Logical (un-deduplicated) size of the entry in store bytes; lets
        callers convert ``read_delay`` into a device-relative excess without
        re-deriving entry sizes.
    """

    cache: KVCache | None
    read_delay: float = 0.0
    tier_index: int | None = None
    nbytes: int = 0

    @property
    def hit(self) -> bool:
        return self.cache is not None


@runtime_checkable
class ChunkStore(Protocol):
    """Structural interface of every chunk KV store backend."""

    stats: CacheStats

    def contains(self, key: str) -> bool: ...

    def get(self, key: str) -> KVCache | None: ...

    def lookup(self, key: str) -> StoreLookup: ...

    def put(self, key: str, cache: KVCache) -> int: ...

    def peek(self, key: str) -> KVCache | None: ...

    def clear(self) -> None: ...

    def reset_stats(self) -> None: ...

    @property
    def bytes_stored(self) -> int: ...

    @property
    def n_entries(self) -> int: ...

    @property
    def device(self) -> StorageDevice: ...
