"""KV cache serialization and size accounting.

KV caches are stored as float16 (or int8-scaled, for the quantised presets)
blobs.  ``kv_nbytes`` is the size accounting the storage devices and the
loading-delay estimator use; ``serialize_kv``/``deserialize_kv`` produce real
byte buffers so the store can optionally persist caches to files on disk.

Two wire formats exist:

* ``RPKV2`` (current, written by :func:`serialize_kv`): a JSON shape/dtype
  header followed by the raw C-order array bytes of the token ids, positions
  and per-layer fp16 K/V tensors.  Loading is a zero-copy
  ``np.frombuffer`` + ``reshape`` per array — no zip container, no pickle.
* ``RPKV1`` (legacy): the same header followed by an ``np.savez`` archive.
  Still readable behind the magic check so caches persisted by older
  versions keep loading.
"""

from __future__ import annotations

import io
import json

import numpy as np

from repro.model.tensors import KVCache, LayerKV

_MAGIC_V1 = b"RPKV1\n"
_MAGIC_V2 = b"RPKV2\n"

#: On-disk dtype of the KV payload (the paper stores KV caches in fp16).
_KV_DTYPE = np.dtype(np.float16)
_IDX_DTYPE = np.dtype(np.int64)


def kv_nbytes(cache: KVCache, dtype_bytes: int = 2) -> int:
    """Storage footprint of *cache* at *dtype_bytes* per KV element."""
    if dtype_bytes <= 0:
        raise ValueError("dtype_bytes must be positive")
    return cache.nbytes(dtype_bytes)


# ----------------------------------------------------------------------
# Per-layer raw payloads (shared with the pipelined executor, which loads
# and decodes one layer at a time).
# ----------------------------------------------------------------------
def pack_layer_kv(layer: LayerKV) -> bytes:
    """Raw fp16 bytes of one layer: keys then values, C order."""
    return (
        np.ascontiguousarray(layer.keys, dtype=_KV_DTYPE).tobytes()
        + np.ascontiguousarray(layer.values, dtype=_KV_DTYPE).tobytes()
    )


def unpack_layer_kv(
    data: bytes, n_tokens: int, n_kv_heads: int, head_dim: int, offset: int = 0
) -> LayerKV:
    """Inverse of :func:`pack_layer_kv` (zero-copy ``np.frombuffer`` views).

    ``offset`` locates the layer payload inside a larger buffer, so callers
    holding a whole-cache blob never slice (= copy) the payload bytes.
    """
    shape = (n_tokens, n_kv_heads, head_dim)
    count = n_tokens * n_kv_heads * head_dim
    keys = np.frombuffer(data, dtype=_KV_DTYPE, count=count, offset=offset).reshape(shape)
    values = np.frombuffer(
        data, dtype=_KV_DTYPE, count=count, offset=offset + count * _KV_DTYPE.itemsize
    ).reshape(shape)
    return LayerKV(keys, values)


def quantize_kv_to_store_dtype(cache: KVCache) -> KVCache:
    """Round-trip *cache* through the fp16 store dtype, in memory.

    Returns exactly the cache that persisting with :func:`serialize_kv` and
    loading again would produce (fp16 payload up-cast to the float32 compute
    dtype).  :class:`~repro.core.blend_engine.BlendEngine` stores chunk
    caches through this so its in-memory fusion path and the
    :class:`~repro.core.executor.PipelinedExecutor`'s byte-level load path
    see bit-identical KV — the store never silently holds more precision
    than it is priced (and serialized) at.
    """
    layers = [
        LayerKV(
            np.asarray(layer.keys, dtype=_KV_DTYPE),
            np.asarray(layer.values, dtype=_KV_DTYPE),
        )
        for layer in cache.layers
    ]
    return KVCache(layers, cache.token_ids.copy(), cache.positions.copy())


# ----------------------------------------------------------------------
# Whole-cache serialization
# ----------------------------------------------------------------------
def serialize_kv(cache: KVCache) -> bytes:
    """Serialise *cache* into a self-describing byte string (fp16 payload).

    Writes the ``RPKV2`` raw format: header, token ids, positions, then each
    layer's K/V bytes back to back.
    """
    if cache.layers:
        n_kv_heads = cache.layers[0].keys.shape[1]
        head_dim = cache.layers[0].keys.shape[2]
        for i, layer in enumerate(cache.layers):
            if layer.keys.shape[1:] != (n_kv_heads, head_dim):
                raise ValueError(
                    f"layer {i} KV shape {layer.keys.shape[1:]} differs from "
                    f"layer 0 ({n_kv_heads}, {head_dim}); the raw format "
                    "requires uniform layer shapes"
                )
    else:
        n_kv_heads = head_dim = 0
    header = {
        "n_layers": cache.n_layers,
        "n_tokens": cache.n_tokens,
        "n_kv_heads": n_kv_heads,
        "head_dim": head_dim,
        "kv_dtype": _KV_DTYPE.name,
        "idx_dtype": _IDX_DTYPE.name,
    }
    header_bytes = json.dumps(header).encode("utf-8")
    parts = [
        _MAGIC_V2,
        len(header_bytes).to_bytes(4, "little"),
        header_bytes,
        np.ascontiguousarray(cache.token_ids, dtype=_IDX_DTYPE).tobytes(),
        np.ascontiguousarray(cache.positions, dtype=_IDX_DTYPE).tobytes(),
    ]
    for layer in cache.layers:
        parts.append(pack_layer_kv(layer))
    return b"".join(parts)


def deserialize_kv(data: bytes) -> KVCache:
    """Inverse of :func:`serialize_kv`; also reads the legacy ``RPKV1`` format.

    The fp16 payload is up-cast to the float32 compute dtype by
    :class:`~repro.model.tensors.LayerKV` (not to float64 as older versions
    did).
    """
    if data.startswith(_MAGIC_V2):
        return _deserialize_v2(data)
    if data.startswith(_MAGIC_V1):
        return _deserialize_v1(data)
    raise ValueError("not a serialized KV cache (bad magic)")


def _read_header(data: bytes, magic: bytes) -> tuple[dict, int]:
    offset = len(magic)
    header_len = int.from_bytes(data[offset : offset + 4], "little")
    offset += 4
    header = json.loads(data[offset : offset + header_len].decode("utf-8"))
    return header, offset + header_len


def _deserialize_v2(data: bytes) -> KVCache:
    header, offset = _read_header(data, _MAGIC_V2)
    n_layers = header["n_layers"]
    n_tokens = header["n_tokens"]
    n_kv_heads = header["n_kv_heads"]
    head_dim = header["head_dim"]
    kv_dtype = np.dtype(header["kv_dtype"])
    idx_dtype = np.dtype(header["idx_dtype"])
    if kv_dtype != _KV_DTYPE:
        raise ValueError(
            f"unsupported kv_dtype {kv_dtype.name!r} in RPKV2 header; "
            f"this version decodes {_KV_DTYPE.name} payloads only"
        )

    token_ids = np.frombuffer(data, dtype=idx_dtype, count=n_tokens, offset=offset)
    offset += n_tokens * idx_dtype.itemsize
    positions = np.frombuffer(data, dtype=idx_dtype, count=n_tokens, offset=offset)
    offset += n_tokens * idx_dtype.itemsize

    layer_bytes = 2 * n_tokens * n_kv_heads * head_dim * kv_dtype.itemsize
    layers = []
    for _ in range(n_layers):
        layers.append(
            unpack_layer_kv(data, n_tokens, n_kv_heads, head_dim, offset=offset)
        )
        offset += layer_bytes
    return KVCache(layers, token_ids, positions)


def _deserialize_v1(data: bytes) -> KVCache:
    """Legacy ``np.savez``-based format."""
    buffer = io.BytesIO(data)
    buffer.read(len(_MAGIC_V1))
    header_len = int.from_bytes(buffer.read(4), "little")
    header = json.loads(buffer.read(header_len).decode("utf-8"))
    archive = np.load(buffer)
    layers = [
        LayerKV(archive[f"k{i}"], archive[f"v{i}"])
        for i in range(header["n_layers"])
    ]
    return KVCache(layers, archive["token_ids"], archive["positions"])


def save_kv(cache: KVCache, path: str) -> int:
    """Persist *cache* to *path*; returns the number of bytes written."""
    payload = serialize_kv(cache)
    with open(path, "wb") as handle:
        handle.write(payload)
    return len(payload)


def load_kv(path: str) -> KVCache:
    """Load a cache persisted with :func:`save_kv`."""
    with open(path, "rb") as handle:
        return deserialize_kv(handle.read())
