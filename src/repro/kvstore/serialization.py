"""KV cache serialization and size accounting.

KV caches are stored as float16 (or int8-scaled, for the quantised presets)
blobs.  ``kv_nbytes`` is the size accounting the storage devices and the
loading-delay estimator use; ``serialize_kv``/``deserialize_kv`` produce real
byte buffers so the store can optionally persist caches to files on disk.

Five wire formats exist:

* ``RPKV5`` (current, written by :func:`serialize_kv` whenever a
  :class:`~repro.kvstore.precision.PrecisionPolicy` — or any dtype the
  uniform legacy formats cannot express, e.g. ``float32`` or the
  ``mixed`` preset — selects the payload): the RPKV4 layout generalised
  with a **per-layer dtype table** in the header.  Each layer's payload is
  packed at its own dtype (raw float32/float16 bytes, or the int8 scale
  pair + quantised bytes), so one blob can mix precisions across layers.
  Always checksummed.
* ``RPKV4`` (written by :func:`serialize_kv` for the uniform
  ``float16``/``int8`` dtypes): the RPKV2/RPKV3 layout with the payload
  dtype recorded in the header plus a blake2b digest of the payload bytes
  (token ids, positions and layers).  :func:`deserialize_kv` verifies the
  digest before decoding and raises :class:`KVCorruptionError` on
  mismatch — a flipped bit in a stored blob surfaces as a typed,
  retryable failure instead of silently decoding garbage KV.
* ``RPKV3`` (legacy int8, still readable): the JSON header followed by
  token ids, positions, then per layer a ``float32`` (k_scale, v_scale)
  pair and the int8-quantised K/V bytes.  The symmetric per-tensor scale
  (``max|x| / 127``) executes the 1-byte KV round-trip the cost model's
  ``dtype_bytes=1`` presets already price.
* ``RPKV2`` (legacy fp16, still readable): a JSON shape/dtype header
  followed by the raw C-order array bytes of the token ids, positions
  and per-layer fp16 K/V tensors.  Loading is a zero-copy
  ``np.frombuffer`` + ``reshape`` per array — no zip container, no pickle.
* ``RPKV1`` (legacy): the same header followed by an ``np.savez`` archive.
  Still readable behind the magic check so caches persisted by older
  versions keep loading.
"""

from __future__ import annotations

import hashlib
import io
import json

import numpy as np

from repro.kvstore.precision import PrecisionPolicy
from repro.model.tensors import KVCache, LayerKV

_MAGIC_V1 = b"RPKV1\n"
_MAGIC_V2 = b"RPKV2\n"
_MAGIC_V3 = b"RPKV3\n"
_MAGIC_V4 = b"RPKV4\n"
_MAGIC_V5 = b"RPKV5\n"

#: blake2b digest width of the RPKV4 payload checksum (hex in the header).
_CHECKSUM_BYTES = 16


class KVCorruptionError(ValueError):
    """A serialized KV payload failed its integrity check.

    Raised by :func:`deserialize_kv` when an ``RPKV4`` blob's payload bytes
    do not hash to the header checksum (bit rot, a torn write, or an
    injected corruption fault).  Typed so store consumers can retry or fall
    back to recompute instead of crashing on garbage KV.
    """

#: On-disk dtype of the KV payload (the paper stores KV caches in fp16).
_KV_DTYPE = np.dtype(np.float16)
_F32_DTYPE = np.dtype(np.float32)
_INT8_DTYPE = np.dtype(np.int8)
_SCALE_DTYPE = np.dtype(np.float32)
_IDX_DTYPE = np.dtype(np.int64)

#: Uniform KV payload dtypes the legacy ``RPKV2``–``4`` formats can write;
#: ``float32``, ``mixed`` and explicit per-layer policies go through
#: ``RPKV5`` (see :func:`serialize_kv`).
KV_STORE_DTYPES = ("float16", "int8")


def kv_nbytes(cache: KVCache, dtype_bytes: int = 2) -> int:
    """Storage footprint of *cache* at *dtype_bytes* per KV element."""
    if dtype_bytes <= 0:
        raise ValueError("dtype_bytes must be positive")
    return cache.nbytes(dtype_bytes)


# ----------------------------------------------------------------------
# Per-layer raw payloads (shared with the pipelined executor, which loads
# and decodes one layer at a time).
# ----------------------------------------------------------------------
def pack_layer_kv(layer: LayerKV) -> bytes:
    """Raw fp16 bytes of one layer: keys then values, C order."""
    return (
        np.ascontiguousarray(layer.keys, dtype=_KV_DTYPE).tobytes()
        + np.ascontiguousarray(layer.values, dtype=_KV_DTYPE).tobytes()
    )


def unpack_layer_kv(
    data: bytes, n_tokens: int, n_kv_heads: int, head_dim: int, offset: int = 0
) -> LayerKV:
    """Inverse of :func:`pack_layer_kv` (zero-copy ``np.frombuffer`` views).

    ``offset`` locates the layer payload inside a larger buffer, so callers
    holding a whole-cache blob never slice (= copy) the payload bytes.
    """
    shape = (n_tokens, n_kv_heads, head_dim)
    count = n_tokens * n_kv_heads * head_dim
    keys = np.frombuffer(data, dtype=_KV_DTYPE, count=count, offset=offset).reshape(shape)
    values = np.frombuffer(
        data, dtype=_KV_DTYPE, count=count, offset=offset + count * _KV_DTYPE.itemsize
    ).reshape(shape)
    return LayerKV(keys, values)


def int8_scale(tensor: np.ndarray) -> np.float32:
    """Symmetric per-tensor int8 scale: ``max|x| / 127`` (1.0 for all-zero)."""
    peak = float(np.max(np.abs(tensor))) if tensor.size else 0.0
    return np.float32(peak / 127.0 if peak > 0.0 else 1.0)


def quantize_int8(tensor: np.ndarray, scale: np.float32) -> np.ndarray:
    """Quantise *tensor* to int8 at *scale* (round-to-nearest, clipped)."""
    quantised = np.round(np.asarray(tensor, dtype=np.float32) / scale)
    return np.clip(quantised, -127, 127).astype(_INT8_DTYPE)


def dequantize_int8(quantised: np.ndarray, scale: np.float32) -> np.ndarray:
    """Inverse of :func:`quantize_int8` (float32 compute dtype)."""
    return quantised.astype(np.float32) * np.float32(scale)


def pack_layer_kv_int8(layer: LayerKV) -> bytes:
    """int8 bytes of one layer: (k_scale, v_scale) float32 pair, then the
    quantised keys and values, C order."""
    k_scale = int8_scale(layer.keys)
    v_scale = int8_scale(layer.values)
    return (
        np.array([k_scale, v_scale], dtype=_SCALE_DTYPE).tobytes()
        + quantize_int8(layer.keys, k_scale).tobytes()
        + quantize_int8(layer.values, v_scale).tobytes()
    )


def unpack_layer_kv_int8(
    data: bytes, n_tokens: int, n_kv_heads: int, head_dim: int, offset: int = 0
) -> LayerKV:
    """Inverse of :func:`pack_layer_kv_int8` (dequantised to float32)."""
    scales = np.frombuffer(data, dtype=_SCALE_DTYPE, count=2, offset=offset)
    offset += 2 * _SCALE_DTYPE.itemsize
    shape = (n_tokens, n_kv_heads, head_dim)
    count = n_tokens * n_kv_heads * head_dim
    keys = np.frombuffer(data, dtype=_INT8_DTYPE, count=count, offset=offset).reshape(shape)
    values = np.frombuffer(
        data, dtype=_INT8_DTYPE, count=count, offset=offset + count
    ).reshape(shape)
    return LayerKV(dequantize_int8(keys, scales[0]), dequantize_int8(values, scales[1]))


def _int8_layer_nbytes(n_tokens: int, n_kv_heads: int, head_dim: int) -> int:
    return 2 * _SCALE_DTYPE.itemsize + 2 * n_tokens * n_kv_heads * head_dim


def pack_layer_kv_f32(layer: LayerKV) -> bytes:
    """Raw float32 bytes of one layer: keys then values, C order."""
    return (
        np.ascontiguousarray(layer.keys, dtype=_F32_DTYPE).tobytes()
        + np.ascontiguousarray(layer.values, dtype=_F32_DTYPE).tobytes()
    )


def unpack_layer_kv_f32(
    data: bytes, n_tokens: int, n_kv_heads: int, head_dim: int, offset: int = 0
) -> LayerKV:
    """Inverse of :func:`pack_layer_kv_f32` (zero-copy ``np.frombuffer``)."""
    shape = (n_tokens, n_kv_heads, head_dim)
    count = n_tokens * n_kv_heads * head_dim
    keys = np.frombuffer(data, dtype=_F32_DTYPE, count=count, offset=offset).reshape(shape)
    values = np.frombuffer(
        data, dtype=_F32_DTYPE, count=count, offset=offset + count * _F32_DTYPE.itemsize
    ).reshape(shape)
    return LayerKV(keys, values)


#: (pack, unpack) codec per element dtype; widths live in
#: :func:`repro.kvstore.precision.layer_payload_nbytes`.
_LAYER_CODECS = {
    "float32": (pack_layer_kv_f32, unpack_layer_kv_f32),
    "float16": (pack_layer_kv, unpack_layer_kv),
    "int8": (pack_layer_kv_int8, unpack_layer_kv_int8),
}


def pack_layer_kv_as(layer: LayerKV, dtype: str) -> bytes:
    """Pack one layer's K+V at *dtype* (``float32``/``float16``/``int8``)."""
    try:
        pack, _ = _LAYER_CODECS[dtype]
    except KeyError:
        raise ValueError(f"unknown layer dtype {dtype!r}") from None
    return pack(layer)


def unpack_layer_kv_as(
    data: bytes, dtype: str, n_tokens: int, n_kv_heads: int, head_dim: int,
    offset: int = 0,
) -> LayerKV:
    """Inverse of :func:`pack_layer_kv_as`."""
    try:
        _, unpack = _LAYER_CODECS[dtype]
    except KeyError:
        raise ValueError(f"unknown layer dtype {dtype!r}") from None
    return unpack(data, n_tokens, n_kv_heads, head_dim, offset=offset)


def _resolve_kv_dtype(kv_dtype: str | PrecisionPolicy) -> PrecisionPolicy:
    """Resolve a ``kv_dtype`` argument, keeping the legacy error wording."""
    try:
        return PrecisionPolicy.get(kv_dtype)
    except ValueError as error:
        raise ValueError(f"unknown kv_dtype {kv_dtype!r}: {error}") from None


def _quantize_layer(layer: LayerKV, dtype: str) -> LayerKV:
    """Round-trip one layer through its store *dtype*, in memory."""
    if dtype == "int8":
        k_scale = int8_scale(layer.keys)
        v_scale = int8_scale(layer.values)
        return LayerKV(
            dequantize_int8(quantize_int8(layer.keys, k_scale), k_scale),
            dequantize_int8(quantize_int8(layer.values, v_scale), v_scale),
        )
    if dtype == "float16":
        return LayerKV(
            np.asarray(layer.keys, dtype=_KV_DTYPE),
            np.asarray(layer.values, dtype=_KV_DTYPE),
        )
    if dtype == "float32":
        return LayerKV(
            np.asarray(layer.keys, dtype=_F32_DTYPE),
            np.asarray(layer.values, dtype=_F32_DTYPE),
        )
    raise ValueError(f"unknown layer dtype {dtype!r}")


def quantize_kv_to_store_dtype(
    cache: KVCache, kv_dtype: str | PrecisionPolicy = "float16"
) -> KVCache:
    """Round-trip *cache* through the store precision, in memory.

    ``kv_dtype`` is a uniform dtype name, a precision preset name
    (``"mixed"``, ``"float32"``) or a
    :class:`~repro.kvstore.precision.PrecisionPolicy`; each layer is
    round-tripped at the dtype the resolved policy assigns it.  Returns
    exactly the cache that persisting with :func:`serialize_kv` (at the
    same precision) and loading again would produce — float payloads kept
    at their storage dtype, int8 dequantised at the per-tensor scale.
    :class:`~repro.core.blend_engine.BlendEngine` stores chunk caches
    through this so its in-memory fusion path and the
    :class:`~repro.core.executor.PipelinedExecutor`'s byte-level load path
    see bit-identical KV — the store never silently holds more precision
    than it is priced (and serialized) at.
    """
    policy = _resolve_kv_dtype(kv_dtype)
    n_layers = cache.n_layers
    layers = [
        _quantize_layer(layer, policy.dtype_for_layer(i, n_layers))
        for i, layer in enumerate(cache.layers)
    ]
    return KVCache(layers, cache.token_ids.copy(), cache.positions.copy())


# ----------------------------------------------------------------------
# Whole-cache serialization
# ----------------------------------------------------------------------
def _payload_checksum(data: bytes, offset: int = 0) -> str:
    """blake2b hex digest of the payload bytes from *offset* to the end."""
    digest = hashlib.blake2b(digest_size=_CHECKSUM_BYTES)
    digest.update(memoryview(data)[offset:])
    return digest.hexdigest()


def _uniform_layer_shape(cache: KVCache) -> tuple[int, int]:
    """Validate uniform (n_kv_heads, head_dim) across layers and return it."""
    if not cache.layers:
        return 0, 0
    n_kv_heads = cache.layers[0].keys.shape[1]
    head_dim = cache.layers[0].keys.shape[2]
    for i, layer in enumerate(cache.layers):
        if layer.keys.shape[1:] != (n_kv_heads, head_dim):
            raise ValueError(
                f"layer {i} KV shape {layer.keys.shape[1:]} differs from "
                f"layer 0 ({n_kv_heads}, {head_dim}); the raw format "
                "requires uniform layer shapes"
            )
    return n_kv_heads, head_dim


def _serialize_v5(cache: KVCache, policy: PrecisionPolicy) -> bytes:
    """Write the ``RPKV5`` per-layer-dtype format (always checksummed)."""
    n_kv_heads, head_dim = _uniform_layer_shape(cache)
    table = list(policy.layer_dtype_table(cache.n_layers)) if cache.layers else []
    header = {
        "n_layers": cache.n_layers,
        "n_tokens": cache.n_tokens,
        "n_kv_heads": n_kv_heads,
        "head_dim": head_dim,
        "kv_dtype": "per_layer",
        "layer_dtypes": table,
        "policy": policy.name,
        "idx_dtype": _IDX_DTYPE.name,
        "scale_dtype": _SCALE_DTYPE.name,
    }
    payload_parts = [
        np.ascontiguousarray(cache.token_ids, dtype=_IDX_DTYPE).tobytes(),
        np.ascontiguousarray(cache.positions, dtype=_IDX_DTYPE).tobytes(),
    ]
    for layer, dtype in zip(cache.layers, table):
        payload_parts.append(pack_layer_kv_as(layer, dtype))
    payload = b"".join(payload_parts)
    header["checksum"] = _payload_checksum(payload)
    header_bytes = json.dumps(header).encode("utf-8")
    return b"".join(
        [_MAGIC_V5, len(header_bytes).to_bytes(4, "little"), header_bytes, payload]
    )


def serialize_kv(
    cache: KVCache, kv_dtype: str | PrecisionPolicy = "float16", *, checksum: bool = True
) -> bytes:
    """Serialise *cache* into a self-describing byte string.

    For the uniform legacy dtypes the default writes ``RPKV4``: header
    (shape, payload dtype, blake2b payload checksum), token ids,
    positions, then the per-layer payload — fp16 K/V bytes back to back
    for ``kv_dtype="float16"``, or for ``kv_dtype="int8"`` each layer
    prefixed by its float32 (k_scale, v_scale) pair with the K/V quantised
    to one byte per element (the executed counterpart of the
    ``dtype_bytes=1`` pricing presets).

    Any other precision — ``"float32"``, the ``"mixed"`` preset, or a
    :class:`~repro.kvstore.precision.PrecisionPolicy` whose per-layer map
    the uniform formats cannot express — writes ``RPKV5``, whose header
    carries the full per-layer dtype table (always checksummed).

    ``checksum=False`` writes the previous-generation ``RPKV2``/``RPKV3``
    formats (no integrity digest) — kept for back-compat round-trip tests
    and readers pinned to the legacy layout.
    """
    if not (isinstance(kv_dtype, str) and kv_dtype in KV_STORE_DTYPES):
        policy = _resolve_kv_dtype(kv_dtype)
        uniform = policy.uniform_dtype
        if uniform in KV_STORE_DTYPES:
            # Uniform fp16/int8 policies keep the RPKV4/2/3 wire format
            # (bitwise-identical blobs to the pre-policy code).
            kv_dtype = uniform
        else:
            return _serialize_v5(cache, policy)
    n_kv_heads, head_dim = _uniform_layer_shape(cache)
    int8 = kv_dtype == "int8"
    header = {
        "n_layers": cache.n_layers,
        "n_tokens": cache.n_tokens,
        "n_kv_heads": n_kv_heads,
        "head_dim": head_dim,
        "kv_dtype": _INT8_DTYPE.name if int8 else _KV_DTYPE.name,
        "idx_dtype": _IDX_DTYPE.name,
    }
    if int8:
        header["scale_dtype"] = _SCALE_DTYPE.name
    payload_parts = [
        np.ascontiguousarray(cache.token_ids, dtype=_IDX_DTYPE).tobytes(),
        np.ascontiguousarray(cache.positions, dtype=_IDX_DTYPE).tobytes(),
    ]
    for layer in cache.layers:
        payload_parts.append(
            pack_layer_kv_int8(layer) if int8 else pack_layer_kv(layer)
        )
    payload = b"".join(payload_parts)
    if checksum:
        magic = _MAGIC_V4
        header["checksum"] = _payload_checksum(payload)
    else:
        magic = _MAGIC_V3 if int8 else _MAGIC_V2
    header_bytes = json.dumps(header).encode("utf-8")
    return b"".join(
        [magic, len(header_bytes).to_bytes(4, "little"), header_bytes, payload]
    )


def deserialize_kv(data: bytes) -> KVCache:
    """Inverse of :func:`serialize_kv`; reads all of ``RPKV1``–``5``.

    ``RPKV4``/``RPKV5`` payloads are integrity-checked first — a blake2b
    mismatch raises :class:`KVCorruptionError` before any bytes are
    decoded.  Float payloads are up-cast to the float32 compute dtype by
    :class:`~repro.model.tensors.LayerKV` (not to float64 as older versions
    did); int8 payloads are dequantised at their per-tensor scales.
    """
    if data.startswith(_MAGIC_V5):
        return _deserialize_v5(data)
    if data.startswith(_MAGIC_V4):
        return _deserialize_v4(data)
    if data.startswith(_MAGIC_V3):
        return _deserialize_v3(data)
    if data.startswith(_MAGIC_V2):
        return _deserialize_v2(data)
    if data.startswith(_MAGIC_V1):
        return _deserialize_v1(data)
    raise ValueError("not a serialized KV cache (bad magic)")


def _read_header(data: bytes, magic: bytes) -> tuple[dict, int]:
    offset = len(magic)
    header_len = int.from_bytes(data[offset : offset + 4], "little")
    offset += 4
    header = json.loads(data[offset : offset + header_len].decode("utf-8"))
    return header, offset + header_len


def _decode_raw_payload(data: bytes, header: dict, offset: int) -> KVCache:
    """Decode the RPKV2/3/4 raw payload (ids, positions, layers) at *offset*."""
    n_layers = header["n_layers"]
    n_tokens = header["n_tokens"]
    n_kv_heads = header["n_kv_heads"]
    head_dim = header["head_dim"]
    kv_dtype = np.dtype(header["kv_dtype"])
    idx_dtype = np.dtype(header["idx_dtype"])
    int8 = kv_dtype == _INT8_DTYPE

    token_ids = np.frombuffer(data, dtype=idx_dtype, count=n_tokens, offset=offset)
    offset += n_tokens * idx_dtype.itemsize
    positions = np.frombuffer(data, dtype=idx_dtype, count=n_tokens, offset=offset)
    offset += n_tokens * idx_dtype.itemsize

    if int8:
        layer_bytes = _int8_layer_nbytes(n_tokens, n_kv_heads, head_dim)
        unpack = unpack_layer_kv_int8
    else:
        layer_bytes = 2 * n_tokens * n_kv_heads * head_dim * kv_dtype.itemsize
        unpack = unpack_layer_kv
    layers = []
    for _ in range(n_layers):
        layers.append(unpack(data, n_tokens, n_kv_heads, head_dim, offset=offset))
        offset += layer_bytes
    return KVCache(layers, token_ids, positions)


def _check_payload_dtype(header: dict, magic: bytes, allowed: tuple) -> None:
    kv_dtype = np.dtype(header["kv_dtype"])
    if kv_dtype not in allowed:
        raise ValueError(
            f"unsupported kv_dtype {kv_dtype.name!r} in "
            f"{magic[:-1].decode()} header"
        )
    if kv_dtype == _INT8_DTYPE and (
        np.dtype(header.get("scale_dtype", _SCALE_DTYPE.name)) != _SCALE_DTYPE
    ):
        raise ValueError(
            f"unsupported scale_dtype {header['scale_dtype']!r} in "
            f"{magic[:-1].decode()} header"
        )


def _deserialize_v5(data: bytes) -> KVCache:
    from repro.kvstore.precision import layer_payload_nbytes

    header, offset = _read_header(data, _MAGIC_V5)
    expected = header.get("checksum")
    if not expected:
        raise KVCorruptionError("RPKV5 header is missing its payload checksum")
    actual = _payload_checksum(data, offset)
    if actual != expected:
        raise KVCorruptionError(
            f"KV payload checksum mismatch: header {expected!r} vs "
            f"payload {actual!r} (corrupted or truncated blob)"
        )
    n_layers = header["n_layers"]
    n_tokens = header["n_tokens"]
    n_kv_heads = header["n_kv_heads"]
    head_dim = header["head_dim"]
    table = header["layer_dtypes"]
    if len(table) != n_layers:
        raise ValueError(
            f"RPKV5 layer dtype table has {len(table)} entries for "
            f"{n_layers} layers"
        )
    idx_dtype = np.dtype(header["idx_dtype"])
    token_ids = np.frombuffer(data, dtype=idx_dtype, count=n_tokens, offset=offset)
    offset += n_tokens * idx_dtype.itemsize
    positions = np.frombuffer(data, dtype=idx_dtype, count=n_tokens, offset=offset)
    offset += n_tokens * idx_dtype.itemsize
    layers = []
    for dtype in table:
        layers.append(
            unpack_layer_kv_as(data, dtype, n_tokens, n_kv_heads, head_dim, offset=offset)
        )
        offset += layer_payload_nbytes(dtype, n_tokens, n_kv_heads, head_dim)
    return KVCache(layers, token_ids, positions)


def _deserialize_v4(data: bytes) -> KVCache:
    header, offset = _read_header(data, _MAGIC_V4)
    _check_payload_dtype(header, _MAGIC_V4, (_KV_DTYPE, _INT8_DTYPE))
    expected = header.get("checksum")
    if not expected:
        raise KVCorruptionError("RPKV4 header is missing its payload checksum")
    actual = _payload_checksum(data, offset)
    if actual != expected:
        raise KVCorruptionError(
            f"KV payload checksum mismatch: header {expected!r} vs "
            f"payload {actual!r} (corrupted or truncated blob)"
        )
    return _decode_raw_payload(data, header, offset)


def _deserialize_v2(data: bytes) -> KVCache:
    header, offset = _read_header(data, _MAGIC_V2)
    _check_payload_dtype(header, _MAGIC_V2, (_KV_DTYPE,))
    return _decode_raw_payload(data, header, offset)


def _deserialize_v3(data: bytes) -> KVCache:
    header, offset = _read_header(data, _MAGIC_V3)
    _check_payload_dtype(header, _MAGIC_V3, (_INT8_DTYPE,))
    return _decode_raw_payload(data, header, offset)


def _deserialize_v1(data: bytes) -> KVCache:
    """Legacy ``np.savez``-based format."""
    buffer = io.BytesIO(data)
    buffer.read(len(_MAGIC_V1))
    header_len = int.from_bytes(buffer.read(4), "little")
    header = json.loads(buffer.read(header_len).decode("utf-8"))
    archive = np.load(buffer)
    layers = [
        LayerKV(archive[f"k{i}"], archive[f"v{i}"])
        for i in range(header["n_layers"])
    ]
    return KVCache(layers, archive["token_ids"], archive["positions"])


def save_kv(
    cache: KVCache, path: str, kv_dtype: str | PrecisionPolicy = "float16"
) -> int:
    """Persist *cache* to *path*; returns the number of bytes written.

    ``kv_dtype`` selects the payload precision exactly as in
    :func:`serialize_kv`.
    """
    payload = serialize_kv(cache, kv_dtype=kv_dtype)
    with open(path, "wb") as handle:
        handle.write(payload)
    return len(payload)


def load_kv(path: str) -> KVCache:
    """Load a cache persisted with :func:`save_kv`."""
    with open(path, "rb") as handle:
        return deserialize_kv(handle.read())
