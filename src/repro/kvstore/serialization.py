"""KV cache serialization and size accounting.

KV caches are stored as float16 (or int8-scaled, for the quantised presets)
blobs.  ``kv_nbytes`` is the size accounting the storage devices and the
loading-delay estimator use; ``serialize_kv``/``deserialize_kv`` produce real
byte buffers so the store can optionally persist caches to files on disk.
"""

from __future__ import annotations

import io
import json

import numpy as np

from repro.model.tensors import KVCache, LayerKV

_MAGIC = b"RPKV1\n"


def kv_nbytes(cache: KVCache, dtype_bytes: int = 2) -> int:
    """Storage footprint of *cache* at *dtype_bytes* per KV element."""
    if dtype_bytes <= 0:
        raise ValueError("dtype_bytes must be positive")
    return cache.nbytes(dtype_bytes)


def serialize_kv(cache: KVCache) -> bytes:
    """Serialise *cache* into a self-describing byte string (fp16 payload)."""
    buffer = io.BytesIO()
    buffer.write(_MAGIC)
    header = {
        "n_layers": cache.n_layers,
        "n_tokens": cache.n_tokens,
    }
    header_bytes = json.dumps(header).encode("utf-8")
    buffer.write(len(header_bytes).to_bytes(4, "little"))
    buffer.write(header_bytes)
    arrays: dict[str, np.ndarray] = {
        "token_ids": cache.token_ids.astype(np.int64),
        "positions": cache.positions.astype(np.int64),
    }
    for i, layer in enumerate(cache.layers):
        arrays[f"k{i}"] = layer.keys.astype(np.float16)
        arrays[f"v{i}"] = layer.values.astype(np.float16)
    np.savez(buffer, **arrays)
    return buffer.getvalue()


def deserialize_kv(data: bytes) -> KVCache:
    """Inverse of :func:`serialize_kv`."""
    if not data.startswith(_MAGIC):
        raise ValueError("not a serialized KV cache (bad magic)")
    buffer = io.BytesIO(data)
    buffer.read(len(_MAGIC))
    header_len = int.from_bytes(buffer.read(4), "little")
    header = json.loads(buffer.read(header_len).decode("utf-8"))
    archive = np.load(buffer)
    layers = [
        LayerKV(
            archive[f"k{i}"].astype(np.float64),
            archive[f"v{i}"].astype(np.float64),
        )
        for i in range(header["n_layers"])
    ]
    return KVCache(layers, archive["token_ids"], archive["positions"])


def save_kv(cache: KVCache, path: str) -> int:
    """Persist *cache* to *path*; returns the number of bytes written."""
    payload = serialize_kv(cache)
    with open(path, "wb") as handle:
        handle.write(payload)
    return len(payload)


def load_kv(path: str) -> KVCache:
    """Load a cache persisted with :func:`save_kv`."""
    with open(path, "rb") as handle:
        return deserialize_kv(handle.read())
