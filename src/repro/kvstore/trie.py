"""Token-level radix-trie KV store with prefix deduplication.

The whole-chunk :class:`~repro.kvstore.store.KVCacheStore` keys each chunk by
a hash of its full token-id array, so two chunks sharing a long token prefix
(a common system prompt, overlapping retrieval windows) store their shared
rows twice — the storage blow-up the paper calls out in §7.2.  This module
stores chunk KV in a radix (compressed prefix) trie over token ids instead:

* each trie node owns one *edge* — a run of token ids, their positions and
  the per-layer KV rows computed for exactly those tokens;
* ``put`` walks the trie and stores only the **novel suffix** rows, splitting
  an existing edge at the divergence point (the split conserves bytes: KV
  rows are per-token, so cutting an edge in two never duplicates a row);
* ``get`` reassembles the full chunk by concatenating the node segments from
  root to leaf — bitwise-equal to the cache that was ``put``, because causal
  attention makes the KV of token *i* depend only on tokens ``<= i`` and
  chunk prefill is deterministic, so a shared token-id prefix (at the same
  positions) has identical KV rows no matter which chunk wrote it first;
* nodes are **reference counted** (one count per live entry whose root-to-
  leaf path crosses the node), so evicting an entry frees only its unshared
  suffix nodes — shared prefixes stay until the last referencing entry goes.

Eviction is dual, in the spirit of radix-tree prompt caches: LRU (or FIFO)
over the *entries* when the deduplicated ``bytes_stored`` exceeds capacity,
plus an optional TTL that lazily expires entries on access.  Exact-match
lookups stay O(1) via the entry table; ``prefix_match`` is O(L) in the
queried token count.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.kvstore.device import StorageDevice
from repro.kvstore.precision import PrecisionPolicy
from repro.kvstore.protocol import StoreLookup
from repro.kvstore.serialization import kv_nbytes
from repro.kvstore.store import CacheStats, EvictionPolicy
from repro.model.tensors import KVCache, LayerKV


class _TrieNode:
    """One radix-trie edge: a token run plus its per-layer KV rows."""

    __slots__ = ("tokens", "positions", "layers", "children", "parent", "refcount", "nbytes")

    def __init__(
        self,
        tokens: np.ndarray,
        positions: np.ndarray,
        layers: list[LayerKV] | None,
        parent: "_TrieNode | None",
        refcount: int = 0,
        nbytes: int = 0,
    ) -> None:
        self.tokens = tokens
        self.positions = positions
        self.layers = layers
        self.children: dict[int, _TrieNode] = {}
        self.parent = parent
        self.refcount = refcount
        self.nbytes = nbytes


@dataclass
class _TrieEntry:
    """One stored chunk: its leaf node (or a standalone cache) and sizes."""

    leaf: _TrieNode | None
    cache: KVCache | None
    #: Logical (un-deduplicated) full-chunk store bytes — what a whole-chunk
    #: store would hold and what a read of this entry transfers.
    nbytes: int
    expires_at: float | None = None


@dataclass
class RadixTrieStore:
    """A single-device chunk KV store deduplicating shared token prefixes.

    Drop-in :class:`~repro.kvstore.protocol.ChunkStore` replacement for
    :class:`~repro.kvstore.store.KVCacheStore`: identical keying, statistics
    and eviction surface, but ``bytes_stored`` counts each shared prefix row
    once.  ``read_delay``/``lookup`` price reads at the entry's *logical*
    size — a chunk read transfers its full row range regardless of on-device
    sharing — so swapping backends never changes simulated load delays, only
    residency.

    Caches stored here must carry their ``token_ids`` (and positions); the
    engine's chunk caches always do.  A cache whose positions disagree with
    an existing edge at its very first token cannot share that edge and is
    stored standalone (un-deduplicated) under its key.
    """

    device: StorageDevice
    dtype_bytes: int = 2
    policy: EvictionPolicy = EvictionPolicy.LRU
    capacity_bytes: int | None = None
    #: Optional time-to-live; entries older than this are lazily expired on
    #: access/insert (counted in ``stats.expirations``).
    ttl_s: float | None = None
    stats: CacheStats = field(default_factory=CacheStats)
    on_evict: Callable[[str, KVCache], None] | None = field(default=None, repr=False)
    #: Optional per-layer precision policy; when set, row/entry byte
    #: accounting uses the policy's per-layer element widths instead of the
    #: scalar ``dtype_bytes`` (element widths are token-proportional, so
    #: edge splits still conserve bytes exactly).
    precision: PrecisionPolicy | str | None = None
    _entries: "OrderedDict[str, _TrieEntry]" = field(default_factory=OrderedDict)
    _root: _TrieNode = field(
        default_factory=lambda: _TrieNode(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64), None, None
        ),
        repr=False,
    )

    def __post_init__(self) -> None:
        if self.capacity_bytes is None:
            self.capacity_bytes = self.device.capacity_bytes
        if self.capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        if self.ttl_s is not None and self.ttl_s <= 0:
            raise ValueError("ttl_s must be positive when set")
        if self.precision is not None:
            self.precision = PrecisionPolicy.get(self.precision)

    def cache_nbytes(self, cache: KVCache) -> int:
        """Logical stored bytes of *cache* under this store's precision."""
        if self.precision is not None:
            return self.precision.cache_nbytes(cache)
        return kv_nbytes(cache, self.dtype_bytes)

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------
    def contains(self, key: str) -> bool:
        return self._live_entry(key) is not None

    def get(self, key: str) -> KVCache | None:
        """Fetch a cache by key, updating recency and hit/miss statistics."""
        return self.lookup(key).cache

    def lookup(self, key: str) -> StoreLookup:
        """Like :meth:`get`, but also reports the simulated read delay."""
        entry = self._live_entry(key)
        if entry is None:
            self.stats.misses += 1
            return StoreLookup(cache=None)
        self.stats.hits += 1
        if self.policy is EvictionPolicy.LRU:
            self._entries.move_to_end(key)
        return StoreLookup(
            cache=self._reassemble(entry),
            read_delay=self.device.read_time(entry.nbytes),
            nbytes=entry.nbytes,
        )

    def peek(self, key: str) -> KVCache | None:
        """Fetch without touching statistics or recency (used by tooling)."""
        entry = self._entries.get(key)
        return self._reassemble(entry) if entry is not None else None

    def put(self, key: str, cache: KVCache) -> int:
        """Insert a chunk, storing only its novel suffix rows.

        Returns the bytes evicted to make room (deduplicated bytes actually
        freed, like :meth:`KVCacheStore.put` returns entry bytes dropped).
        """
        nbytes = self.cache_nbytes(cache)
        if nbytes > self.capacity_bytes:
            raise ValueError(
                f"cache of {nbytes} bytes cannot fit in capacity {self.capacity_bytes}"
            )
        self._sweep_expired()
        if key in self._entries:
            self.remove(key)

        ids = np.asarray(cache.token_ids, dtype=np.int64)
        positions = np.asarray(cache.positions, dtype=np.int64)
        path = (
            self._insert(ids, positions, cache)
            if ids.size == cache.n_tokens and ids.size > 0
            else None
        )
        if path is None:
            # No token identity (or positions clash on the first edge token):
            # fall back to whole-chunk storage under this key.
            entry = _TrieEntry(leaf=None, cache=cache, nbytes=nbytes)
            self.stats.bytes_stored += nbytes
        else:
            novel = sum(node.nbytes for node in path if node.refcount == 0)
            for node in path:
                node.refcount += 1
            entry = _TrieEntry(leaf=path[-1], cache=None, nbytes=nbytes)
            self.stats.bytes_stored += novel
        if self.ttl_s is not None:
            entry.expires_at = time.monotonic() + self.ttl_s
        self._entries[key] = entry
        self.stats.inserts += 1

        evicted = 0
        while self.stats.bytes_stored > self.capacity_bytes and len(self._entries) > 1:
            evicted += self._evict_one()
        return evicted

    def remove(self, key: str) -> bool:
        """Remove an entry, freeing only nodes no other entry references."""
        entry = self._entries.pop(key, None)
        if entry is None:
            return False
        self._release(entry)
        return True

    def clear(self) -> None:
        self._entries.clear()
        self._root.children.clear()
        self.stats.bytes_stored = 0

    def reset_stats(self) -> None:
        """Zero the counters (``bytes_stored`` reflects live entries, stays)."""
        self.stats.reset()

    # ------------------------------------------------------------------
    # Delay accounting
    # ------------------------------------------------------------------
    def read_delay(self, key: str) -> float:
        """Simulated delay of reading the full (logical) entry at *key*.

        TTL-aware: an expired entry prices like the miss it is about to
        become (0.0), matching :meth:`lookup`'s clean-miss guarantee, and
        an absent key is likewise 0.0 rather than a ``KeyError`` — callers
        racing an eviction or expiry must never crash on delay pricing.
        """
        entry = self._live_entry(key)
        if entry is None:
            return 0.0
        return self.device.read_time(entry.nbytes)

    def write_delay(self, cache: KVCache) -> float:
        """Simulated delay of writing *cache* to the device."""
        return self.device.write_time(self.cache_nbytes(cache))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_entries(self) -> int:
        return len(self._entries)

    @property
    def bytes_stored(self) -> int:
        """Deduplicated bytes actually resident (each shared row once)."""
        return self.stats.bytes_stored

    @property
    def logical_bytes(self) -> int:
        """Un-deduplicated bytes of all live entries (whole-chunk footprint)."""
        return sum(entry.nbytes for entry in self._entries.values())

    @property
    def dedup_ratio(self) -> float:
        """``logical_bytes / bytes_stored`` (1.0 means nothing is shared)."""
        stored = self.stats.bytes_stored
        return self.logical_bytes / stored if stored else 1.0

    @property
    def utilisation(self) -> float:
        return self.stats.bytes_stored / self.capacity_bytes

    def keys(self) -> list[str]:
        return list(self._entries.keys())

    def prefix_match(self, token_ids: np.ndarray, positions: np.ndarray | None = None) -> int:
        """Longest stored token-id prefix of *token_ids* (O(len) walk)."""
        ids = np.asarray(token_ids, dtype=np.int64)
        pos = (
            np.asarray(positions, dtype=np.int64)
            if positions is not None
            else np.arange(ids.size, dtype=np.int64)
        )
        node, i = self._root, 0
        while i < ids.size:
            child = node.children.get(int(ids[i]))
            if child is None:
                break
            limit = min(child.tokens.size, ids.size - i)
            matched = (child.tokens[:limit] == ids[i : i + limit]) & (
                child.positions[:limit] == pos[i : i + limit]
            )
            m = int(limit if matched.all() else np.argmax(~matched))
            i += m
            if m < child.tokens.size:
                break
            node = child
        return i

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _live_entry(self, key: str) -> _TrieEntry | None:
        entry = self._entries.get(key)
        if entry is None:
            return None
        if entry.expires_at is not None and time.monotonic() >= entry.expires_at:
            self.remove(key)
            self.stats.expirations += 1
            return None
        return entry

    def _sweep_expired(self) -> None:
        if self.ttl_s is None:
            return
        now = time.monotonic()
        expired = [
            key
            for key, entry in self._entries.items()
            if entry.expires_at is not None and now >= entry.expires_at
        ]
        for key in expired:
            self.remove(key)
            self.stats.expirations += 1

    def _rows_nbytes(self, layers: list[LayerKV]) -> int:
        if self.precision is not None:
            return self.precision.rows_nbytes(layers)
        return sum(layer.nbytes(self.dtype_bytes) for layer in layers)

    def _make_node(
        self, ids: np.ndarray, positions: np.ndarray, cache: KVCache, start: int,
        parent: _TrieNode,
    ) -> _TrieNode:
        layers = [
            LayerKV(layer.keys[start:].copy(), layer.values[start:].copy())
            for layer in cache.layers
        ]
        return _TrieNode(
            tokens=ids[start:].copy(),
            positions=positions[start:].copy(),
            layers=layers,
            parent=parent,
            nbytes=self._rows_nbytes(layers),
        )

    def _split(self, node: _TrieNode, m: int) -> _TrieNode:
        """Split *node*'s edge after *m* rows; returns the new upper node.

        Rows are per-token, so ``upper.nbytes + node.nbytes`` equals the
        pre-split ``node.nbytes`` exactly — splitting never changes the
        store's byte accounting.
        """
        assert node.layers is not None and 0 < m < node.tokens.size
        parent = node.parent
        assert parent is not None
        upper_layers = [
            LayerKV(layer.keys[:m].copy(), layer.values[:m].copy())
            for layer in node.layers
        ]
        upper = _TrieNode(
            tokens=node.tokens[:m].copy(),
            positions=node.positions[:m].copy(),
            layers=upper_layers,
            parent=parent,
            refcount=node.refcount,
            nbytes=self._rows_nbytes(upper_layers),
        )
        parent.children[int(upper.tokens[0])] = upper
        node.tokens = node.tokens[m:].copy()
        node.positions = node.positions[m:].copy()
        node.layers = [
            LayerKV(layer.keys[m:].copy(), layer.values[m:].copy())
            for layer in node.layers
        ]
        node.nbytes = self._rows_nbytes(node.layers)
        node.parent = upper
        upper.children[int(node.tokens[0])] = node
        return upper

    def _insert(
        self, ids: np.ndarray, positions: np.ndarray, cache: KVCache
    ) -> list[_TrieNode] | None:
        """Walk/extend the trie for one chunk; returns its root-to-leaf path.

        Newly created nodes are returned with ``refcount == 0`` (the caller
        bumps the whole path); returns ``None`` when the chunk's positions
        disagree with an existing edge at its first token — two children
        under one first-token key are impossible, so such a chunk is stored
        standalone.
        """
        node, i = self._root, 0
        path: list[_TrieNode] = []
        n = int(ids.size)
        while i < n:
            child = node.children.get(int(ids[i]))
            if child is None:
                leaf = self._make_node(ids, positions, cache, i, parent=node)
                node.children[int(ids[i])] = leaf
                path.append(leaf)
                return path
            limit = min(child.tokens.size, n - i)
            matched = (child.tokens[:limit] == ids[i : i + limit]) & (
                child.positions[:limit] == positions[i : i + limit]
            )
            m = int(limit if matched.all() else np.argmax(~matched))
            if m == 0:
                return None
            if m < child.tokens.size:
                child = self._split(child, m)
            path.append(child)
            node = child
            i += m
        return path

    def _reassemble(self, entry: _TrieEntry) -> KVCache:
        """Rebuild the full chunk cache from the entry's root-to-leaf segments.

        Segment concatenation is a pure row-wise ``np.concatenate`` of the
        exact arrays that were stored, so the result is bitwise-equal to the
        cache originally ``put`` under the key.
        """
        if entry.leaf is None:
            assert entry.cache is not None
            return entry.cache
        segments: list[_TrieNode] = []
        node: _TrieNode | None = entry.leaf
        while node is not None and node.layers is not None:
            segments.append(node)
            node = node.parent
        segments.reverse()
        if len(segments) == 1:
            seg = segments[0]
            return KVCache(
                [LayerKV(layer.keys, layer.values) for layer in seg.layers],
                seg.tokens,
                seg.positions,
            )
        n_layers = len(segments[0].layers)
        layers = [
            LayerKV(
                np.concatenate([seg.layers[li].keys for seg in segments]),
                np.concatenate([seg.layers[li].values for seg in segments]),
            )
            for li in range(n_layers)
        ]
        return KVCache(
            layers,
            np.concatenate([seg.tokens for seg in segments]),
            np.concatenate([seg.positions for seg in segments]),
        )

    def _release(self, entry: _TrieEntry) -> int:
        """Drop one entry's references, freeing nodes that hit refcount 0."""
        if entry.leaf is None:
            self.stats.bytes_stored -= entry.nbytes
            return entry.nbytes
        freed = 0
        node: _TrieNode | None = entry.leaf
        while node is not None and node.parent is not None:
            node.refcount -= 1
            if node.refcount == 0:
                node.parent.children.pop(int(node.tokens[0]), None)
                freed += node.nbytes
            node = node.parent
        self.stats.bytes_stored -= freed
        return freed

    def _evict_one(self) -> int:
        if not self._entries:
            raise RuntimeError("eviction requested on an empty store")
        key, entry = self._entries.popitem(last=False)
        cache = self._reassemble(entry) if self.on_evict is not None else None
        freed = self._release(entry)
        self.stats.evictions += 1
        if self.on_evict is not None and cache is not None:
            self.on_evict(key, cache)
        return freed
