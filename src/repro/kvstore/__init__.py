"""KV cache storage substrate.

Models the storage side of CacheBlend: the devices KV caches can live on
(GPU HBM, CPU RAM, NVMe SSD, slower disks, object stores), serialization and
size accounting, and the :class:`ChunkStore` backends — a hash-addressed
whole-chunk store with LRU eviction, a radix-trie store deduplicating shared
token prefixes, and a multi-tier store (RAM + SSD) with promotion/demotion.
"""

from repro.kvstore.config import KV_DTYPE_BYTES, STORE_BACKENDS, StoreConfig
from repro.kvstore.device import DEVICE_PRESETS, StorageDevice, get_device
from repro.kvstore.faults import (
    ALL_FAULT_KINDS,
    FaultConfig,
    FaultKind,
    FaultStats,
    FaultyStore,
    StoreFault,
    StoreReadTimeout,
    StoreUnavailable,
)
from repro.kvstore.hierarchy import TieredChunkTracker, TieredKVStore, TierLookup
from repro.kvstore.precision import (
    ELEM_BYTES,
    KV_ELEM_DTYPES,
    PRECISION_PRESETS,
    PrecisionPolicy,
    layer_payload_nbytes,
)
from repro.kvstore.protocol import ChunkStore, StoreLookup
from repro.kvstore.serialization import (
    KVCorruptionError,
    deserialize_kv,
    kv_nbytes,
    serialize_kv,
)
from repro.kvstore.store import (
    CHUNK_KEY_VERSION,
    CacheStats,
    ChunkUsageTracker,
    EvictionPolicy,
    KVCacheStore,
    chunk_key,
)
from repro.kvstore.trie import RadixTrieStore

__all__ = [
    "DEVICE_PRESETS",
    "StorageDevice",
    "get_device",
    "serialize_kv",
    "deserialize_kv",
    "kv_nbytes",
    "KVCorruptionError",
    "FaultyStore",
    "FaultConfig",
    "FaultKind",
    "ALL_FAULT_KINDS",
    "FaultStats",
    "StoreFault",
    "StoreReadTimeout",
    "StoreUnavailable",
    "ChunkStore",
    "StoreLookup",
    "KVCacheStore",
    "RadixTrieStore",
    "CacheStats",
    "ChunkUsageTracker",
    "EvictionPolicy",
    "chunk_key",
    "CHUNK_KEY_VERSION",
    "TieredKVStore",
    "TieredChunkTracker",
    "TierLookup",
    "StoreConfig",
    "STORE_BACKENDS",
    "KV_DTYPE_BYTES",
    "PrecisionPolicy",
    "PRECISION_PRESETS",
    "KV_ELEM_DTYPES",
    "ELEM_BYTES",
    "layer_payload_nbytes",
]
