"""KV cache storage substrate.

Models the storage side of CacheBlend: the devices KV caches can live on
(GPU HBM, CPU RAM, NVMe SSD, slower disks, object stores), serialization and
size accounting, a hash-addressed chunk KV store with LRU eviction, and a
multi-tier store used by the prefix-caching baseline (RAM + SSD).
"""

from repro.kvstore.device import DEVICE_PRESETS, StorageDevice
from repro.kvstore.serialization import deserialize_kv, kv_nbytes, serialize_kv
from repro.kvstore.store import (
    CacheStats,
    ChunkUsageTracker,
    EvictionPolicy,
    KVCacheStore,
    chunk_key,
)
from repro.kvstore.hierarchy import TieredKVStore

__all__ = [
    "DEVICE_PRESETS",
    "StorageDevice",
    "serialize_kv",
    "deserialize_kv",
    "kv_nbytes",
    "KVCacheStore",
    "CacheStats",
    "ChunkUsageTracker",
    "EvictionPolicy",
    "chunk_key",
    "TieredKVStore",
]
