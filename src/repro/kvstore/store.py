"""Hash-addressed chunk KV cache store with capacity-bounded eviction.

The store maps a *chunk key* (a stable hash of the chunk's token ids, the
model name, and — for prefix caching — the prefix it was computed under) to a
KV cache entry living on one storage device.  When the device is full, the
least-recently-used entry is evicted (paper §5.1, "KV cache store").
"""

from __future__ import annotations

import enum
import hashlib
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.kvstore.device import StorageDevice
from repro.kvstore.precision import PrecisionPolicy
from repro.kvstore.protocol import StoreLookup
from repro.kvstore.serialization import kv_nbytes
from repro.model.tensors import KVCache

#: Version prefix of :func:`chunk_key`.  v1 hashed a ","-joined decimal
#: string of the token ids (O(T) Python string work per lookup); v2 hashes
#: the raw int64 bytes of the id array directly.  The prefix makes the
#: format change explicit: a v2 store never aliases v1 entries.
CHUNK_KEY_VERSION = "k2"


def chunk_key(token_ids: np.ndarray, model_name: str = "", prefix_key: str = "") -> str:
    """Stable cache key for a chunk (``"k2-<hex digest>"``).

    The digest covers the raw little-endian int64 bytes of the token-id
    array — no per-token Python string formatting — plus the model name and
    ``prefix_key``, NUL-separated so field boundaries cannot alias.

    ``prefix_key`` is empty for CacheBlend and full-KV-reuse (the cache is
    position independent after re-alignment); prefix caching passes the key of
    the preceding context so that the same chunk under different prefixes maps
    to different entries — the storage blow-up the paper points out in §7.2.
    """
    ids = np.ascontiguousarray(np.asarray(token_ids, dtype="<i8"))
    digest = hashlib.blake2b(digest_size=16)
    digest.update(model_name.encode())
    digest.update(b"\x00")
    digest.update(prefix_key.encode())
    digest.update(b"\x00")
    digest.update(ids.tobytes())
    return f"{CHUNK_KEY_VERSION}-{digest.hexdigest()}"


class EvictionPolicy(str, enum.Enum):
    """Eviction policy of a :class:`KVCacheStore`."""

    LRU = "lru"
    FIFO = "fifo"


@dataclass
class CacheStats:
    """Hit/miss/eviction counters of one store."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    inserts: int = 0
    bytes_stored: int = 0
    #: TTL-driven removals (only the trie store expires entries today).
    expirations: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def reset(self) -> None:
        """Zero the counters (bytes_stored reflects live entries and stays)."""
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.inserts = 0
        self.expirations = 0

    def as_dict(self) -> dict[str, float]:
        """JSON-friendly snapshot, including the derived hit rate."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "inserts": self.inserts,
            "bytes_stored": self.bytes_stored,
            "hit_rate": self.hit_rate,
        }


@dataclass
class _Entry:
    cache: KVCache
    nbytes: int


@dataclass
class KVCacheStore:
    """A single-device KV cache store.

    Parameters
    ----------
    device:
        The storage device the caches live on; determines capacity and the
        simulated read/write delays reported by :meth:`read_delay` /
        :meth:`write_delay`.
    dtype_bytes:
        Bytes per stored KV element (matches the model's KV dtype).
        Ignored for byte accounting when ``precision`` is set.
    policy:
        Eviction policy (LRU by default, FIFO available for ablation).
    capacity_bytes:
        Optional override of the device capacity (useful to provoke evictions
        in experiments without multi-terabyte contexts).
    on_evict:
        Optional callback invoked as ``on_evict(key, cache)`` for every
        capacity-driven eviction — the hook :class:`~repro.kvstore.hierarchy.
        TieredKVStore` uses to demote victims to the next tier instead of
        dropping them.
    precision:
        Optional :class:`~repro.kvstore.precision.PrecisionPolicy` (or
        preset name).  When set, byte accounting and eviction pressure use
        the policy's per-layer element widths — an int8 policy literally
        doubles the chunk count the same ``capacity_bytes`` holds vs fp16.
        When ``None``, the scalar ``dtype_bytes`` width applies (legacy).
    """

    device: StorageDevice
    dtype_bytes: int = 2
    policy: EvictionPolicy = EvictionPolicy.LRU
    capacity_bytes: int | None = None
    stats: CacheStats = field(default_factory=CacheStats)
    on_evict: Callable[[str, KVCache], None] | None = field(default=None, repr=False)
    precision: PrecisionPolicy | str | None = None
    _entries: "OrderedDict[str, _Entry]" = field(default_factory=OrderedDict)

    def __post_init__(self) -> None:
        if self.capacity_bytes is None:
            self.capacity_bytes = self.device.capacity_bytes
        if self.capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        if self.precision is not None:
            self.precision = PrecisionPolicy.get(self.precision)

    def cache_nbytes(self, cache: KVCache) -> int:
        """Stored bytes of *cache* under this store's precision/width."""
        if self.precision is not None:
            return self.precision.cache_nbytes(cache)
        return kv_nbytes(cache, self.dtype_bytes)

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------
    def contains(self, key: str) -> bool:
        return key in self._entries

    def get(self, key: str) -> KVCache | None:
        """Fetch a cache by key, updating recency and hit/miss statistics."""
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        if self.policy is EvictionPolicy.LRU:
            self._entries.move_to_end(key)
        return entry.cache

    def lookup(self, key: str) -> StoreLookup:
        """Like :meth:`get`, but also reports the simulated read delay."""
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return StoreLookup(cache=None)
        self.stats.hits += 1
        if self.policy is EvictionPolicy.LRU:
            self._entries.move_to_end(key)
        return StoreLookup(
            cache=entry.cache,
            read_delay=self.device.read_time(entry.nbytes),
            nbytes=entry.nbytes,
        )

    def peek(self, key: str) -> KVCache | None:
        """Fetch without touching statistics or recency (used by tooling)."""
        entry = self._entries.get(key)
        return entry.cache if entry else None

    def put(self, key: str, cache: KVCache) -> int:
        """Insert (or overwrite) a cache; returns bytes evicted to make room."""
        nbytes = self.cache_nbytes(cache)
        if nbytes > self.capacity_bytes:
            raise ValueError(
                f"cache of {nbytes} bytes cannot fit in capacity {self.capacity_bytes}"
            )
        evicted = 0
        if key in self._entries:
            self.stats.bytes_stored -= self._entries.pop(key).nbytes
        while self.stats.bytes_stored + nbytes > self.capacity_bytes:
            evicted += self._evict_one()
        self._entries[key] = _Entry(cache=cache, nbytes=nbytes)
        self.stats.bytes_stored += nbytes
        self.stats.inserts += 1
        return evicted

    def remove(self, key: str) -> bool:
        """Remove an entry; returns whether it existed."""
        entry = self._entries.pop(key, None)
        if entry is None:
            return False
        self.stats.bytes_stored -= entry.nbytes
        return True

    def clear(self) -> None:
        self._entries.clear()
        self.stats.bytes_stored = 0

    def reset_stats(self) -> None:
        """Zero the counters (``bytes_stored`` reflects live entries, stays)."""
        self.stats.reset()

    def _evict_one(self) -> int:
        if not self._entries:
            raise RuntimeError("eviction requested on an empty store")
        # Both LRU and FIFO evict from the front; LRU refreshes order on get().
        key, entry = self._entries.popitem(last=False)
        self.stats.bytes_stored -= entry.nbytes
        self.stats.evictions += 1
        if self.on_evict is not None:
            self.on_evict(key, entry.cache)
        return entry.nbytes

    # ------------------------------------------------------------------
    # Delay accounting
    # ------------------------------------------------------------------
    def read_delay(self, key: str) -> float:
        """Simulated delay of reading the entry at *key* from the device.

        0.0 for an absent key — a demoted-then-evicted entry prices like
        the clean miss :meth:`lookup` reports for it, never a ``KeyError``.
        """
        entry = self._entries.get(key)
        if entry is None:
            return 0.0
        return self.device.read_time(entry.nbytes)

    def write_delay(self, cache: KVCache) -> float:
        """Simulated delay of writing *cache* to the device."""
        return self.device.write_time(self.cache_nbytes(cache))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_entries(self) -> int:
        return len(self._entries)

    @property
    def bytes_stored(self) -> int:
        return self.stats.bytes_stored

    @property
    def utilisation(self) -> float:
        return self.stats.bytes_stored / self.capacity_bytes

    def keys(self) -> list[str]:
        return list(self._entries.keys())


@dataclass
class ChunkUsageTracker:
    """Key-only LRU model of a chunk KV cache, for hit-rate accounting.

    The workload generator and the experiment runner use it to answer "would
    this chunk's KV have been cached?" without materialising actual KV
    tensors: it tracks which chunk keys a store of ``capacity_entries``
    entries would currently hold under LRU (or FIFO) replacement, and counts
    hits/misses/evictions in a shared :class:`CacheStats`.

    Beyond the aggregate counters it keeps a per-key lifetime access count
    (:meth:`access_count`) and exposes the currently resident key set
    (:meth:`resident_keys`) — the two signals the fleet tier's affinity
    router scores placement against: "which replica already holds this
    request's chunks, weighted by how hot those chunks are there?".
    """

    capacity_entries: int
    policy: EvictionPolicy = EvictionPolicy.LRU
    stats: CacheStats = field(default_factory=CacheStats)
    _keys: "OrderedDict[object, None]" = field(default_factory=OrderedDict)
    _counts: dict[object, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.capacity_entries < 1:
            raise ValueError("capacity_entries must be >= 1")

    def access(self, key: object) -> bool:
        """Record one chunk access; returns True on a hit.

        On a miss the chunk is inserted (as the real system would precompute
        and store it), evicting the replacement victim when full.
        """
        self._counts[key] = self._counts.get(key, 0) + 1
        if key in self._keys:
            self.stats.hits += 1
            if self.policy is EvictionPolicy.LRU:
                self._keys.move_to_end(key)
            return True
        self.stats.misses += 1
        while len(self._keys) >= self.capacity_entries:
            self._keys.popitem(last=False)
            self.stats.evictions += 1
        self._keys[key] = None
        self.stats.inserts += 1
        return False

    def contains(self, key: object) -> bool:
        return key in self._keys

    def resident_keys(self) -> list[object]:
        """Currently stored keys, eviction order first (LRU/FIFO front)."""
        return list(self._keys)

    def access_count(self, key: object) -> int:
        """Lifetime access count of *key* (hits + misses), 0 if never seen."""
        return self._counts.get(key, 0)

    def hottest_keys(self, n: int = 1) -> list[object]:
        """The *n* most-accessed keys ever seen, hottest first.

        Ties break on first-seen order (insertion order of ``_counts``), so
        the ranking is deterministic for a deterministic access stream.
        """
        if n < 1:
            raise ValueError("n must be >= 1")
        ranked = sorted(self._counts.items(), key=lambda item: -item[1])
        return [key for key, _ in ranked[:n]]

    @property
    def n_entries(self) -> int:
        return len(self._keys)
