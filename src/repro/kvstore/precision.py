"""Unified KV precision policy.

One :class:`PrecisionPolicy` replaces the three dtype knobs that used to
govern KV precision independently (``ModelConfig.dtype_bytes`` for pricing,
``StoreConfig.kv_dtype`` for the store put-path, ``BlendEngine.kv_dtype``
for the in-memory round-trip).  A policy is a per-layer dtype map: every
layer of a KV cache is stored, priced, serialized and loaded at the dtype
the policy assigns it, so byte accounting, eviction pressure, load-span
pricing and the serialized wire format all agree by construction.

Presets
-------
``float32``
    Every layer at 4 bytes/element (lossless for the float32 compute path).
``float16``
    Every layer at 2 bytes/element — the paper's storage dtype and this
    repo's historical default; the policy path reduces bitwise to the
    legacy ``kv_dtype="float16"`` behaviour.
``int8``
    Every layer symmetric per-tensor int8 (1 byte/element plus two float32
    scales per layer payload) — ~2x the effective store capacity of fp16.
``mixed``
    The deviation-sensitive early layers (the first
    ``ceil(MIXED_FP16_FRACTION x n_layers)``, per the paper's observation
    that early-layer KV deviations steer HKVD selection) stay float16 while
    the remaining layers drop to int8 — near-int8 density at below-int8
    deviation.

Store *accounting* (what eviction pressure and ``bytes_stored`` count) uses
pure element widths, so a radix-trie edge split conserves bytes exactly;
the serialized *payload* width (what the executor's load spans price, via
:func:`layer_payload_nbytes`) additionally carries the int8 scale pair.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (serialization)
    from repro.model.tensors import KVCache, LayerKV

#: Element dtypes a policy may assign to a layer.
KV_ELEM_DTYPES = ("float32", "float16", "int8")

#: In-store bytes per KV element for each element dtype.
ELEM_BYTES = {"float32": 4, "float16": 2, "int8": 1}

#: Named policy presets resolvable by :meth:`PrecisionPolicy.get`.
PRECISION_PRESETS = ("float32", "float16", "int8", "mixed")

#: Fraction of early (deviation-sensitive) layers ``mixed`` keeps at fp16.
MIXED_FP16_FRACTION = 0.25

#: Serialized overhead of one int8 layer payload: a float32 (k, v) scale pair.
INT8_SCALE_OVERHEAD = 8


def layer_payload_nbytes(
    dtype: str, n_tokens: int, n_kv_heads: int, head_dim: int
) -> int:
    """Serialized payload bytes of one layer's K+V at *dtype*.

    This is exactly what ``pack_layer_kv``/``pack_layer_kv_int8`` (and the
    per-layer slices of an ``RPKV5`` blob) produce: raw element bytes for
    the float dtypes, plus the per-tensor float32 scale pair for int8.
    """
    if dtype not in ELEM_BYTES:
        raise ValueError(f"unknown element dtype {dtype!r}; expected one of {KV_ELEM_DTYPES}")
    elements = 2 * n_tokens * n_kv_heads * head_dim
    if dtype == "int8":
        return INT8_SCALE_OVERHEAD + elements
    return elements * ELEM_BYTES[dtype]


@dataclass(frozen=True)
class PrecisionPolicy:
    """A per-layer KV storage dtype map.

    ``layer_dtypes`` pins an explicit dtype per model layer; when ``None``
    the preset named by ``name`` supplies the rule (uniform for
    ``float32``/``float16``/``int8``, early-fp16/late-int8 for ``mixed``),
    which makes one policy object valid for any layer count.
    """

    name: str = "float16"
    layer_dtypes: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        if self.layer_dtypes is not None:
            if not self.layer_dtypes:
                raise ValueError("explicit layer_dtypes must be non-empty")
            for dtype in self.layer_dtypes:
                if dtype not in KV_ELEM_DTYPES:
                    raise ValueError(
                        f"unknown layer dtype {dtype!r}; "
                        f"expected one of {KV_ELEM_DTYPES}"
                    )
        elif self.name not in PRECISION_PRESETS:
            raise ValueError(
                f"unknown precision policy {self.name!r}; "
                f"known presets: {', '.join(PRECISION_PRESETS)}"
            )

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    @classmethod
    def get(cls, spec: "PrecisionPolicy | str | None") -> "PrecisionPolicy":
        """Resolve *spec* (policy, preset name, or ``None``) into a policy.

        ``None`` resolves to the historical default (``float16``).
        """
        if spec is None:
            return cls("float16")
        if isinstance(spec, cls):
            return spec
        if isinstance(spec, str):
            return cls(spec)
        raise TypeError(f"cannot resolve a precision policy from {spec!r}")

    # ------------------------------------------------------------------
    # Per-layer dtype map
    # ------------------------------------------------------------------
    def dtype_for_layer(self, layer: int, n_layers: int) -> str:
        """Storage dtype of *layer* in an *n_layers*-deep model."""
        if n_layers < 1:
            raise ValueError("n_layers must be >= 1")
        if not 0 <= layer < n_layers:
            raise ValueError(f"layer {layer} out of range for {n_layers} layers")
        if self.layer_dtypes is not None:
            if len(self.layer_dtypes) != n_layers:
                raise ValueError(
                    f"policy pins {len(self.layer_dtypes)} layer dtypes but the "
                    f"model has {n_layers} layers"
                )
            return self.layer_dtypes[layer]
        if self.name == "mixed":
            n_fp16 = max(1, math.ceil(n_layers * MIXED_FP16_FRACTION))
            return "float16" if layer < n_fp16 else "int8"
        return self.name

    def layer_dtype_table(self, n_layers: int) -> tuple[str, ...]:
        """The full per-layer dtype table (what ``RPKV5`` headers carry)."""
        return tuple(self.dtype_for_layer(i, n_layers) for i in range(n_layers))

    @property
    def uniform_dtype(self) -> str | None:
        """The single element dtype when the map is uniform, else ``None``."""
        if self.layer_dtypes is not None:
            first = self.layer_dtypes[0]
            return first if all(d == first for d in self.layer_dtypes) else None
        return self.name if self.name in KV_ELEM_DTYPES else None

    # ------------------------------------------------------------------
    # Byte accounting
    # ------------------------------------------------------------------
    def elem_bytes_for_layer(self, layer: int, n_layers: int) -> int:
        return ELEM_BYTES[self.dtype_for_layer(layer, n_layers)]

    def mean_elem_bytes(self, n_layers: int) -> float:
        """Average in-store bytes per KV element across the layer map."""
        return sum(
            self.elem_bytes_for_layer(i, n_layers) for i in range(n_layers)
        ) / n_layers

    def kv_bytes_per_token_per_layer(self, n_kv_heads: int, head_dim: int, n_layers: int) -> float:
        """Mean stored K+V bytes per token per layer under this policy."""
        return 2.0 * n_kv_heads * head_dim * self.mean_elem_bytes(n_layers)

    def rows_nbytes(self, layers: Sequence["LayerKV"] | Iterable["LayerKV"]) -> int:
        """Stored bytes of one per-layer row set (element widths only).

        *layers* holds one :class:`LayerKV` per model layer (possibly a
        token-sliced view, as in a radix-trie node's rows).  Element-width
        accounting is exactly token-proportional, so a trie edge split
        conserves bytes and eviction pressure tracks resident tokens.
        """
        layers = list(layers)
        n_layers = len(layers)
        return sum(
            layer.nbytes(self.elem_bytes_for_layer(i, n_layers))
            for i, layer in enumerate(layers)
        )

    def cache_nbytes(self, cache: "KVCache") -> int:
        """Stored bytes of a whole cache (element widths only)."""
        return self.rows_nbytes(cache.layers)

    def layer_payload_nbytes(
        self, layer: int, n_layers: int, n_tokens: int, n_kv_heads: int, head_dim: int
    ) -> int:
        """Serialized payload bytes of *layer* (incl. int8 scale overhead)."""
        return layer_payload_nbytes(
            self.dtype_for_layer(layer, n_layers), n_tokens, n_kv_heads, head_dim
        )

    def cache_payload_nbytes(self, cache: "KVCache") -> int:
        """Serialized payload bytes of all of *cache*'s layers."""
        n_layers = cache.n_layers
        return sum(
            self.layer_payload_nbytes(
                i, n_layers, layer.keys.shape[0], layer.keys.shape[1], layer.keys.shape[2]
            )
            for i, layer in enumerate(cache.layers)
        )

    # ------------------------------------------------------------------
    # Quantisation
    # ------------------------------------------------------------------
    def quantize(self, cache: "KVCache") -> "KVCache":
        """Round-trip *cache* through this policy's per-layer store dtypes.

        Returns exactly what serializing at this policy and loading back
        would produce; the ``float16`` preset reduces bitwise to the legacy
        ``quantize_kv_to_store_dtype(cache, "float16")`` behaviour.
        """
        from repro.kvstore.serialization import quantize_kv_to_store_dtype

        return quantize_kv_to_store_dtype(cache, self)
