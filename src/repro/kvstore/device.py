"""Storage device models.

Each device is characterised by read/write bandwidth, a fixed per-access
latency, a capacity and a monthly storage cost.  The loading controller uses
read bandwidth to estimate per-layer KV loading delay and the storage cost to
pick the cheapest device whose loading can still hide the selective recompute
(paper §5.1, Figure 10b).

The preset numbers follow the paper's testbed where given (NVMe SSD measured
at 4.8 GB/s, a "slower disk" at 4 Gbps ~ 0.5 GB/s) and typical public cloud
figures otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass

_GB = 1024.0 ** 3


@dataclass(frozen=True)
class StorageDevice:
    """A storage device KV caches can be kept on.

    Attributes
    ----------
    name:
        Identifier used in experiment output.
    read_bandwidth / write_bandwidth:
        Sustained throughput in bytes per second.
    access_latency:
        Fixed per-request latency in seconds (seek / RPC overhead).
    capacity_bytes:
        Usable capacity for KV caches.
    cost_per_gb_month:
        Dollar cost of keeping one GB stored for a month (used by the
        controller's storage cost estimator).
    """

    name: str
    read_bandwidth: float
    write_bandwidth: float
    access_latency: float
    capacity_bytes: int
    cost_per_gb_month: float

    def __post_init__(self) -> None:
        if self.read_bandwidth <= 0 or self.write_bandwidth <= 0:
            raise ValueError("bandwidths must be positive")
        if self.capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        if self.access_latency < 0 or self.cost_per_gb_month < 0:
            raise ValueError("latency and cost must be non-negative")

    def read_time(self, nbytes: int) -> float:
        """Seconds to read *nbytes* from this device."""
        return self.access_latency + nbytes / self.read_bandwidth

    def write_time(self, nbytes: int) -> float:
        """Seconds to write *nbytes* to this device."""
        return self.access_latency + nbytes / self.write_bandwidth

    def read_excess_over(self, faster: "StorageDevice", nbytes: int) -> float:
        """Extra seconds reading *nbytes* here costs versus *faster*.

        A tiered store prices hits served from a slow tier as the fast
        tier's delay (already part of the pipelined load span) plus this
        excess; clamped at zero so a mis-ordered pair never credits time.
        """
        return max(0.0, self.read_time(nbytes) - faster.read_time(nbytes))

    def monthly_cost(self, nbytes: int) -> float:
        """Dollar cost of storing *nbytes* for one month."""
        return (nbytes / _GB) * self.cost_per_gb_month

    def storage_cost(self, nbytes: int, duration_months: float = 1.0) -> float:
        """Dollar cost of storing *nbytes* for *duration_months*."""
        return self.monthly_cost(nbytes) * duration_months


#: Device presets.  Bandwidths in bytes/s, capacities in bytes.
DEVICE_PRESETS: dict[str, StorageDevice] = {
    "gpu_hbm": StorageDevice(
        name="gpu_hbm",
        read_bandwidth=1200.0 * _GB,
        write_bandwidth=1200.0 * _GB,
        access_latency=1e-6,
        capacity_bytes=int(40 * _GB),
        cost_per_gb_month=20.0,
    ),
    "cpu_ram": StorageDevice(
        name="cpu_ram",
        read_bandwidth=24.0 * _GB,
        write_bandwidth=24.0 * _GB,
        access_latency=5e-6,
        capacity_bytes=int(128 * _GB),
        cost_per_gb_month=3.0,
    ),
    "nvme_ssd": StorageDevice(
        name="nvme_ssd",
        read_bandwidth=4.8 * _GB,
        write_bandwidth=3.0 * _GB,
        access_latency=1e-4,
        capacity_bytes=int(1024 * _GB),
        cost_per_gb_month=0.10,
    ),
    "sata_ssd": StorageDevice(
        name="sata_ssd",
        read_bandwidth=1.0 * _GB,
        write_bandwidth=0.8 * _GB,
        access_latency=2e-4,
        capacity_bytes=int(2048 * _GB),
        cost_per_gb_month=0.05,
    ),
    "slow_disk": StorageDevice(
        name="slow_disk",
        read_bandwidth=0.5 * _GB,
        write_bandwidth=0.4 * _GB,
        access_latency=5e-3,
        capacity_bytes=int(8192 * _GB),
        cost_per_gb_month=0.03,
    ),
    "object_store": StorageDevice(
        name="object_store",
        read_bandwidth=0.125 * _GB,
        write_bandwidth=0.125 * _GB,
        access_latency=5e-2,
        capacity_bytes=int(100_000 * _GB),
        cost_per_gb_month=0.02,
    ),
}


def get_device(name: str) -> StorageDevice:
    """Return a device preset by name with a helpful error on typos."""
    try:
        return DEVICE_PRESETS[name]
    except KeyError:
        known = ", ".join(sorted(DEVICE_PRESETS))
        raise KeyError(f"unknown storage device {name!r}; known devices: {known}") from None
