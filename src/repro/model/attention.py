"""Grouped-query causal attention, with a selective-token recompute path.

Three entry points are provided:

* :func:`full_attention` — the standard causal attention over all tokens,
  used by full prefill and chunk prefill.
* :func:`selective_attention` — attention where only a *subset* of tokens act
  as queries (the tokens being recomputed) while the keys/values of all other
  tokens come from a reused KV cache.  This is the layer primitive behind
  CacheBlend's selective KV recompute (paper §4.2, Figure 5b).
* :func:`batched_decode_attention` — one decode query per request, batched
  across N requests whose caches may have different lengths (padded keys plus
  a length mask).  This is the layer primitive behind
  :meth:`~repro.model.transformer.TransformerModel.decode_batch`.

The two prefill entry points return the attention weights of a trailing
"query window" (the last few tokens of the input, i.e. the user question in a
RAG prompt) so the caller can compute the paper's *forward attention matrix*
and its deviation; the decode entry point returns the bare per-request
context (no window — decode queries are single tokens).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.model.layers import softmax


@dataclass
class AttentionOutput:
    """Result of one attention call.

    Attributes
    ----------
    context:
        Per-query attention output of shape ``(n_queries, n_heads, head_dim)``.
    forward_attention:
        Head-averaged attention weights of the tokens inside the query window,
        shape ``(n_window, n_keys)``; ``None`` when no window was requested.
    """

    context: np.ndarray
    forward_attention: np.ndarray | None


def _attend(
    queries: np.ndarray,
    keys: np.ndarray,
    values: np.ndarray,
    query_positions: np.ndarray,
    key_positions: np.ndarray,
    window_rows: np.ndarray | None,
) -> AttentionOutput:
    """Shared core: causal softmax attention with optional window extraction.

    GQA is handled by viewing the query heads as ``(n_kv_heads, group)`` and
    broadcasting the keys/values across the group axis, so the KV tensors are
    never materialised ``group`` times.  Scores and the causal mask are only
    allocated for the actual query rows — ``(n_queries, n_keys)`` — never the
    full ``n_keys × n_keys``.
    """
    n_queries, n_heads, head_dim = queries.shape
    n_kv_heads = keys.shape[1]
    group = n_heads // n_kv_heads

    q_grouped = queries.reshape(n_queries, n_kv_heads, group, head_dim)
    # scores[h, g, q, k] with h the KV head and g the query head within its group
    scores = np.einsum("qhgd,khd->hgqk", q_grouped, keys)
    scores *= scores.dtype.type(1.0 / np.sqrt(head_dim))
    mask = key_positions[None, :] > query_positions[:, None]  # (n_queries, n_keys)
    np.copyto(scores, scores.dtype.type(-1e30), where=mask[None, None, :, :])
    weights = softmax(scores, axis=-1)

    context = np.einsum("hgqk,khd->qhgd", weights, values)
    context = context.reshape(n_queries, n_heads, head_dim)

    forward_attention = None
    if window_rows is not None and window_rows.size:
        forward_attention = weights[:, :, window_rows, :].mean(axis=(0, 1))
    return AttentionOutput(context=context, forward_attention=forward_attention)


def full_attention(
    queries: np.ndarray,
    keys: np.ndarray,
    values: np.ndarray,
    positions: np.ndarray,
    query_window: int = 0,
) -> AttentionOutput:
    """Causal attention where every token is a query.

    Parameters
    ----------
    queries / keys / values:
        Shapes ``(T, n_heads, d)`` and ``(T, n_kv_heads, d)``.
    positions:
        Absolute positions of the T tokens (must be non-decreasing).
    query_window:
        If positive, also return the head-averaged attention rows of the last
        ``query_window`` tokens (the forward attention matrix).
    """
    positions = np.asarray(positions)
    n_tokens = queries.shape[0]
    window_rows = None
    if query_window > 0:
        start = max(0, n_tokens - query_window)
        window_rows = np.arange(start, n_tokens)
    return _attend(queries, keys, values, positions, positions, window_rows)


def selective_attention(
    queries_selected: np.ndarray,
    keys_all: np.ndarray,
    values_all: np.ndarray,
    selected_indices: np.ndarray,
    positions: np.ndarray,
    query_window: int = 0,
) -> AttentionOutput:
    """Causal attention where only *selected_indices* act as queries.

    The keys/values cover all tokens (reused cache entries merged with freshly
    recomputed ones); only the selected tokens' outputs are produced, which is
    what makes the recompute cost proportional to the number of selected
    tokens (paper §4.2).
    """
    positions = np.asarray(positions)
    selected_indices = np.asarray(selected_indices, dtype=np.int64)
    if queries_selected.shape[0] != selected_indices.size:
        raise ValueError(
            f"{queries_selected.shape[0]} query rows but "
            f"{selected_indices.size} selected indices"
        )
    n_tokens = keys_all.shape[0]
    window_rows = None
    if query_window > 0:
        window_start = max(0, n_tokens - query_window)
        # Rows of the selected set that fall inside the trailing window.
        window_rows = np.nonzero(selected_indices >= window_start)[0]
    return _attend(
        queries_selected,
        keys_all,
        values_all,
        positions[selected_indices],
        positions,
        window_rows,
    )


def batched_decode_attention(
    queries: np.ndarray,
    keys: np.ndarray,
    values: np.ndarray,
    lengths: np.ndarray,
) -> np.ndarray:
    """One-query-per-request attention over N padded per-request caches.

    During decode the query token is *temporally* after every cached token,
    so the only causal rule is cache membership: each request attends to all
    of its ``lengths`` live rows, and only padding is masked.  Positions
    play no masking role here (they parameterise RoPE on the way in) — in
    particular, context whose embedding positions exceed the query's (legal
    after non-contiguous chunk layouts) is still attended, exactly as a
    position-sorted cache would be.

    Parameters
    ----------
    queries:
        The decode tokens' rotary-embedded queries, shape
        ``(n_requests, n_heads, head_dim)`` — one query row per request.
    keys / values:
        Per-request caches padded to a shared length, shape
        ``(n_requests, max_tokens, n_kv_heads, head_dim)``.  Rows at or past
        a request's ``lengths`` entry are padding and are masked out.
    lengths:
        Live token count of each request's cache, shape ``(n_requests,)``.

    Returns the per-request context, shape ``(n_requests, n_heads, head_dim)``.
    """
    n_requests, n_heads, head_dim = queries.shape
    n_kv_heads = keys.shape[2]
    group = n_heads // n_kv_heads

    q_grouped = queries.reshape(n_requests, n_kv_heads, group, head_dim)
    scores = np.einsum("nhgd,nthd->nhgt", q_grouped, keys)
    scores *= scores.dtype.type(1.0 / np.sqrt(head_dim))
    token_index = np.arange(keys.shape[1])
    padding = token_index[None, :] >= np.asarray(lengths)[:, None]
    if padding.any():
        np.copyto(scores, scores.dtype.type(-1e30), where=padding[:, None, None, :])
    weights = softmax(scores, axis=-1)
    context = np.einsum("nhgt,nthd->nhgd", weights, values)
    return context.reshape(n_requests, n_heads, head_dim)
