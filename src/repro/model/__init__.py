"""Transformer model substrate.

A from-scratch NumPy decoder-only transformer (RMSNorm, grouped-query
attention, rotary positional embeddings, SwiGLU MLP) exposing the three code
paths CacheBlend needs:

* **full prefill** — compute the KV cache of an entire input (the ``full KV
  recompute`` reference of the paper);
* **chunk prefill** — compute the KV cache of a single chunk in isolation
  (what gets precomputed and stored);
* **selective prefill** — recompute only a chosen subset of tokens per layer
  while reusing cached K/V entries for the rest (the CacheBlend fusor path).

The model also reports forward-attention matrices so KV deviation and
attention deviation (paper §4.1) can be measured directly.
"""

from repro.model.config import ModelConfig, MODEL_PRESETS
from repro.model.tensors import LayerKV, KVCache
from repro.model.transformer import TransformerModel, PrefillResult

__all__ = [
    "ModelConfig",
    "MODEL_PRESETS",
    "LayerKV",
    "KVCache",
    "TransformerModel",
    "PrefillResult",
]
