"""Transformer building blocks: RMSNorm, SwiGLU MLP and weight containers."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.model.config import ModelConfig


def rms_norm(x: np.ndarray, weight: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Root-mean-square layer normalisation (as in Llama/Mistral).

    Computes in the dtype of *x* (the model's compute dtype) rather than
    up-casting to float64.
    """
    x = np.asarray(x)
    scale = np.sqrt(np.mean(x * x, axis=-1, keepdims=True) + eps)
    return x / scale * weight


def silu(x: np.ndarray) -> np.ndarray:
    """SiLU (swish) activation, computed in a numerically stable way."""
    return x / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))


def swiglu(x: np.ndarray, w_gate: np.ndarray, w_up: np.ndarray, w_down: np.ndarray) -> np.ndarray:
    """SwiGLU feed-forward block ``down(silu(gate(x)) * up(x))``."""
    return (silu(x @ w_gate) * (x @ w_up)) @ w_down


def softmax(scores: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    shifted = scores - np.max(scores, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)


@dataclass
class LayerWeights:
    """Weights of one transformer block."""

    wq: np.ndarray
    wk: np.ndarray
    wv: np.ndarray
    wo: np.ndarray
    w_gate: np.ndarray
    w_up: np.ndarray
    w_down: np.ndarray
    norm_attn: np.ndarray
    norm_mlp: np.ndarray


@dataclass
class ModelWeights:
    """All weights of the model, deterministically generated from a seed."""

    embedding: np.ndarray
    layers: list[LayerWeights]
    norm_final: np.ndarray
    lm_head: np.ndarray


def init_weights(config: ModelConfig, seed: int = 0) -> ModelWeights:
    """Deterministically initialise model weights.

    Weights are drawn from a normal distribution scaled so that attention
    logits have enough variance to produce the sparse, structured attention
    patterns the CacheBlend analysis relies on (paper §4.3), while keeping
    activations numerically stable over many layers.
    """
    rng = np.random.default_rng(seed)
    d = config.hidden_size
    kv_dim = config.n_kv_heads * config.head_dim
    dtype = config.np_dtype

    def matrix(rows: int, cols: int, scale: float) -> np.ndarray:
        return rng.normal(0.0, scale, size=(rows, cols)).astype(dtype)

    attn_scale = 1.2 / np.sqrt(d)
    mlp_scale = 1.0 / np.sqrt(d)
    layers = []
    for _ in range(config.n_layers):
        layers.append(
            LayerWeights(
                wq=matrix(d, d, attn_scale),
                wk=matrix(d, kv_dim, attn_scale),
                wv=matrix(d, kv_dim, attn_scale),
                wo=matrix(d, d, attn_scale),
                w_gate=matrix(d, config.ffn_size, mlp_scale),
                w_up=matrix(d, config.ffn_size, mlp_scale),
                w_down=matrix(config.ffn_size, d, 1.0 / np.sqrt(config.ffn_size)),
                norm_attn=np.ones(d, dtype=dtype),
                norm_mlp=np.ones(d, dtype=dtype),
            )
        )
    embedding = rng.normal(0.0, 1.0, size=(config.vocab_size, d)).astype(dtype)
    lm_head = rng.normal(0.0, 1.0 / np.sqrt(d), size=(d, config.vocab_size)).astype(dtype)
    return ModelWeights(
        embedding=embedding,
        layers=layers,
        norm_final=np.ones(d, dtype=dtype),
        lm_head=lm_head,
    )
