"""Decoder-only transformer with full, chunked and selective prefill paths.

The model is deliberately small (it runs on CPU with NumPy) but structurally
faithful: RMSNorm pre-normalisation, grouped-query attention with rotary
positional embeddings, SwiGLU MLP, residual connections and a tied LM head.
It exposes the exact primitives the paper's implementation adds to vLLM
(§6): per-layer prefill with an optional subset of recomputed tokens, and
access to the forward attention matrix of each layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.model.attention import full_attention, selective_attention
from repro.model.config import ModelConfig
from repro.model.layers import ModelWeights, init_weights, rms_norm, swiglu
from repro.model.rope import apply_rope
from repro.model.tensors import KVCache, LayerKV


@dataclass
class LayerFullOutput:
    """Output of a full (all-token) pass through one layer."""

    hidden: np.ndarray
    layer_kv: LayerKV
    forward_attention: np.ndarray | None


@dataclass
class LayerSelectiveOutput:
    """Output of a selective (subset-of-tokens) pass through one layer."""

    hidden_selected: np.ndarray
    merged_kv: LayerKV
    new_keys: np.ndarray
    new_values: np.ndarray
    forward_attention: np.ndarray | None


@dataclass
class PrefillResult:
    """Result of a prefill pass.

    Attributes
    ----------
    kv_cache:
        The KV cache produced for the input tokens.
    final_hidden:
        Final-layer hidden states of the whole input, shape ``(T, d)``.
    last_logits:
        LM-head logits of the last input token (used to start decoding).
    forward_attention:
        Per-layer forward attention matrices of the trailing query window
        (each of shape ``(n_window, T)``); empty if no window was requested.
    layer_inputs:
        Per-layer hidden-state inputs, kept only when ``collect_hidden=True``.
    """

    kv_cache: KVCache
    final_hidden: np.ndarray
    last_logits: np.ndarray
    forward_attention: list[np.ndarray] = field(default_factory=list)
    layer_inputs: list[np.ndarray] = field(default_factory=list)


class TransformerModel:
    """A runnable NumPy transformer.

    Parameters
    ----------
    config:
        Architecture configuration.  ``config.runnable`` must be True — the
        large paper presets exist only for the analytical cost model.
    seed:
        Seed for the deterministic weight initialisation.
    """

    def __init__(self, config: ModelConfig, seed: int = 0) -> None:
        if not config.runnable:
            raise ValueError(
                f"model preset {config.name!r} is an architecture preset for the "
                "cost model; instantiate a runnable proxy preset instead"
            )
        self.config = config
        self.seed = seed
        self.weights: ModelWeights = init_weights(config, seed)

    # ------------------------------------------------------------------
    # Embedding and heads
    # ------------------------------------------------------------------
    def embed(self, token_ids: np.ndarray) -> np.ndarray:
        """Look up input embeddings, shape ``(T, hidden_size)``."""
        token_ids = np.asarray(token_ids, dtype=np.int64)
        if token_ids.size and token_ids.max() >= self.config.vocab_size:
            raise ValueError(
                f"token id {int(token_ids.max())} out of range for vocab size "
                f"{self.config.vocab_size}"
            )
        return self.weights.embedding[token_ids]

    def logits(self, hidden_row: np.ndarray) -> np.ndarray:
        """LM-head logits for a single final hidden state."""
        normalised = rms_norm(hidden_row, self.weights.norm_final)
        return normalised @ self.weights.lm_head

    # ------------------------------------------------------------------
    # Layer primitives
    # ------------------------------------------------------------------
    def _project_qkv(
        self, layer_idx: int, hidden: np.ndarray, positions: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Project hidden states into rotary-embedded Q, K and raw V."""
        cfg = self.config
        w = self.weights.layers[layer_idx]
        normed = rms_norm(hidden, w.norm_attn)
        q = (normed @ w.wq).reshape(-1, cfg.n_heads, cfg.head_dim)
        k = (normed @ w.wk).reshape(-1, cfg.n_kv_heads, cfg.head_dim)
        v = (normed @ w.wv).reshape(-1, cfg.n_kv_heads, cfg.head_dim)
        q = apply_rope(q, positions, cfg.rope_theta)
        k = apply_rope(k, positions, cfg.rope_theta)
        return normed, q, k, v

    def _finish_layer(
        self, layer_idx: int, hidden: np.ndarray, context: np.ndarray
    ) -> np.ndarray:
        """Apply output projection, residuals and the MLP block."""
        cfg = self.config
        w = self.weights.layers[layer_idx]
        attn_out = context.reshape(-1, cfg.n_heads * cfg.head_dim) @ w.wo
        hidden = hidden + attn_out
        mlp_out = swiglu(rms_norm(hidden, w.norm_mlp), w.w_gate, w.w_up, w.w_down)
        return hidden + mlp_out

    def layer_full(
        self,
        layer_idx: int,
        hidden: np.ndarray,
        positions: np.ndarray,
        query_window: int = 0,
    ) -> LayerFullOutput:
        """Run one layer over all tokens (full prefill path)."""
        _, q, k, v = self._project_qkv(layer_idx, hidden, positions)
        attn = full_attention(q, k, v, positions, query_window=query_window)
        new_hidden = self._finish_layer(layer_idx, hidden, attn.context)
        return LayerFullOutput(
            hidden=new_hidden,
            layer_kv=LayerKV(k, v),
            forward_attention=attn.forward_attention,
        )

    def layer_selective(
        self,
        layer_idx: int,
        hidden_selected: np.ndarray,
        selected_indices: np.ndarray,
        positions: np.ndarray,
        reused_kv: LayerKV,
        query_window: int = 0,
        in_place: bool = False,
    ) -> LayerSelectiveOutput:
        """Run one layer recomputing only *selected_indices* (CacheBlend path).

        ``hidden_selected`` holds the hidden states of the selected tokens
        only.  The keys/values of all other tokens are taken from
        ``reused_kv`` (the loaded, positionally re-aligned chunk caches).

        With ``in_place=True`` the freshly computed K/V rows are scattered
        directly into ``reused_kv``'s buffers instead of copying the full
        layer first — the caller must own those buffers and must read any
        reused rows it still needs (e.g. for deviation) *before* the call.
        """
        selected_indices = np.asarray(selected_indices, dtype=np.int64)
        if reused_kv.n_tokens != len(positions):
            raise ValueError(
                f"reused KV has {reused_kv.n_tokens} tokens but positions has "
                f"{len(positions)}"
            )
        sel_positions = positions[selected_indices]
        _, q_sel, k_sel, v_sel = self._project_qkv(
            layer_idx, hidden_selected, sel_positions
        )
        if in_place:
            merged_keys = reused_kv.keys
            merged_values = reused_kv.values
        else:
            merged_keys = reused_kv.keys.copy()
            merged_values = reused_kv.values.copy()
        merged_keys[selected_indices] = k_sel
        merged_values[selected_indices] = v_sel
        attn = selective_attention(
            q_sel,
            merged_keys,
            merged_values,
            selected_indices,
            positions,
            query_window=query_window,
        )
        new_hidden_selected = self._finish_layer(layer_idx, hidden_selected, attn.context)
        merged_kv = reused_kv if in_place else LayerKV(merged_keys, merged_values)
        return LayerSelectiveOutput(
            hidden_selected=new_hidden_selected,
            merged_kv=merged_kv,
            new_keys=k_sel,
            new_values=v_sel,
            forward_attention=attn.forward_attention,
        )

    # ------------------------------------------------------------------
    # Prefill paths
    # ------------------------------------------------------------------
    def full_prefill(
        self,
        token_ids: np.ndarray,
        positions: np.ndarray | None = None,
        query_window: int = 0,
        collect_hidden: bool = False,
    ) -> PrefillResult:
        """Full KV recompute: prefill the whole input from scratch."""
        token_ids = np.asarray(token_ids, dtype=np.int64)
        if token_ids.size == 0:
            raise ValueError("cannot prefill an empty token sequence")
        if positions is None:
            positions = np.arange(token_ids.size, dtype=np.int64)
        else:
            positions = np.asarray(positions, dtype=np.int64)
        hidden = self.embed(token_ids)
        layers: list[LayerKV] = []
        forward_attention: list[np.ndarray] = []
        layer_inputs: list[np.ndarray] = []
        for layer_idx in range(self.config.n_layers):
            if collect_hidden:
                layer_inputs.append(hidden.copy())
            out = self.layer_full(layer_idx, hidden, positions, query_window)
            hidden = out.hidden
            layers.append(out.layer_kv)
            if out.forward_attention is not None:
                forward_attention.append(out.forward_attention)
        kv_cache = KVCache(layers, token_ids, positions)
        last_logits = self.logits(hidden[-1])
        return PrefillResult(
            kv_cache=kv_cache,
            final_hidden=hidden,
            last_logits=last_logits,
            forward_attention=forward_attention,
            layer_inputs=layer_inputs,
        )

    def chunk_prefill(self, token_ids: np.ndarray, start_position: int = 0) -> KVCache:
        """Prefill one chunk in isolation (what gets precomputed and stored).

        ``start_position`` plays the role of PromptCache's dummy-prefix offset:
        the chunk is embedded as if it started at that absolute position.
        """
        token_ids = np.asarray(token_ids, dtype=np.int64)
        positions = np.arange(start_position, start_position + token_ids.size, dtype=np.int64)
        result = self.full_prefill(token_ids, positions=positions)
        return result.kv_cache

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------
    def decode_step(self, kv_cache: KVCache, token_id: int) -> tuple[np.ndarray, KVCache]:
        """Append one token to *kv_cache* and return its LM-head logits.

        The cache is extended in place (a new :class:`KVCache` object sharing
        grown arrays is returned for convenience).
        """
        position = int(kv_cache.positions.max()) + 1 if kv_cache.n_tokens else 0
        positions_all = np.append(kv_cache.positions, position)
        hidden = self.embed(np.asarray([token_id], dtype=np.int64))
        new_layers: list[LayerKV] = []
        for layer_idx in range(self.config.n_layers):
            reused = kv_cache.layers[layer_idx]
            _, q, k, v = self._project_qkv(
                layer_idx, hidden, np.asarray([position], dtype=np.int64)
            )
            keys_all = np.concatenate([reused.keys, k], axis=0)
            values_all = np.concatenate([reused.values, v], axis=0)
            attn = selective_attention(
                q,
                keys_all,
                values_all,
                np.asarray([keys_all.shape[0] - 1]),
                positions_all,
            )
            hidden = self._finish_layer(layer_idx, hidden, attn.context)
            new_layers.append(LayerKV(keys_all, values_all))
        logits = self.logits(hidden[-1])
        updated = KVCache(
            new_layers,
            np.append(kv_cache.token_ids, token_id),
            positions_all,
        )
        return logits, updated

    def generate(
        self,
        kv_cache: KVCache,
        start_logits: np.ndarray,
        max_new_tokens: int = 16,
        eos_id: int | None = None,
    ) -> list[int]:
        """Greedy decode *max_new_tokens* tokens starting from *start_logits*."""
        generated: list[int] = []
        cache = kv_cache
        logits = start_logits
        for _ in range(max_new_tokens):
            next_id = int(np.argmax(logits))
            generated.append(next_id)
            if eos_id is not None and next_id == eos_id:
                break
            logits, cache = self.decode_step(cache, next_id)
        return generated
