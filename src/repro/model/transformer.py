"""Decoder-only transformer with full, chunked and selective prefill paths.

The model is deliberately small (it runs on CPU with NumPy) but structurally
faithful: RMSNorm pre-normalisation, grouped-query attention with rotary
positional embeddings, SwiGLU MLP, residual connections and a tied LM head.
It exposes the exact primitives the paper's implementation adds to vLLM
(§6): per-layer prefill with an optional subset of recomputed tokens, and
access to the forward attention matrix of each layer.  Decoding runs on
preallocated :class:`~repro.model.tensors.GrowableKVCache` buffers —
:meth:`TransformerModel.decode_batch` steps N requests per call with padded
batched attention, and :meth:`TransformerModel.decode_step` is its
batch-of-one special case.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.model.attention import (
    batched_decode_attention,
    full_attention,
    selective_attention,
)
from repro.model.config import ModelConfig
from repro.model.layers import ModelWeights, init_weights, rms_norm, swiglu
from repro.model.rope import apply_rope
from repro.model.tensors import DecodeSession, GrowableKVCache, KVCache, LayerKV


@dataclass
class LayerFullOutput:
    """Output of a full (all-token) pass through one layer."""

    hidden: np.ndarray
    layer_kv: LayerKV
    forward_attention: np.ndarray | None


@dataclass
class LayerSelectiveOutput:
    """Output of a selective (subset-of-tokens) pass through one layer."""

    hidden_selected: np.ndarray
    merged_kv: LayerKV
    new_keys: np.ndarray
    new_values: np.ndarray
    forward_attention: np.ndarray | None


@dataclass
class PrefillResult:
    """Result of a prefill pass.

    Attributes
    ----------
    kv_cache:
        The KV cache produced for the input tokens.
    final_hidden:
        Final-layer hidden states of the whole input, shape ``(T, d)``.
    last_logits:
        LM-head logits of the last input token (used to start decoding).
    forward_attention:
        Per-layer forward attention matrices of the trailing query window
        (each of shape ``(n_window, T)``); empty if no window was requested.
    layer_inputs:
        Per-layer hidden-state inputs, kept only when ``collect_hidden=True``.
    """

    kv_cache: KVCache
    final_hidden: np.ndarray
    last_logits: np.ndarray
    forward_attention: list[np.ndarray] = field(default_factory=list)
    layer_inputs: list[np.ndarray] = field(default_factory=list)


class TransformerModel:
    """A runnable NumPy transformer.

    Parameters
    ----------
    config:
        Architecture configuration.  ``config.runnable`` must be True — the
        large paper presets exist only for the analytical cost model.
    seed:
        Seed for the deterministic weight initialisation.
    """

    def __init__(self, config: ModelConfig, seed: int = 0) -> None:
        if not config.runnable:
            raise ValueError(
                f"model preset {config.name!r} is an architecture preset for the "
                "cost model; instantiate a runnable proxy preset instead"
            )
        self.config = config
        self.seed = seed
        self.weights: ModelWeights = init_weights(config, seed)

    # ------------------------------------------------------------------
    # Embedding and heads
    # ------------------------------------------------------------------
    def embed(self, token_ids: np.ndarray) -> np.ndarray:
        """Look up input embeddings, shape ``(T, hidden_size)``."""
        token_ids = np.asarray(token_ids, dtype=np.int64)
        if token_ids.size and token_ids.max() >= self.config.vocab_size:
            raise ValueError(
                f"token id {int(token_ids.max())} out of range for vocab size "
                f"{self.config.vocab_size}"
            )
        return self.weights.embedding[token_ids]

    def logits(self, hidden_row: np.ndarray) -> np.ndarray:
        """LM-head logits for a single final hidden state."""
        normalised = rms_norm(hidden_row, self.weights.norm_final)
        return normalised @ self.weights.lm_head

    # ------------------------------------------------------------------
    # Layer primitives
    # ------------------------------------------------------------------
    def _project_qkv(
        self, layer_idx: int, hidden: np.ndarray, positions: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Project hidden states into rotary-embedded Q, K and raw V."""
        cfg = self.config
        w = self.weights.layers[layer_idx]
        normed = rms_norm(hidden, w.norm_attn)
        q = (normed @ w.wq).reshape(-1, cfg.n_heads, cfg.head_dim)
        k = (normed @ w.wk).reshape(-1, cfg.n_kv_heads, cfg.head_dim)
        v = (normed @ w.wv).reshape(-1, cfg.n_kv_heads, cfg.head_dim)
        q = apply_rope(q, positions, cfg.rope_theta)
        k = apply_rope(k, positions, cfg.rope_theta)
        return normed, q, k, v

    def _finish_layer(
        self, layer_idx: int, hidden: np.ndarray, context: np.ndarray
    ) -> np.ndarray:
        """Apply output projection, residuals and the MLP block."""
        cfg = self.config
        w = self.weights.layers[layer_idx]
        attn_out = context.reshape(-1, cfg.n_heads * cfg.head_dim) @ w.wo
        hidden = hidden + attn_out
        mlp_out = swiglu(rms_norm(hidden, w.norm_mlp), w.w_gate, w.w_up, w.w_down)
        return hidden + mlp_out

    def layer_full(
        self,
        layer_idx: int,
        hidden: np.ndarray,
        positions: np.ndarray,
        query_window: int = 0,
    ) -> LayerFullOutput:
        """Run one layer over all tokens (full prefill path)."""
        _, q, k, v = self._project_qkv(layer_idx, hidden, positions)
        attn = full_attention(q, k, v, positions, query_window=query_window)
        new_hidden = self._finish_layer(layer_idx, hidden, attn.context)
        return LayerFullOutput(
            hidden=new_hidden,
            layer_kv=LayerKV(k, v),
            forward_attention=attn.forward_attention,
        )

    def layer_selective(
        self,
        layer_idx: int,
        hidden_selected: np.ndarray,
        selected_indices: np.ndarray,
        positions: np.ndarray,
        reused_kv: LayerKV,
        query_window: int = 0,
        in_place: bool = False,
    ) -> LayerSelectiveOutput:
        """Run one layer recomputing only *selected_indices* (CacheBlend path).

        ``hidden_selected`` holds the hidden states of the selected tokens
        only.  The keys/values of all other tokens are taken from
        ``reused_kv`` (the loaded, positionally re-aligned chunk caches).

        With ``in_place=True`` the freshly computed K/V rows are scattered
        directly into ``reused_kv``'s buffers instead of copying the full
        layer first — the caller must own those buffers and must read any
        reused rows it still needs (e.g. for deviation) *before* the call.
        """
        selected_indices = np.asarray(selected_indices, dtype=np.int64)
        if reused_kv.n_tokens != len(positions):
            raise ValueError(
                f"reused KV has {reused_kv.n_tokens} tokens but positions has "
                f"{len(positions)}"
            )
        sel_positions = positions[selected_indices]
        _, q_sel, k_sel, v_sel = self._project_qkv(
            layer_idx, hidden_selected, sel_positions
        )
        if in_place:
            merged_keys = reused_kv.keys
            merged_values = reused_kv.values
        else:
            merged_keys = reused_kv.keys.copy()
            merged_values = reused_kv.values.copy()
        merged_keys[selected_indices] = k_sel
        merged_values[selected_indices] = v_sel
        attn = selective_attention(
            q_sel,
            merged_keys,
            merged_values,
            selected_indices,
            positions,
            query_window=query_window,
        )
        new_hidden_selected = self._finish_layer(layer_idx, hidden_selected, attn.context)
        merged_kv = reused_kv if in_place else LayerKV(merged_keys, merged_values)
        return LayerSelectiveOutput(
            hidden_selected=new_hidden_selected,
            merged_kv=merged_kv,
            new_keys=k_sel,
            new_values=v_sel,
            forward_attention=attn.forward_attention,
        )

    # ------------------------------------------------------------------
    # Prefill paths
    # ------------------------------------------------------------------
    def full_prefill(
        self,
        token_ids: np.ndarray,
        positions: np.ndarray | None = None,
        query_window: int = 0,
        collect_hidden: bool = False,
    ) -> PrefillResult:
        """Full KV recompute: prefill the whole input from scratch."""
        token_ids = np.asarray(token_ids, dtype=np.int64)
        if token_ids.size == 0:
            raise ValueError("cannot prefill an empty token sequence")
        if positions is None:
            positions = np.arange(token_ids.size, dtype=np.int64)
        else:
            positions = np.asarray(positions, dtype=np.int64)
        hidden = self.embed(token_ids)
        layers: list[LayerKV] = []
        forward_attention: list[np.ndarray] = []
        layer_inputs: list[np.ndarray] = []
        for layer_idx in range(self.config.n_layers):
            if collect_hidden:
                layer_inputs.append(hidden.copy())
            out = self.layer_full(layer_idx, hidden, positions, query_window)
            hidden = out.hidden
            layers.append(out.layer_kv)
            if out.forward_attention is not None:
                forward_attention.append(out.forward_attention)
        kv_cache = KVCache(layers, token_ids, positions)
        last_logits = self.logits(hidden[-1])
        return PrefillResult(
            kv_cache=kv_cache,
            final_hidden=hidden,
            last_logits=last_logits,
            forward_attention=forward_attention,
            layer_inputs=layer_inputs,
        )

    def chunk_prefill(self, token_ids: np.ndarray, start_position: int = 0) -> KVCache:
        """Prefill one chunk in isolation (what gets precomputed and stored).

        ``start_position`` plays the role of PromptCache's dummy-prefix offset:
        the chunk is embedded as if it started at that absolute position.
        """
        token_ids = np.asarray(token_ids, dtype=np.int64)
        positions = np.arange(start_position, start_position + token_ids.size, dtype=np.int64)
        result = self.full_prefill(token_ids, positions=positions)
        return result.kv_cache

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------
    @staticmethod
    def _as_growable(
        kv_cache: KVCache | GrowableKVCache, reserve: int = 0
    ) -> GrowableKVCache:
        if isinstance(kv_cache, GrowableKVCache):
            return kv_cache
        return GrowableKVCache.from_kv_cache(kv_cache, reserve=reserve)

    def decode_step(
        self, kv_cache: KVCache | GrowableKVCache, token_id: int
    ) -> tuple[np.ndarray, GrowableKVCache]:
        """Append one token to *kv_cache* and return its LM-head logits.

        A :class:`GrowableKVCache` is extended in place — one row write per
        layer, amortised O(1), using the cache's tracked ``next_position``
        rather than a per-token positions scan.  A legacy :class:`KVCache` is
        converted first (one O(T) copy); pass the *returned* cache to
        subsequent steps so the conversion happens once per generation, not
        per token.
        """
        cache = self._as_growable(kv_cache, reserve=1)
        logits = self.decode_batch([cache], [int(token_id)])
        return logits[0], cache

    def decode_batch(
        self,
        caches: list[GrowableKVCache],
        token_ids: list[int] | np.ndarray,
    ) -> np.ndarray:
        """One decode step for N requests, batched across the request axis.

        Every cache is extended in place with its request's token; the
        forward pass runs once per layer over the ``(n_requests, ...)``
        batch, so the per-layer Python/NumPy dispatch overhead is amortised
        across the batch instead of paid per request.  Requests may have
        different cache lengths — attention pads keys to the longest and
        masks the padding (see
        :func:`~repro.model.attention.batched_decode_attention`).

        A single request attends over zero-copy views of its cache (no
        padding at all).  With several requests, each call gathers the live
        K/V rows into one padded scratch pair per call — a copy of the same
        order as the K/V reads attention inherently performs that step, so
        it is a constant factor on the attention traffic, not a return of
        the per-token cache *reallocation* the growable buffers eliminate.
        Keeping persistent per-batch padded buffers filled incrementally
        would drop that factor too (see ROADMAP: batch-aware serving
        decode).

        Returns the LM-head logits of the appended tokens, shape
        ``(n_requests, vocab_size)``.
        """
        if not caches:
            raise ValueError("decode_batch needs at least one request")
        token_arr = np.asarray(token_ids, dtype=np.int64)
        if token_arr.shape != (len(caches),):
            raise ValueError("need exactly one token id per cache")
        for cache in caches:
            if not isinstance(cache, GrowableKVCache):
                raise TypeError(
                    "decode_batch requires GrowableKVCache instances; convert "
                    "legacy caches once via GrowableKVCache.from_kv_cache"
                )
        cfg = self.config
        n_requests = len(caches)
        # Embed first: it validates the token ids, so a bad id fails before
        # any cache has been extended (no phantom rows on error).
        hidden = self.embed(token_arr)
        positions = np.array([cache.next_position for cache in caches], dtype=np.int64)
        rows = [
            cache.append_token(int(token)) for cache, token in zip(caches, token_arr)
        ]
        lengths = np.array([cache.n_tokens for cache in caches], dtype=np.int64)
        max_tokens = int(lengths.max())

        if n_requests == 1:
            # Single request: attend over zero-copy views of the live rows.
            keys_pad = values_pad = None
        else:
            keys_pad = np.zeros(
                (n_requests, max_tokens, cfg.n_kv_heads, cfg.head_dim),
                dtype=cfg.np_dtype,
            )
            values_pad = np.zeros_like(keys_pad)

        for layer_idx in range(cfg.n_layers):
            _, q, k, v = self._project_qkv(layer_idx, hidden, positions)
            for i, cache in enumerate(caches):
                cache.write_layer(layer_idx, rows[i], k[i], v[i])
            if n_requests == 1:
                keys_all = caches[0].layer_keys(layer_idx)[None]
                values_all = caches[0].layer_values(layer_idx)[None]
            else:
                for i, cache in enumerate(caches):
                    keys_pad[i, : lengths[i]] = cache.layer_keys(layer_idx)
                    values_pad[i, : lengths[i]] = cache.layer_values(layer_idx)
                keys_all, values_all = keys_pad, values_pad
            context = batched_decode_attention(q, keys_all, values_all, lengths)
            hidden = self._finish_layer(layer_idx, hidden, context)
        normalised = rms_norm(hidden, self.weights.norm_final)
        return normalised @ self.weights.lm_head

    # ------------------------------------------------------------------
    # Decode sessions (persistent padded batch buffers across steps)
    # ------------------------------------------------------------------
    def new_decode_session(
        self, token_capacity: int = 64, slot_capacity: int = 4
    ) -> DecodeSession:
        """A :class:`~repro.model.tensors.DecodeSession` sized for this model."""
        cfg = self.config
        return DecodeSession(
            cfg.n_layers,
            cfg.n_kv_heads,
            cfg.head_dim,
            dtype=cfg.np_dtype,
            token_capacity=token_capacity,
            slot_capacity=slot_capacity,
        )

    def decode_session_step(
        self, session: DecodeSession, token_ids: list[int] | np.ndarray
    ) -> np.ndarray:
        """One decode step for every session member, on the persistent pad.

        Numerically identical to :meth:`decode_batch` over the members'
        caches (same padded/masked attention), but the per-layer K/V the
        attention reads is a zero-copy *slice of the session pad* — a
        steady-state step writes only each member's newly appended row,
        instead of re-gathering every member's full K/V into per-call
        scratch (the O(batch × T) copy ``decode_batch`` pays every token).

        ``token_ids`` is one token per member in :attr:`DecodeSession.
        member_ids` order; returns the appended tokens' LM-head logits,
        shape ``(n_members, vocab_size)``.
        """
        token_arr = np.asarray(token_ids, dtype=np.int64)
        if token_arr.shape != (session.n_members,):
            raise ValueError("need exactly one token id per session member")
        if session.n_layers != self.config.n_layers:
            raise ValueError(
                f"session has {session.n_layers} layers, model has "
                f"{self.config.n_layers}"
            )
        # Embed first: it validates the token ids, so a bad id fails before
        # any slot has been extended (no phantom rows on error).
        hidden = self.embed(token_arr)
        positions = session.claim_rows(token_arr)
        lengths = session.lengths
        for layer_idx in range(self.config.n_layers):
            _, q, k, v = self._project_qkv(layer_idx, hidden, positions)
            session.write_layer(layer_idx, k, v)
            keys_all, values_all = session.layer_kv(layer_idx)
            context = batched_decode_attention(q, keys_all, values_all, lengths)
            hidden = self._finish_layer(layer_idx, hidden, context)
        normalised = rms_norm(hidden, self.weights.norm_final)
        return normalised @ self.weights.lm_head

    def generate_session(
        self,
        session: DecodeSession,
        start_logits: list[np.ndarray],
        max_new_tokens: int = 16,
        eos_id: int | None = None,
        include_eos: bool = False,
        on_step: Callable[[float, int], None] | None = None,
    ) -> list[list[int]]:
        """Greedy lock-step decoding of every session member, one
        :meth:`decode_session_step` per iteration.

        Token-for-token identical to :meth:`generate_batch` over the same
        caches, but members *leave the session* the moment they finish (EOS
        or token budget) — their slot is freed immediately, so peak resident
        KV tracks the live batch; the session is fully drained on return.
        ``start_logits`` is aligned with the session's ``member_ids`` at
        entry, and so is the returned list of generations.  ``on_step``
        (if given) receives ``(wall_clock_seconds, batch_width)`` of every
        executed step — the serving loop feeds these to the width-aware
        decode calibration.
        """
        members = list(session.member_ids)
        if len(start_logits) != len(members):
            raise ValueError("need exactly one start_logits row per session member")
        logits = dict(zip(members, start_logits))
        generated: dict[object, list[int]] = {m: [] for m in members}
        active = set(members)
        for step in range(max_new_tokens):
            next_ids: dict[object, int] = {}
            for member in list(active):
                next_id = int(np.argmax(logits[member]))
                if eos_id is not None and next_id == eos_id:
                    if include_eos:
                        generated[member].append(next_id)
                    active.remove(member)
                    session.leave(member)
                    continue
                generated[member].append(next_id)
                if step < max_new_tokens - 1:
                    next_ids[member] = next_id
            if not next_ids or step == max_new_tokens - 1:
                break
            # All remaining members decode (leavers already left): the step
            # order is the session's current member order.
            order = list(session.member_ids)
            start = time.perf_counter()
            batch_logits = self.decode_session_step(
                session, [next_ids[m] for m in order]
            )
            if on_step is not None:
                on_step(time.perf_counter() - start, len(order))
            for row, member in enumerate(order):
                logits[member] = batch_logits[row]
        for member in list(session.member_ids):
            session.leave(member)
        return [generated[m] for m in members]

    def generate(
        self,
        kv_cache: KVCache | GrowableKVCache,
        start_logits: np.ndarray,
        max_new_tokens: int = 16,
        eos_id: int | None = None,
        include_eos: bool = False,
    ) -> list[int]:
        """Greedy decode *max_new_tokens* tokens starting from *start_logits*.

        The EOS token terminates generation and is **not** part of the return
        value (it is not generated text); pass ``include_eos=True`` for the
        legacy behaviour of emitting it, if a caller really needs the marker.
        """
        return self.generate_batch(
            [kv_cache],
            [start_logits],
            max_new_tokens=max_new_tokens,
            eos_id=eos_id,
            include_eos=include_eos,
        )[0]

    def generate_batch(
        self,
        caches: list[KVCache | GrowableKVCache],
        start_logits: list[np.ndarray],
        max_new_tokens: int = 16,
        eos_id: int | None = None,
        include_eos: bool = False,
    ) -> list[list[int]]:
        """Greedy decode N requests in lock-step via :meth:`decode_batch`.

        Requests drop out of the batch as they hit EOS; the rest keep
        decoding together.  Legacy :class:`KVCache` inputs are converted once
        with ``max_new_tokens`` rows of reserve, so no request reallocates
        mid-generation — and those internal scratch conversions are
        *released* on return (the generation is complete; the caller never
        sees them), so their preallocated buffers don't linger until GC.
        Caller-provided :class:`GrowableKVCache` inputs are left untouched.
        The final sampled token of each request is recorded but not appended
        to its cache (its KV is only needed to decode a further token).
        """
        if len(caches) != len(start_logits):
            raise ValueError("need exactly one start_logits row per cache")
        grown = [self._as_growable(c, reserve=max_new_tokens) for c in caches]
        generated: list[list[int]] = [[] for _ in grown]
        logits: list[np.ndarray] = list(start_logits)
        active = list(range(len(grown)))
        for step in range(max_new_tokens):
            decoding: list[int] = []
            next_ids: dict[int, int] = {}
            for index in active:
                next_id = int(np.argmax(logits[index]))
                if eos_id is not None and next_id == eos_id:
                    if include_eos:
                        generated[index].append(next_id)
                    continue
                generated[index].append(next_id)
                decoding.append(index)
                next_ids[index] = next_id
            if not decoding or step == max_new_tokens - 1:
                break
            batch_logits = self.decode_batch(
                [grown[i] for i in decoding], [next_ids[i] for i in decoding]
            )
            for row, index in enumerate(decoding):
                logits[index] = batch_logits[row]
            active = decoding
        for cache, scratch in zip(caches, grown):
            if scratch is not cache:
                scratch.release()
        return generated
