"""Model architecture configuration and presets.

Two kinds of configurations live here:

* *Proxy* configurations (``tiny``, ``small``) are small enough to run the
  actual NumPy forward pass; all quality/deviation experiments use them.
* *Architecture* presets for the models the paper evaluates (Mistral-7B,
  Yi-34B, Llama-70B, plus Llama-7B used in §5's example).  These are used by
  the analytical serving cost model (KV cache sizes, per-layer FLOPs) — their
  forward pass is never executed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Compute dtypes the runnable proxy models support.
COMPUTE_DTYPES = ("float32", "float64")


@dataclass(frozen=True)
class ModelConfig:
    """Architecture hyper-parameters of a decoder-only transformer.

    Attributes
    ----------
    name:
        Human-readable model name (used in experiment output rows).
    n_layers / hidden_size / n_heads / n_kv_heads / ffn_size / vocab_size:
        The usual transformer dimensions.  ``n_kv_heads < n_heads`` enables
        grouped-query attention, as in Mistral and Llama-2/3 70B.
    rope_theta:
        Base of the rotary positional embedding.
    dtype_bytes:
        Bytes per stored KV element (2 for fp16, 1 for int8 quantised KV).
    compute_dtype:
        NumPy dtype the runnable forward pass computes in (``"float32"`` by
        default; ``"float64"`` is available for numerical reference runs).
        Stored KV stays fp16 on disk regardless — this only governs the
        in-memory compute path.
    max_position:
        Maximum sequence length supported.
    runnable:
        Whether the NumPy forward pass is intended to be executed for this
        configuration (False for the large architecture presets).
    """

    name: str = "tiny"
    n_layers: int = 4
    hidden_size: int = 64
    n_heads: int = 4
    n_kv_heads: int = 4
    ffn_size: int = 128
    vocab_size: int = 2048
    rope_theta: float = 10_000.0
    dtype_bytes: int = 2
    compute_dtype: str = "float32"
    max_position: int = 8192
    runnable: bool = True

    def __post_init__(self) -> None:
        if self.hidden_size % self.n_heads != 0:
            raise ValueError(
                f"hidden_size {self.hidden_size} must be divisible by "
                f"n_heads {self.n_heads}"
            )
        if self.n_heads % self.n_kv_heads != 0:
            raise ValueError(
                f"n_heads {self.n_heads} must be divisible by "
                f"n_kv_heads {self.n_kv_heads}"
            )
        if self.head_dim % 2 != 0:
            raise ValueError("head_dim must be even for rotary embeddings")
        if self.compute_dtype not in COMPUTE_DTYPES:
            raise ValueError(
                f"compute_dtype must be one of {COMPUTE_DTYPES}, "
                f"got {self.compute_dtype!r}"
            )

    @property
    def np_dtype(self) -> np.dtype:
        """The NumPy dtype of the runnable compute path."""
        return np.dtype(self.compute_dtype)

    @property
    def head_dim(self) -> int:
        return self.hidden_size // self.n_heads

    @property
    def gqa_group_size(self) -> int:
        """Number of query heads sharing one KV head."""
        return self.n_heads // self.n_kv_heads

    def kv_bytes_per_token_per_layer(self) -> int:
        """Bytes of K plus V stored for one token on one layer."""
        return 2 * self.n_kv_heads * self.head_dim * self.dtype_bytes

    def kv_bytes_per_token(self) -> int:
        """Bytes of KV cache stored per token across all layers."""
        return self.n_layers * self.kv_bytes_per_token_per_layer()

    def kv_bytes(self, n_tokens: int) -> int:
        """Total KV cache bytes for a context of *n_tokens*."""
        return n_tokens * self.kv_bytes_per_token()

    def approx_parameters(self) -> int:
        """Rough parameter count, used only for cost-model scaling."""
        d = self.hidden_size
        per_layer = (
            d * d  # Wq
            + 2 * d * self.n_kv_heads * self.head_dim  # Wk, Wv
            + d * d  # Wo
            + 3 * d * self.ffn_size  # SwiGLU gate/up/down
        )
        return self.n_layers * per_layer + self.vocab_size * d

    def prefill_flops(self, n_tokens: int) -> float:
        """Approximate prefill FLOPs for a context of *n_tokens*.

        Linear layers contribute ``2 * params * tokens`` and attention adds a
        quadratic term ``2 * layers * tokens^2 * hidden`` (scores + weighted
        sum), matching the super-linear growth the paper highlights.
        """
        linear = 2.0 * self.approx_parameters() * n_tokens
        quadratic = 4.0 * self.n_layers * float(n_tokens) ** 2 * self.hidden_size
        return linear + quadratic


def _preset(**kwargs) -> ModelConfig:
    return ModelConfig(**kwargs)


#: Architecture presets.  The large presets mirror the public architecture
#: cards of the evaluated models; ``dtype_bytes=1`` on Yi-34B and Llama-70B
#: reflects the paper's 8-bit quantisation of those models.
MODEL_PRESETS: dict[str, ModelConfig] = {
    "tiny": _preset(
        name="tiny", n_layers=4, hidden_size=64, n_heads=4, n_kv_heads=4,
        ffn_size=128, vocab_size=2048, runnable=True,
    ),
    "small": _preset(
        name="small", n_layers=8, hidden_size=128, n_heads=8, n_kv_heads=4,
        ffn_size=256, vocab_size=8192, runnable=True,
    ),
    "proxy-mistral-7b": _preset(
        name="proxy-mistral-7b", n_layers=8, hidden_size=128, n_heads=8,
        n_kv_heads=4, ffn_size=256, vocab_size=8192, runnable=True,
    ),
    "proxy-yi-34b": _preset(
        name="proxy-yi-34b", n_layers=12, hidden_size=160, n_heads=8,
        n_kv_heads=4, ffn_size=320, vocab_size=8192, runnable=True,
    ),
    "proxy-llama-70b": _preset(
        name="proxy-llama-70b", n_layers=16, hidden_size=192, n_heads=12,
        n_kv_heads=4, ffn_size=384, vocab_size=8192, runnable=True,
    ),
    "llama-7b": _preset(
        name="llama-7b", n_layers=32, hidden_size=4096, n_heads=32,
        n_kv_heads=32, ffn_size=11008, vocab_size=32000, dtype_bytes=2,
        runnable=False,
    ),
    "mistral-7b": _preset(
        name="mistral-7b", n_layers=32, hidden_size=4096, n_heads=32,
        n_kv_heads=8, ffn_size=14336, vocab_size=32000, dtype_bytes=2,
        runnable=False,
    ),
    "yi-34b": _preset(
        name="yi-34b", n_layers=60, hidden_size=7168, n_heads=56,
        n_kv_heads=8, ffn_size=20480, vocab_size=64000, dtype_bytes=1,
        runnable=False,
    ),
    "llama-70b": _preset(
        name="llama-70b", n_layers=80, hidden_size=8192, n_heads=64,
        n_kv_heads=8, ffn_size=28672, vocab_size=32000, dtype_bytes=1,
        runnable=False,
    ),
}

#: Mapping from the paper's evaluated model names to the proxy configuration
#: used for quality/deviation measurements and the architecture configuration
#: used for timing.
PAPER_MODEL_PAIRS: dict[str, tuple[str, str]] = {
    "Mistral-7B": ("proxy-mistral-7b", "mistral-7b"),
    "Yi-34B": ("proxy-yi-34b", "yi-34b"),
    "Llama-70B": ("proxy-llama-70b", "llama-70b"),
}


def get_config(name: str) -> ModelConfig:
    """Return a preset by name, raising ``KeyError`` with a helpful message."""
    try:
        return MODEL_PRESETS[name]
    except KeyError:
        known = ", ".join(sorted(MODEL_PRESETS))
        raise KeyError(f"unknown model preset {name!r}; known presets: {known}") from None
