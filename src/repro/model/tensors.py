"""KV cache data structures.

A :class:`KVCache` is the concatenation of per-layer key/value tensors for a
token sequence, together with the absolute positions at which the keys were
rotary-embedded.  Chunk caches record those positions so the CacheBlend fusor
can re-align them when the chunk is placed at a different offset.

:class:`GrowableKVCache` is the decode-path counterpart: per-layer K/V
buffers preallocated with spare capacity and grown geometrically, so
appending one decode token is an in-place row write (amortised O(1)) instead
of the O(T) re-concatenation of every layer's full arrays that made the
legacy decode loop O(T²) in memory traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


def _as_compute_array(tensor: np.ndarray) -> np.ndarray:
    """Coerce *tensor* to a float compute dtype without an implicit fp64 up-cast."""
    tensor = np.asarray(tensor)
    if tensor.dtype in (np.float32, np.float64):
        return tensor
    return tensor.astype(np.float32)


@dataclass
class LayerKV:
    """Key/value tensors of one transformer layer.

    ``keys`` and ``values`` have shape ``(n_tokens, n_kv_heads, head_dim)``.
    """

    keys: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        # Preserve the caller's compute dtype (float32 by default end-to-end);
        # only sub-float32 storage dtypes (fp16 payloads) are up-cast, to
        # float32 rather than the former float64.
        self.keys = _as_compute_array(self.keys)
        self.values = _as_compute_array(self.values)
        if self.keys.shape != self.values.shape:
            raise ValueError(
                f"keys shape {self.keys.shape} != values shape {self.values.shape}"
            )
        if self.keys.ndim != 3:
            raise ValueError("LayerKV tensors must be (n_tokens, n_kv_heads, head_dim)")

    @property
    def n_tokens(self) -> int:
        return self.keys.shape[0]

    def copy(self) -> "LayerKV":
        return LayerKV(self.keys.copy(), self.values.copy())

    def slice(self, start: int, stop: int) -> "LayerKV":
        return LayerKV(self.keys[start:stop].copy(), self.values[start:stop].copy())

    def nbytes(self, dtype_bytes: int = 2) -> int:
        """Storage footprint assuming *dtype_bytes* per element."""
        return 2 * self.keys.shape[0] * self.keys.shape[1] * self.keys.shape[2] * dtype_bytes

    @staticmethod
    def concat(parts: list["LayerKV"]) -> "LayerKV":
        if not parts:
            raise ValueError("cannot concatenate an empty list of LayerKV")
        keys = np.concatenate([p.keys for p in parts], axis=0)
        values = np.concatenate([p.values for p in parts], axis=0)
        return LayerKV(keys, values)


@dataclass
class KVCache:
    """Per-layer KV tensors plus token ids and embedding positions.

    Attributes
    ----------
    layers:
        One :class:`LayerKV` per transformer layer.
    token_ids:
        The token ids the cache was computed for.
    positions:
        Absolute positions the keys were rotary-embedded at (shape
        ``(n_tokens,)``).  For a full prefill these are ``0..n-1``; for a
        chunk prefill they start at the chunk's precompute offset.
    """

    layers: list[LayerKV]
    token_ids: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int64))
    positions: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int64))

    def __post_init__(self) -> None:
        self.token_ids = np.asarray(self.token_ids, dtype=np.int64)
        self.positions = np.asarray(self.positions, dtype=np.int64)
        if self.layers:
            n = self.layers[0].n_tokens
            for i, layer in enumerate(self.layers):
                if layer.n_tokens != n:
                    raise ValueError(
                        f"layer {i} has {layer.n_tokens} tokens, expected {n}"
                    )
            if self.token_ids.size and self.token_ids.size != n:
                raise ValueError("token_ids length does not match KV tensors")
            if self.positions.size and self.positions.size != n:
                raise ValueError("positions length does not match KV tensors")

    @property
    def n_layers(self) -> int:
        return len(self.layers)

    @property
    def n_tokens(self) -> int:
        return self.layers[0].n_tokens if self.layers else 0

    def copy(self) -> "KVCache":
        return KVCache(
            [layer.copy() for layer in self.layers],
            self.token_ids.copy(),
            self.positions.copy(),
        )

    def slice_tokens(self, start: int, stop: int) -> "KVCache":
        return KVCache(
            [layer.slice(start, stop) for layer in self.layers],
            self.token_ids[start:stop].copy() if self.token_ids.size else self.token_ids,
            self.positions[start:stop].copy() if self.positions.size else self.positions,
        )

    def nbytes(self, dtype_bytes: int = 2) -> int:
        return sum(layer.nbytes(dtype_bytes) for layer in self.layers)

    @staticmethod
    def concat(parts: list["KVCache"]) -> "KVCache":
        """Concatenate chunk caches along the token axis."""
        if not parts:
            raise ValueError("cannot concatenate an empty list of KVCache")
        n_layers = parts[0].n_layers
        for part in parts:
            if part.n_layers != n_layers:
                raise ValueError("all KVCache parts must have the same layer count")
        layers = [
            LayerKV.concat([part.layers[i] for part in parts]) for i in range(n_layers)
        ]
        token_ids = np.concatenate([part.token_ids for part in parts])
        positions = np.concatenate([part.positions for part in parts])
        return KVCache(layers, token_ids, positions)


class GrowableKVCache:
    """Per-layer K/V buffers with spare capacity and amortised O(1) appends.

    The buffers hold ``capacity`` token rows of which the first ``n_tokens``
    are live; appending a decode token writes one row per layer in place.
    When capacity runs out, the buffers grow geometrically (at least
    doubling), so a generation of T tokens costs O(T) total copy traffic
    instead of the O(T²) of re-concatenating every layer per token.

    ``next_position`` is tracked on the cache (the position the *next*
    appended token embeds at, one past the last row's position) so decode
    steps never rescan the positions array — and, unlike the former
    ``positions.max()`` scan, it anchors on the *last* token rather than the
    numerically largest position, so decoding continues the sequence order
    after chunk-derived positions that are non-contiguous or out of order.
    Note that an out-of-order cache is best re-aligned (the fusor always
    does) before long decodes: its absolute positions may then repeat, and
    RoPE cannot distinguish two keys rotated to the same position.
    """

    def __init__(
        self,
        n_layers: int,
        n_kv_heads: int,
        head_dim: int,
        dtype: np.dtype | str = np.float32,
        capacity: int = 64,
    ) -> None:
        if n_layers < 1:
            raise ValueError("n_layers must be >= 1")
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._capacity = capacity
        self._length = 0
        self._keys = [
            np.zeros((capacity, n_kv_heads, head_dim), dtype=dtype)
            for _ in range(n_layers)
        ]
        self._values = [np.zeros_like(k) for k in self._keys]
        self._token_ids = np.zeros(capacity, dtype=np.int64)
        self._positions = np.zeros(capacity, dtype=np.int64)
        self.next_position = 0

    # ------------------------------------------------------------------
    @classmethod
    def from_kv_cache(cls, cache: KVCache, reserve: int = 0) -> "GrowableKVCache":
        """Copy a legacy :class:`KVCache` into preallocated buffers.

        ``reserve`` extra rows are preallocated beyond the cache's tokens
        (e.g. the expected number of decode tokens), so a generation of that
        length never reallocates.
        """
        if not cache.layers:
            raise ValueError("cannot grow an empty KVCache")
        n = cache.n_tokens
        first = cache.layers[0]
        grown = cls(
            cache.n_layers,
            first.keys.shape[1],
            first.keys.shape[2],
            dtype=first.keys.dtype,
            capacity=max(1, n + max(0, reserve)),
        )
        for layer_idx, layer in enumerate(cache.layers):
            grown._keys[layer_idx][:n] = layer.keys
            grown._values[layer_idx][:n] = layer.values
        if cache.token_ids.size:
            grown._token_ids[:n] = cache.token_ids
        if cache.positions.size:
            grown._positions[:n] = cache.positions
            grown.next_position = int(cache.positions[-1]) + 1
        else:
            grown._positions[:n] = np.arange(n, dtype=np.int64)
            grown.next_position = n
        grown._length = n
        return grown

    # ------------------------------------------------------------------
    @property
    def n_layers(self) -> int:
        return len(self._keys)

    @property
    def n_tokens(self) -> int:
        return self._length

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def token_ids(self) -> np.ndarray:
        """Live token ids (a view into the buffer; do not resize)."""
        return self._token_ids[: self._length]

    @property
    def positions(self) -> np.ndarray:
        """Live embedding positions (a view into the buffer; do not resize)."""
        return self._positions[: self._length]

    @property
    def layers(self) -> list[LayerKV]:
        """Per-layer :class:`LayerKV` views of the live rows (zero-copy)."""
        return [self.layer(i) for i in range(self.n_layers)]

    def layer(self, layer_idx: int) -> LayerKV:
        return LayerKV(self.layer_keys(layer_idx), self.layer_values(layer_idx))

    def layer_keys(self, layer_idx: int) -> np.ndarray:
        return self._keys[layer_idx][: self._length]

    def layer_values(self, layer_idx: int) -> np.ndarray:
        return self._values[layer_idx][: self._length]

    # ------------------------------------------------------------------
    def reserve(self, n_extra: int) -> None:
        """Ensure capacity for *n_extra* more rows, growing geometrically."""
        needed = self._length + max(0, n_extra)
        if needed <= self._capacity:
            return
        new_capacity = max(needed, 2 * self._capacity)
        for buffers in (self._keys, self._values):
            for layer_idx, old in enumerate(buffers):
                grown = np.zeros((new_capacity, *old.shape[1:]), dtype=old.dtype)
                grown[: self._length] = old[: self._length]
                buffers[layer_idx] = grown
        for name in ("_token_ids", "_positions"):
            old = getattr(self, name)
            grown = np.zeros(new_capacity, dtype=old.dtype)
            grown[: self._length] = old[: self._length]
            setattr(self, name, grown)
        self._capacity = new_capacity

    def append_token(self, token_id: int, position: int | None = None) -> int:
        """Claim the next row for one token; returns its row index.

        The row's K/V entries are written afterwards via :meth:`write_layer`
        (the decode loop fills them layer by layer).  ``position`` defaults
        to the tracked :attr:`next_position`.
        """
        self.reserve(1)
        row = self._length
        if position is None:
            position = self.next_position
        self._token_ids[row] = token_id
        self._positions[row] = position
        self._length += 1
        self.next_position = int(position) + 1
        return row

    def write_layer(
        self, layer_idx: int, row: int, keys: np.ndarray, values: np.ndarray
    ) -> None:
        """Write one token's K/V for one layer in place (no reallocation)."""
        self._keys[layer_idx][row] = keys
        self._values[layer_idx][row] = values

    def append(
        self,
        keys: np.ndarray,
        values: np.ndarray,
        token_id: int,
        position: int | None = None,
    ) -> int:
        """Append one token's stacked ``(n_layers, n_kv_heads, head_dim)`` K/V."""
        keys = np.asarray(keys)
        values = np.asarray(values)
        if keys.shape[0] != self.n_layers or values.shape[0] != self.n_layers:
            raise ValueError("append expects one K/V row per layer")
        row = self.append_token(token_id, position)
        for layer_idx in range(self.n_layers):
            self.write_layer(layer_idx, row, keys[layer_idx], values[layer_idx])
        return row

    # ------------------------------------------------------------------
    def view(self) -> KVCache:
        """Zero-copy legacy :class:`KVCache` view of the live rows.

        The views alias the growable buffers: valid until the next append
        that triggers a reallocation.
        """
        return KVCache(self.layers, self.token_ids, self.positions)

    def to_kv_cache(self) -> KVCache:
        """Deep copy into an exactly-sized legacy :class:`KVCache`."""
        n = self._length
        return KVCache(
            [
                LayerKV(self._keys[i][:n].copy(), self._values[i][:n].copy())
                for i in range(self.n_layers)
            ],
            self._token_ids[:n].copy(),
            self._positions[:n].copy(),
        )
