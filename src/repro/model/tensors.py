"""KV cache data structures.

A :class:`KVCache` is the concatenation of per-layer key/value tensors for a
token sequence, together with the absolute positions at which the keys were
rotary-embedded.  Chunk caches record those positions so the CacheBlend fusor
can re-align them when the chunk is placed at a different offset.

:class:`GrowableKVCache` is the decode-path counterpart: per-layer K/V
buffers preallocated with spare capacity and grown geometrically, so
appending one decode token is an in-place row write (amortised O(1)) instead
of the O(T) re-concatenation of every layer's full arrays that made the
legacy decode loop O(T²) in memory traffic.

:class:`DecodeSession` is the *batch*-decode counterpart: one persistent
padded ``(slots, tokens, kv_heads, head_dim)`` buffer pair per layer that
lives **across** decode steps.  A steady-state step writes only each
member's newly appended row (O(batch) traffic) — never the per-call
re-gather of every member's full K/V that
:meth:`~repro.model.transformer.TransformerModel.decode_batch` performs —
and membership changes (a request joining on admission, leaving on
EOS/length) refill only the affected slots.  Both axes of the pad grow
geometrically, like :class:`GrowableKVCache`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


def _as_compute_array(tensor: np.ndarray) -> np.ndarray:
    """Coerce *tensor* to a float compute dtype without an implicit fp64 up-cast."""
    tensor = np.asarray(tensor)
    if tensor.dtype in (np.float32, np.float64):
        return tensor
    return tensor.astype(np.float32)


@dataclass
class LayerKV:
    """Key/value tensors of one transformer layer.

    ``keys`` and ``values`` have shape ``(n_tokens, n_kv_heads, head_dim)``.
    """

    keys: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        # Preserve the caller's compute dtype (float32 by default end-to-end);
        # only sub-float32 storage dtypes (fp16 payloads) are up-cast, to
        # float32 rather than the former float64.
        self.keys = _as_compute_array(self.keys)
        self.values = _as_compute_array(self.values)
        if self.keys.shape != self.values.shape:
            raise ValueError(
                f"keys shape {self.keys.shape} != values shape {self.values.shape}"
            )
        if self.keys.ndim != 3:
            raise ValueError("LayerKV tensors must be (n_tokens, n_kv_heads, head_dim)")

    @property
    def n_tokens(self) -> int:
        return self.keys.shape[0]

    def copy(self) -> "LayerKV":
        return LayerKV(self.keys.copy(), self.values.copy())

    def slice(self, start: int, stop: int) -> "LayerKV":
        return LayerKV(self.keys[start:stop].copy(), self.values[start:stop].copy())

    def nbytes(self, dtype_bytes: int = 2) -> int:
        """Storage footprint assuming *dtype_bytes* per element."""
        return 2 * self.keys.shape[0] * self.keys.shape[1] * self.keys.shape[2] * dtype_bytes

    @staticmethod
    def concat(parts: list["LayerKV"]) -> "LayerKV":
        if not parts:
            raise ValueError("cannot concatenate an empty list of LayerKV")
        keys = np.concatenate([p.keys for p in parts], axis=0)
        values = np.concatenate([p.values for p in parts], axis=0)
        return LayerKV(keys, values)


@dataclass
class KVCache:
    """Per-layer KV tensors plus token ids and embedding positions.

    Attributes
    ----------
    layers:
        One :class:`LayerKV` per transformer layer.
    token_ids:
        The token ids the cache was computed for.
    positions:
        Absolute positions the keys were rotary-embedded at (shape
        ``(n_tokens,)``).  For a full prefill these are ``0..n-1``; for a
        chunk prefill they start at the chunk's precompute offset.
    """

    layers: list[LayerKV]
    token_ids: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int64))
    positions: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int64))

    def __post_init__(self) -> None:
        self.token_ids = np.asarray(self.token_ids, dtype=np.int64)
        self.positions = np.asarray(self.positions, dtype=np.int64)
        if self.layers:
            n = self.layers[0].n_tokens
            for i, layer in enumerate(self.layers):
                if layer.n_tokens != n:
                    raise ValueError(
                        f"layer {i} has {layer.n_tokens} tokens, expected {n}"
                    )
            if self.token_ids.size and self.token_ids.size != n:
                raise ValueError("token_ids length does not match KV tensors")
            if self.positions.size and self.positions.size != n:
                raise ValueError("positions length does not match KV tensors")

    @property
    def n_layers(self) -> int:
        return len(self.layers)

    @property
    def n_tokens(self) -> int:
        return self.layers[0].n_tokens if self.layers else 0

    def copy(self) -> "KVCache":
        return KVCache(
            [layer.copy() for layer in self.layers],
            self.token_ids.copy(),
            self.positions.copy(),
        )

    def slice_tokens(self, start: int, stop: int) -> "KVCache":
        return KVCache(
            [layer.slice(start, stop) for layer in self.layers],
            self.token_ids[start:stop].copy() if self.token_ids.size else self.token_ids,
            self.positions[start:stop].copy() if self.positions.size else self.positions,
        )

    def nbytes(self, dtype_bytes: int = 2) -> int:
        return sum(layer.nbytes(dtype_bytes) for layer in self.layers)

    @staticmethod
    def concat(parts: list["KVCache"]) -> "KVCache":
        """Concatenate chunk caches along the token axis."""
        if not parts:
            raise ValueError("cannot concatenate an empty list of KVCache")
        n_layers = parts[0].n_layers
        for part in parts:
            if part.n_layers != n_layers:
                raise ValueError("all KVCache parts must have the same layer count")
        layers = [
            LayerKV.concat([part.layers[i] for part in parts]) for i in range(n_layers)
        ]
        token_ids = np.concatenate([part.token_ids for part in parts])
        positions = np.concatenate([part.positions for part in parts])
        return KVCache(layers, token_ids, positions)


class GrowableKVCache:
    """Per-layer K/V buffers with spare capacity and amortised O(1) appends.

    The buffers hold ``capacity`` token rows of which the first ``n_tokens``
    are live; appending a decode token writes one row per layer in place.
    When capacity runs out, the buffers grow geometrically (at least
    doubling), so a generation of T tokens costs O(T) total copy traffic
    instead of the O(T²) of re-concatenating every layer per token.

    ``next_position`` is tracked on the cache (the position the *next*
    appended token embeds at, one past the last row's position) so decode
    steps never rescan the positions array — and, unlike the former
    ``positions.max()`` scan, it anchors on the *last* token rather than the
    numerically largest position, so decoding continues the sequence order
    after chunk-derived positions that are non-contiguous or out of order.
    Note that an out-of-order cache is best re-aligned (the fusor always
    does) before long decodes: its absolute positions may then repeat, and
    RoPE cannot distinguish two keys rotated to the same position.
    """

    def __init__(
        self,
        n_layers: int,
        n_kv_heads: int,
        head_dim: int,
        dtype: np.dtype | str = np.float32,
        capacity: int = 64,
    ) -> None:
        if n_layers < 1:
            raise ValueError("n_layers must be >= 1")
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._capacity = capacity
        self._length = 0
        self._keys = [
            np.zeros((capacity, n_kv_heads, head_dim), dtype=dtype)
            for _ in range(n_layers)
        ]
        self._values = [np.zeros_like(k) for k in self._keys]
        self._token_ids = np.zeros(capacity, dtype=np.int64)
        self._positions = np.zeros(capacity, dtype=np.int64)
        self.next_position = 0

    # ------------------------------------------------------------------
    @classmethod
    def from_kv_cache(cls, cache: KVCache, reserve: int = 0) -> "GrowableKVCache":
        """Copy a legacy :class:`KVCache` into preallocated buffers.

        ``reserve`` extra rows are preallocated beyond the cache's tokens
        (e.g. the expected number of decode tokens), so a generation of that
        length never reallocates.
        """
        if not cache.layers:
            raise ValueError("cannot grow an empty KVCache")
        n = cache.n_tokens
        first = cache.layers[0]
        grown = cls(
            cache.n_layers,
            first.keys.shape[1],
            first.keys.shape[2],
            dtype=first.keys.dtype,
            capacity=max(1, n + max(0, reserve)),
        )
        for layer_idx, layer in enumerate(cache.layers):
            grown._keys[layer_idx][:n] = layer.keys
            grown._values[layer_idx][:n] = layer.values
        if cache.token_ids.size:
            grown._token_ids[:n] = cache.token_ids
        if cache.positions.size:
            grown._positions[:n] = cache.positions
            grown.next_position = int(cache.positions[-1]) + 1
        else:
            grown._positions[:n] = np.arange(n, dtype=np.int64)
            grown.next_position = n
        grown._length = n
        return grown

    # ------------------------------------------------------------------
    @property
    def n_layers(self) -> int:
        return len(self._keys)

    @property
    def n_tokens(self) -> int:
        return self._length

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def token_ids(self) -> np.ndarray:
        """Live token ids (a view into the buffer; do not resize)."""
        self._check_live()
        return self._token_ids[: self._length]

    @property
    def positions(self) -> np.ndarray:
        """Live embedding positions (a view into the buffer; do not resize)."""
        self._check_live()
        return self._positions[: self._length]

    @property
    def layers(self) -> list[LayerKV]:
        """Per-layer :class:`LayerKV` views of the live rows (zero-copy)."""
        return [self.layer(i) for i in range(self.n_layers)]

    def layer(self, layer_idx: int) -> LayerKV:
        return LayerKV(self.layer_keys(layer_idx), self.layer_values(layer_idx))

    def layer_keys(self, layer_idx: int) -> np.ndarray:
        self._check_live()
        return self._keys[layer_idx][: self._length]

    def layer_values(self, layer_idx: int) -> np.ndarray:
        self._check_live()
        return self._values[layer_idx][: self._length]

    # ------------------------------------------------------------------
    def reserve(self, n_extra: int) -> None:
        """Ensure capacity for *n_extra* more rows, growing geometrically."""
        self._check_live()
        needed = self._length + max(0, n_extra)
        if needed <= self._capacity:
            return
        new_capacity = max(needed, 2 * self._capacity)
        for buffers in (self._keys, self._values):
            for layer_idx, old in enumerate(buffers):
                grown = np.zeros((new_capacity, *old.shape[1:]), dtype=old.dtype)
                grown[: self._length] = old[: self._length]
                buffers[layer_idx] = grown
        for name in ("_token_ids", "_positions"):
            old = getattr(self, name)
            grown = np.zeros(new_capacity, dtype=old.dtype)
            grown[: self._length] = old[: self._length]
            setattr(self, name, grown)
        self._capacity = new_capacity

    def append_token(self, token_id: int, position: int | None = None) -> int:
        """Claim the next row for one token; returns its row index.

        The row's K/V entries are written afterwards via :meth:`write_layer`
        (the decode loop fills them layer by layer).  ``position`` defaults
        to the tracked :attr:`next_position`.
        """
        self.reserve(1)
        row = self._length
        if position is None:
            position = self.next_position
        self._token_ids[row] = token_id
        self._positions[row] = position
        self._length += 1
        self.next_position = int(position) + 1
        return row

    def write_layer(
        self, layer_idx: int, row: int, keys: np.ndarray, values: np.ndarray
    ) -> None:
        """Write one token's K/V for one layer in place (no reallocation)."""
        self._check_live()
        self._keys[layer_idx][row] = keys
        self._values[layer_idx][row] = values

    def append(
        self,
        keys: np.ndarray,
        values: np.ndarray,
        token_id: int,
        position: int | None = None,
    ) -> int:
        """Append one token's stacked ``(n_layers, n_kv_heads, head_dim)`` K/V."""
        keys = np.asarray(keys)
        values = np.asarray(values)
        if keys.shape[0] != self.n_layers or values.shape[0] != self.n_layers:
            raise ValueError("append expects one K/V row per layer")
        row = self.append_token(token_id, position)
        for layer_idx in range(self.n_layers):
            self.write_layer(layer_idx, row, keys[layer_idx], values[layer_idx])
        return row

    # ------------------------------------------------------------------
    def view(self) -> KVCache:
        """Zero-copy legacy :class:`KVCache` view of the live rows.

        The views alias the growable buffers: valid until the next append
        that triggers a reallocation.
        """
        return KVCache(self.layers, self.token_ids, self.positions)

    def to_kv_cache(self) -> KVCache:
        """Deep copy into an exactly-sized legacy :class:`KVCache`."""
        self._check_live()
        n = self._length
        return KVCache(
            [
                LayerKV(self._keys[i][:n].copy(), self._values[i][:n].copy())
                for i in range(self.n_layers)
            ],
            self._token_ids[:n].copy(),
            self._positions[:n].copy(),
        )

    # ------------------------------------------------------------------
    @property
    def released(self) -> bool:
        """True once :meth:`release` has dropped the buffers."""
        return self._capacity == 0

    def resident_bytes(self) -> int:
        """Bytes currently held by the preallocated buffers (capacity, not
        just the live rows) — what the cache keeps resident in memory."""
        return sum(k.nbytes + v.nbytes for k, v in zip(self._keys, self._values)) + (
            self._token_ids.nbytes + self._positions.nbytes
        )

    def release(self) -> None:
        """Drop the K/V buffers so the memory is reclaimable immediately.

        Called when the request owning this cache completes or is evicted:
        peak resident KV then tracks the *live* batch instead of waiting on
        garbage collection of whole preallocated buffers.  The cache is dead
        afterwards — any further append or read raises ``RuntimeError``.
        """
        empty_kv = np.zeros((0, 0, 0), dtype=self._keys[0].dtype)
        self._keys = [empty_kv for _ in self._keys]
        self._values = [empty_kv for _ in self._values]
        self._token_ids = np.zeros(0, dtype=np.int64)
        self._positions = np.zeros(0, dtype=np.int64)
        self._length = 0
        self._capacity = 0

    def _check_live(self) -> None:
        if self.released:
            raise RuntimeError("GrowableKVCache was released; buffers are gone")


@dataclass
class DecodeSessionStats:
    """Copy/step instrumentation of one :class:`DecodeSession`.

    ``append_rows`` counts token rows written by per-step appends (one per
    member per step); ``refill_rows`` counts token rows copied by membership
    changes and pad growth (joins, leave compaction, reallocations).  On
    stable membership a steady-state step performs *no* refills — the
    regression test for the per-call re-gather ``decode_batch`` pays.
    """

    joins: int = 0
    leaves: int = 0
    steps: int = 0
    append_rows: int = 0
    refill_rows: int = 0
    grows: int = 0
    peak_members: int = 0
    preemptions: int = 0

    def reset(self) -> None:
        """Zero all counters (e.g. after setup, before the steady-state)."""
        self.joins = 0
        self.leaves = 0
        self.steps = 0
        self.append_rows = 0
        self.refill_rows = 0
        self.grows = 0
        self.peak_members = 0
        self.preemptions = 0


class DecodeSession:
    """Persistent padded batch of K/V buffers across decode steps.

    One ``(n_slots, token_capacity, n_kv_heads, head_dim)`` key/value buffer
    pair per layer holds every member's live K/V rows side by side.  The
    batched decode attention reads the pad *directly* (a zero-copy slice per
    layer), so a steady-state step costs one appended row per member —
    unlike :meth:`~repro.model.transformer.TransformerModel.decode_batch`,
    which re-gathers every request's full cache into per-call scratch on
    every token (an O(batch × T) copy per step on top of attention's reads).

    Members occupy slots ``0..n_members-1`` densely (so the per-layer view
    is a plain slice); :meth:`leave` fills the hole by moving the last slot
    into it, and shrinks the slot axis geometrically when occupancy drops,
    so peak resident KV tracks the *live* batch.  Both pad axes grow
    geometrically, like :class:`GrowableKVCache`.  All copy traffic is
    counted in :attr:`stats`.

    Members are identified by caller-chosen hashable ids; the member order
    of a step's inputs/outputs is :attr:`member_ids` (which changes only on
    membership changes, never on steps).
    """

    def __init__(
        self,
        n_layers: int,
        n_kv_heads: int,
        head_dim: int,
        dtype: np.dtype | str = np.float32,
        token_capacity: int = 64,
        slot_capacity: int = 4,
    ) -> None:
        if n_layers < 1 or n_kv_heads < 1 or head_dim < 1:
            raise ValueError("n_layers, n_kv_heads and head_dim must be >= 1")
        if token_capacity < 1 or slot_capacity < 1:
            raise ValueError("token_capacity and slot_capacity must be >= 1")
        self._token_capacity = token_capacity
        self._slot_capacity = slot_capacity
        self._min_slot_capacity = slot_capacity
        shape = (slot_capacity, token_capacity, n_kv_heads, head_dim)
        self._keys = [np.zeros(shape, dtype=dtype) for _ in range(n_layers)]
        self._values = [np.zeros_like(k) for k in self._keys]
        self._token_ids = np.zeros((slot_capacity, token_capacity), dtype=np.int64)
        self._positions = np.zeros((slot_capacity, token_capacity), dtype=np.int64)
        self._lengths = np.zeros(slot_capacity, dtype=np.int64)
        self._next_positions = np.zeros(slot_capacity, dtype=np.int64)
        self._members: list[object] = []
        self._slots: dict[object, int] = {}
        self.stats = DecodeSessionStats()

    # ------------------------------------------------------------------
    @property
    def n_layers(self) -> int:
        return len(self._keys)

    @property
    def n_members(self) -> int:
        return len(self._members)

    @property
    def member_ids(self) -> tuple:
        """Current members in slot order (the batch order of a step)."""
        return tuple(self._members)

    @property
    def token_capacity(self) -> int:
        return self._token_capacity

    @property
    def slot_capacity(self) -> int:
        return self._slot_capacity

    @property
    def lengths(self) -> np.ndarray:
        """Live token count per member, in slot order (a copy)."""
        return self._lengths[: self.n_members].copy()

    def length_of(self, member_id) -> int:
        return int(self._lengths[self._slot_of(member_id)])

    def resident_bytes(self) -> int:
        """Bytes held by the pad buffers (capacity, not just live rows)."""
        return sum(k.nbytes + v.nbytes for k, v in zip(self._keys, self._values)) + (
            self._token_ids.nbytes + self._positions.nbytes
        )

    def _slot_of(self, member_id) -> int:
        slot = self._slots.get(member_id)
        if slot is None:
            raise KeyError(f"no session member {member_id!r}")
        return slot

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def join(self, member_id, cache: "KVCache | GrowableKVCache", reserve: int = 0) -> int:
        """Copy *cache*'s live rows into a free slot; returns the slot index.

        The one O(T) refill a member ever pays on stable membership.
        ``reserve`` extra token rows are preallocated (e.g. the decode
        budget) so the generation never regrows the token axis.
        """
        if member_id in self._slots:
            raise ValueError(f"member {member_id!r} already joined")
        n = cache.n_tokens
        if n < 1:
            raise ValueError("cannot join an empty cache")
        if cache.n_layers != self.n_layers:
            raise ValueError(
                f"cache has {cache.n_layers} layers, session has {self.n_layers}"
            )
        first = cache.layers[0].keys if isinstance(cache, KVCache) else cache.layer_keys(0)
        if first.shape[1:] != self._keys[0].shape[2:]:
            raise ValueError(
                f"cache KV shape {first.shape[1:]} does not match session "
                f"{self._keys[0].shape[2:]}"
            )
        if self.n_members == self._slot_capacity:
            self._grow_slots(2 * self._slot_capacity)
        if n + max(0, reserve) > self._token_capacity:
            self._grow_tokens(max(n + max(0, reserve), 2 * self._token_capacity))
        slot = self.n_members
        for layer_idx in range(self.n_layers):
            if isinstance(cache, GrowableKVCache):
                keys, values = cache.layer_keys(layer_idx), cache.layer_values(layer_idx)
            else:
                layer = cache.layers[layer_idx]
                keys, values = layer.keys, layer.values
            self._keys[layer_idx][slot, :n] = keys
            self._values[layer_idx][slot, :n] = values
        token_ids = np.asarray(cache.token_ids)
        positions = np.asarray(cache.positions)
        # Always overwrite the slot rows: a reused slot still holds the
        # previous occupant's ids, which must not leak into extract().
        self._token_ids[slot, :n] = token_ids if token_ids.size else 0
        if positions.size:
            self._positions[slot, :n] = positions
            self._next_positions[slot] = int(positions[-1]) + 1
        else:
            self._positions[slot, :n] = np.arange(n, dtype=np.int64)
            self._next_positions[slot] = n
        self._lengths[slot] = n
        self._members.append(member_id)
        self._slots[member_id] = slot
        self.stats.joins += 1
        self.stats.refill_rows += n
        self.stats.peak_members = max(self.stats.peak_members, self.n_members)
        return slot

    def leave(self, member_id) -> None:
        """Free a member's slot (request finished or evicted).

        The last slot moves into the hole (one refill of that member, a
        membership-change cost) so the live slots stay a dense prefix; the
        slot axis shrinks geometrically when occupancy drops to a quarter,
        so the pad's resident bytes track the live batch.
        """
        slot = self._slot_of(member_id)
        last = self.n_members - 1
        if slot != last:
            moved_rows = int(self._lengths[last])
            for buffers in (self._keys, self._values):
                for buf in buffers:
                    buf[slot, :moved_rows] = buf[last, :moved_rows]
            self._token_ids[slot, :moved_rows] = self._token_ids[last, :moved_rows]
            self._positions[slot, :moved_rows] = self._positions[last, :moved_rows]
            self._lengths[slot] = self._lengths[last]
            self._next_positions[slot] = self._next_positions[last]
            moved_member = self._members[last]
            self._members[slot] = moved_member
            self._slots[moved_member] = slot
            self.stats.refill_rows += moved_rows
        self._lengths[last] = 0
        self._next_positions[last] = 0
        self._members.pop()
        del self._slots[member_id]
        self.stats.leaves += 1
        if (
            self._slot_capacity > self._min_slot_capacity
            and self.n_members <= self._slot_capacity // 4
        ):
            self._shrink_slots(max(self._min_slot_capacity, self._slot_capacity // 2))

    def extract(self, member_id) -> KVCache:
        """Deep copy of one member's live rows as a legacy :class:`KVCache`."""
        slot = self._slot_of(member_id)
        n = int(self._lengths[slot])
        return KVCache(
            [
                LayerKV(self._keys[i][slot, :n].copy(), self._values[i][slot, :n].copy())
                for i in range(self.n_layers)
            ],
            self._token_ids[slot, :n].copy(),
            self._positions[slot, :n].copy(),
        )

    def preempt(self, member_id) -> KVCache:
        """Pause a member: extract its decode state, then free its slot.

        The scheduler's decode-preemption primitive — the returned
        :class:`KVCache` holds everything needed to resume later via
        :meth:`join` (same ``member_id`` or a new one), after which stepping
        continues bitwise exactly where it stopped.  The paused member costs
        the session nothing while it waits; ``stats.preemptions`` counts the
        pauses.
        """
        cache = self.extract(member_id)
        self.leave(member_id)
        self.stats.preemptions += 1
        return cache

    # ------------------------------------------------------------------
    # Stepping (driven by TransformerModel.decode_session_step)
    # ------------------------------------------------------------------
    def claim_rows(self, token_ids: np.ndarray) -> np.ndarray:
        """Append one token row per member (in slot order); returns the
        embedding positions of the appended tokens.

        The K/V of the appended rows is written layer by layer afterwards
        via :meth:`write_layer`.
        """
        n = self.n_members
        if n == 0:
            raise ValueError("session has no members")
        token_arr = np.asarray(token_ids, dtype=np.int64)
        if token_arr.shape != (n,):
            raise ValueError("need exactly one token id per member")
        if int(self._lengths[:n].max()) + 1 > self._token_capacity:
            self._grow_tokens(2 * self._token_capacity)
        rows = self._lengths[:n].copy()
        positions = self._next_positions[:n].copy()
        members = np.arange(n)
        self._token_ids[members, rows] = token_arr
        self._positions[members, rows] = positions
        self._lengths[:n] += 1
        self._next_positions[:n] = positions + 1
        self.stats.steps += 1
        self.stats.append_rows += n
        return positions

    def write_layer(self, layer_idx: int, keys: np.ndarray, values: np.ndarray) -> None:
        """Write the current step's appended row of every member, in place."""
        n = self.n_members
        members = np.arange(n)
        rows = self._lengths[:n] - 1
        self._keys[layer_idx][members, rows] = keys
        self._values[layer_idx][members, rows] = values

    def layer_kv(self, layer_idx: int) -> tuple[np.ndarray, np.ndarray]:
        """Zero-copy padded ``(n_members, max_len, kv_heads, head_dim)``
        key/value views for one layer — fed straight to
        :func:`~repro.model.attention.batched_decode_attention` (rows at or
        past a member's length are padding, masked by the ``lengths``
        argument)."""
        n = self.n_members
        max_len = int(self._lengths[:n].max()) if n else 0
        return (
            self._keys[layer_idx][:n, :max_len],
            self._values[layer_idx][:n, :max_len],
        )

    # ------------------------------------------------------------------
    # Pad reallocation (geometric, copy traffic counted)
    # ------------------------------------------------------------------
    def _live_rows(self) -> int:
        return int(self._lengths[: self.n_members].sum())

    def _resize(self, slot_capacity: int, token_capacity: int) -> None:
        """Reallocate the pad to new capacities, copying the live rows."""
        n = self.n_members
        keep = int(self._lengths[:n].max()) if n else 0
        for buffers in (self._keys, self._values):
            for layer_idx, old in enumerate(buffers):
                grown = np.zeros(
                    (slot_capacity, token_capacity, *old.shape[2:]), dtype=old.dtype
                )
                grown[:n, :keep] = old[:n, :keep]
                buffers[layer_idx] = grown
        for name in ("_token_ids", "_positions"):
            old = getattr(self, name)
            grown = np.zeros((slot_capacity, token_capacity), dtype=old.dtype)
            grown[:n, :keep] = old[:n, :keep]
            setattr(self, name, grown)
        for name in ("_lengths", "_next_positions"):
            old = getattr(self, name)
            grown = np.zeros(slot_capacity, dtype=old.dtype)
            grown[:n] = old[:n]
            setattr(self, name, grown)
        self._slot_capacity = slot_capacity
        self._token_capacity = token_capacity
        self.stats.grows += 1
        self.stats.refill_rows += self._live_rows()

    def _grow_tokens(self, new_capacity: int) -> None:
        self._resize(self._slot_capacity, new_capacity)

    def _grow_slots(self, new_capacity: int) -> None:
        self._resize(new_capacity, self._token_capacity)

    def _shrink_slots(self, new_capacity: int) -> None:
        if new_capacity < self.n_members:
            raise ValueError("cannot shrink below the live member count")
        self._resize(new_capacity, self._token_capacity)
