"""KV cache data structures.

A :class:`KVCache` is the concatenation of per-layer key/value tensors for a
token sequence, together with the absolute positions at which the keys were
rotary-embedded.  Chunk caches record those positions so the CacheBlend fusor
can re-align them when the chunk is placed at a different offset.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


def _as_compute_array(tensor: np.ndarray) -> np.ndarray:
    """Coerce *tensor* to a float compute dtype without an implicit fp64 up-cast."""
    tensor = np.asarray(tensor)
    if tensor.dtype in (np.float32, np.float64):
        return tensor
    return tensor.astype(np.float32)


@dataclass
class LayerKV:
    """Key/value tensors of one transformer layer.

    ``keys`` and ``values`` have shape ``(n_tokens, n_kv_heads, head_dim)``.
    """

    keys: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        # Preserve the caller's compute dtype (float32 by default end-to-end);
        # only sub-float32 storage dtypes (fp16 payloads) are up-cast, to
        # float32 rather than the former float64.
        self.keys = _as_compute_array(self.keys)
        self.values = _as_compute_array(self.values)
        if self.keys.shape != self.values.shape:
            raise ValueError(
                f"keys shape {self.keys.shape} != values shape {self.values.shape}"
            )
        if self.keys.ndim != 3:
            raise ValueError("LayerKV tensors must be (n_tokens, n_kv_heads, head_dim)")

    @property
    def n_tokens(self) -> int:
        return self.keys.shape[0]

    def copy(self) -> "LayerKV":
        return LayerKV(self.keys.copy(), self.values.copy())

    def slice(self, start: int, stop: int) -> "LayerKV":
        return LayerKV(self.keys[start:stop].copy(), self.values[start:stop].copy())

    def nbytes(self, dtype_bytes: int = 2) -> int:
        """Storage footprint assuming *dtype_bytes* per element."""
        return 2 * self.keys.shape[0] * self.keys.shape[1] * self.keys.shape[2] * dtype_bytes

    @staticmethod
    def concat(parts: list["LayerKV"]) -> "LayerKV":
        if not parts:
            raise ValueError("cannot concatenate an empty list of LayerKV")
        keys = np.concatenate([p.keys for p in parts], axis=0)
        values = np.concatenate([p.values for p in parts], axis=0)
        return LayerKV(keys, values)


@dataclass
class KVCache:
    """Per-layer KV tensors plus token ids and embedding positions.

    Attributes
    ----------
    layers:
        One :class:`LayerKV` per transformer layer.
    token_ids:
        The token ids the cache was computed for.
    positions:
        Absolute positions the keys were rotary-embedded at (shape
        ``(n_tokens,)``).  For a full prefill these are ``0..n-1``; for a
        chunk prefill they start at the chunk's precompute offset.
    """

    layers: list[LayerKV]
    token_ids: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int64))
    positions: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int64))

    def __post_init__(self) -> None:
        self.token_ids = np.asarray(self.token_ids, dtype=np.int64)
        self.positions = np.asarray(self.positions, dtype=np.int64)
        if self.layers:
            n = self.layers[0].n_tokens
            for i, layer in enumerate(self.layers):
                if layer.n_tokens != n:
                    raise ValueError(
                        f"layer {i} has {layer.n_tokens} tokens, expected {n}"
                    )
            if self.token_ids.size and self.token_ids.size != n:
                raise ValueError("token_ids length does not match KV tensors")
            if self.positions.size and self.positions.size != n:
                raise ValueError("positions length does not match KV tensors")

    @property
    def n_layers(self) -> int:
        return len(self.layers)

    @property
    def n_tokens(self) -> int:
        return self.layers[0].n_tokens if self.layers else 0

    def copy(self) -> "KVCache":
        return KVCache(
            [layer.copy() for layer in self.layers],
            self.token_ids.copy(),
            self.positions.copy(),
        )

    def slice_tokens(self, start: int, stop: int) -> "KVCache":
        return KVCache(
            [layer.slice(start, stop) for layer in self.layers],
            self.token_ids[start:stop].copy() if self.token_ids.size else self.token_ids,
            self.positions[start:stop].copy() if self.positions.size else self.positions,
        )

    def nbytes(self, dtype_bytes: int = 2) -> int:
        return sum(layer.nbytes(dtype_bytes) for layer in self.layers)

    @staticmethod
    def concat(parts: list["KVCache"]) -> "KVCache":
        """Concatenate chunk caches along the token axis."""
        if not parts:
            raise ValueError("cannot concatenate an empty list of KVCache")
        n_layers = parts[0].n_layers
        for part in parts:
            if part.n_layers != n_layers:
                raise ValueError("all KVCache parts must have the same layer count")
        layers = [
            LayerKV.concat([part.layers[i] for part in parts]) for i in range(n_layers)
        ]
        token_ids = np.concatenate([part.token_ids for part in parts])
        positions = np.concatenate([part.positions for part in parts])
        return KVCache(layers, token_ids, positions)
