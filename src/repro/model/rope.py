"""Rotary positional embeddings (RoPE) and positional re-alignment.

CacheBlend stores chunk KV caches computed at one absolute position and later
reuses them at a different position.  Because RoPE attention scores depend only
on *relative* position (paper Appendix A), the stored keys can be re-aligned by
rotating them by the position delta — ``shift_keys`` implements exactly that
correction.
"""

from __future__ import annotations

import numpy as np


def rope_frequencies(head_dim: int, theta: float = 10_000.0) -> np.ndarray:
    """Per-pair rotation frequencies ``theta_i = theta ** (-2i/d)``."""
    if head_dim % 2 != 0:
        raise ValueError("head_dim must be even")
    exponents = np.arange(0, head_dim, 2, dtype=np.float64) / head_dim
    return theta ** (-exponents)


def rope_angles(positions: np.ndarray, head_dim: int, theta: float = 10_000.0) -> np.ndarray:
    """Rotation angles of shape ``(len(positions), head_dim // 2)``."""
    freqs = rope_frequencies(head_dim, theta)
    positions = np.asarray(positions, dtype=np.float64)
    return positions[:, None] * freqs[None, :]


def apply_rope(x: np.ndarray, positions: np.ndarray, theta: float = 10_000.0) -> np.ndarray:
    """Apply rotary embedding to *x*.

    Parameters
    ----------
    x:
        Array of shape ``(n_tokens, n_heads, head_dim)``.  The output keeps
        this array's floating dtype (the model's compute dtype); only the
        rotation angles are evaluated in float64.
    positions:
        Integer positions of shape ``(n_tokens,)``.
    """
    x = np.asarray(x)
    if not np.issubdtype(x.dtype, np.floating):
        x = x.astype(np.float64)
    n_tokens, _, head_dim = x.shape
    if len(positions) != n_tokens:
        raise ValueError(f"positions length {len(positions)} != n_tokens {n_tokens}")
    angles = rope_angles(positions, head_dim, theta)  # (T, d/2)
    cos = np.cos(angles)[:, None, :].astype(x.dtype)
    sin = np.sin(angles)[:, None, :].astype(x.dtype)
    x_even = x[..., 0::2]
    x_odd = x[..., 1::2]
    out = np.empty_like(x)
    out[..., 0::2] = x_even * cos - x_odd * sin
    out[..., 1::2] = x_even * sin + x_odd * cos
    return out


def shift_keys(
    keys: np.ndarray,
    old_positions: np.ndarray,
    new_positions: np.ndarray,
    theta: float = 10_000.0,
) -> np.ndarray:
    """Re-align RoPE-rotated keys from *old_positions* to *new_positions*.

    Rotating a key embedded at position ``m`` by the delta ``m' - m`` produces
    the key as if it had been embedded at ``m'``.  This is the positional
    correction CacheBlend applies when a cached chunk is placed at a new
    offset inside the fused input (paper §4.3 footnote and Appendix A).
    """
    old_positions = np.asarray(old_positions)
    new_positions = np.asarray(new_positions)
    if old_positions.shape != new_positions.shape:
        raise ValueError("old and new positions must have the same shape")
    delta = new_positions.astype(np.int64) - old_positions.astype(np.int64)
    return apply_rope(keys, delta, theta)
