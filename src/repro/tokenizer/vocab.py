"""Vocabulary with stable hashing.

Token ids must be stable across runs and processes (KV cache keys are derived
from token ids), so the vocabulary maps words to ids with a deterministic FNV-1a
hash rather than relying on insertion order or Python's randomized ``hash``.
"""

from __future__ import annotations

from dataclasses import dataclass, field


_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_FNV_MASK = 0xFFFFFFFFFFFFFFFF


def stable_hash(text: str) -> int:
    """Return a deterministic 64-bit FNV-1a hash of *text*."""
    value = _FNV_OFFSET
    for byte in text.encode("utf-8"):
        value ^= byte
        value = (value * _FNV_PRIME) & _FNV_MASK
    return value


@dataclass(frozen=True)
class SpecialTokens:
    """Ids of the reserved special tokens.

    The special ids occupy the lowest slots of the vocabulary so that hashed
    word ids never collide with them.
    """

    pad: int = 0
    bos: int = 1
    eos: int = 2
    sep: int = 3
    unk: int = 4

    @property
    def count(self) -> int:
        return 5

    def as_dict(self) -> dict[str, int]:
        return {
            "<pad>": self.pad,
            "<bos>": self.bos,
            "<eos>": self.eos,
            "<sep>": self.sep,
            "<unk>": self.unk,
        }


@dataclass
class Vocabulary:
    """Hash-bucketed vocabulary of a fixed size.

    Words are assigned ids deterministically via ``stable_hash(word) % buckets``.
    A reverse map remembers the first word observed for each bucket so decoded
    text remains readable; collisions are tolerated (they only affect decoding
    of rare words, never encoding stability).
    """

    size: int = 32_768
    special: SpecialTokens = field(default_factory=SpecialTokens)

    def __post_init__(self) -> None:
        if self.size <= self.special.count:
            raise ValueError(
                f"vocabulary size {self.size} must exceed the "
                f"{self.special.count} reserved special tokens"
            )
        self._reverse: dict[int, str] = {
            token_id: text for text, token_id in self.special.as_dict().items()
        }

    @property
    def num_buckets(self) -> int:
        """Number of ids available to regular (non-special) words."""
        return self.size - self.special.count

    def word_to_id(self, word: str) -> int:
        """Return the stable id of *word*, registering it for decoding."""
        if not word:
            return self.special.unk
        token_id = self.special.count + stable_hash(word) % self.num_buckets
        self._reverse.setdefault(token_id, word)
        return token_id

    def id_to_word(self, token_id: int) -> str:
        """Return a word for *token_id* (``<unk>`` if never observed)."""
        return self._reverse.get(token_id, "<unk>")

    def __contains__(self, token_id: int) -> bool:
        return 0 <= token_id < self.size

    def __len__(self) -> int:
        return self.size
