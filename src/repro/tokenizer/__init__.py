"""Deterministic tokenizer substrate.

The original CacheBlend implementation relies on the HuggingFace tokenizers of
the evaluated models.  Offline, this package provides a deterministic
word-level tokenizer with a stable hashing vocabulary so that the same text
always maps to the same token ids across processes and runs.
"""

from repro.tokenizer.vocab import Vocabulary, SpecialTokens
from repro.tokenizer.tokenizer import Tokenizer

__all__ = ["Vocabulary", "SpecialTokens", "Tokenizer"]
