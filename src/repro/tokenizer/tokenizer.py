"""Word-level tokenizer with deterministic ids.

The tokenizer lower-cases text, splits on whitespace and punctuation, and maps
every word to a stable id through :class:`~repro.tokenizer.vocab.Vocabulary`.
It intentionally mirrors the small API surface the rest of the system needs
from a HuggingFace tokenizer: ``encode``, ``decode``, ``tokenize`` and the
special-token ids.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.tokenizer.vocab import SpecialTokens, Vocabulary

_TOKEN_PATTERN = re.compile(r"[a-z0-9]+|[^\sa-z0-9]")


@dataclass
class Tokenizer:
    """Deterministic word-level tokenizer.

    Parameters
    ----------
    vocab_size:
        Total vocabulary size, including the reserved special tokens.  The
        model's embedding table must be at least this large.
    lowercase:
        Whether to lower-case text before splitting (default ``True``).
    """

    vocab_size: int = 32_768
    lowercase: bool = True
    vocab: Vocabulary = field(init=False)

    def __post_init__(self) -> None:
        self.vocab = Vocabulary(size=self.vocab_size)

    @property
    def special(self) -> SpecialTokens:
        return self.vocab.special

    @property
    def pad_id(self) -> int:
        return self.special.pad

    @property
    def bos_id(self) -> int:
        return self.special.bos

    @property
    def eos_id(self) -> int:
        return self.special.eos

    @property
    def sep_id(self) -> int:
        return self.special.sep

    def tokenize(self, text: str) -> list[str]:
        """Split *text* into word/punctuation pieces."""
        if self.lowercase:
            text = text.lower()
        return _TOKEN_PATTERN.findall(text)

    def encode(self, text: str, add_bos: bool = False, add_eos: bool = False) -> list[int]:
        """Encode *text* into a list of token ids."""
        ids = [self.vocab.word_to_id(piece) for piece in self.tokenize(text)]
        if add_bos:
            ids.insert(0, self.bos_id)
        if add_eos:
            ids.append(self.eos_id)
        return ids

    def decode(self, ids: list[int], skip_special: bool = True) -> str:
        """Decode token ids back into a whitespace-joined string."""
        words = []
        special_ids = set(self.special.as_dict().values())
        for token_id in ids:
            if skip_special and token_id in special_ids:
                continue
            words.append(self.vocab.id_to_word(int(token_id)))
        return " ".join(words)

    def count_tokens(self, text: str) -> int:
        """Return the number of tokens *text* encodes to (no special tokens)."""
        return len(self.tokenize(text))

    def __len__(self) -> int:
        return self.vocab_size
