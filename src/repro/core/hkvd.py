"""High-KV-Deviation (HKVD) token selection with gradual filtering.

Paper §4.3: recomputing the tokens whose KV deviates most from the
full-prefill reference removes most of the attention deviation (Insight 1),
and those tokens stay roughly the same across layers (Insight 2).  CacheBlend
therefore fully recomputes layer 1, ranks tokens by their measured KV
deviation, and on each subsequent layer recomputes a gradually shrinking
subset of the previously selected tokens (Figure 9).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


def ratio_schedule(
    target_ratio: float, n_layers: int, boost: float = 1.5, floor: float = 0.8
) -> list[float]:
    """Per-layer recompute ratios whose average approximates *target_ratio*.

    The first selective layer uses ``boost * target_ratio`` (picking slightly
    more candidates than needed, as the paper suggests) and the ratio decays
    linearly to ``floor * target_ratio`` on the last layer.  Ratios are clipped
    to [0, 1].
    """
    if not 0.0 <= target_ratio <= 1.0:
        raise ValueError(f"target_ratio must be in [0, 1], got {target_ratio}")
    if n_layers < 1:
        raise ValueError("n_layers must be >= 1")
    if boost < floor:
        raise ValueError("boost must be >= floor")
    if n_layers == 1:
        return [min(1.0, target_ratio * boost)]
    start = target_ratio * boost
    end = target_ratio * floor
    schedule = np.linspace(start, end, n_layers)
    return [float(min(1.0, max(0.0, r))) for r in schedule]


def select_top_fraction(
    deviation: np.ndarray,
    ratio: float,
    candidates: np.ndarray | None = None,
    always_include: np.ndarray | None = None,
) -> np.ndarray:
    """Indices of the top-*ratio* fraction of tokens by deviation.

    Parameters
    ----------
    deviation:
        Per-token deviation over the whole sequence (length ``n_tokens``).
    ratio:
        Fraction of the *whole sequence* to select.
    candidates:
        If given, selection is restricted to these indices (gradual
        filtering: each layer selects among the previous layer's tokens).
    always_include:
        Indices always added to the selection regardless of deviation (the
        new suffix/query tokens, which have no precomputed KV at all).

    Returns sorted unique indices.
    """
    deviation = np.asarray(deviation, dtype=np.float64)
    n_tokens = deviation.size
    if candidates is None:
        candidates = np.arange(n_tokens)
    else:
        candidates = np.asarray(candidates, dtype=np.int64)
    n_select = int(round(ratio * n_tokens))
    n_select = max(0, min(n_select, candidates.size))
    if n_select > 0:
        order = np.argsort(deviation[candidates], kind="stable")[::-1]
        chosen = candidates[order[:n_select]]
    else:
        chosen = np.empty(0, dtype=np.int64)
    if always_include is not None and np.asarray(always_include).size:
        chosen = np.concatenate([chosen, np.asarray(always_include, dtype=np.int64)])
    return np.unique(chosen)


@dataclass
class HKVDSelector:
    """Stateful HKVD selection across layers (gradual filtering).

    Usage: call :meth:`first_selection` with the per-token deviation measured
    on the fully recomputed first layer, then :meth:`next_selection` once per
    subsequent layer with the deviation measured on the tokens recomputed on
    that layer.
    """

    target_ratio: float
    n_layers: int
    boost: float = 1.5
    floor: float = 0.8
    always_include: np.ndarray | None = None
    schedule: list[float] = field(init=False)
    history: list[np.ndarray] = field(init=False, default_factory=list)
    _layer: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        # The schedule covers layers 1..n_layers-1 (layer 0 is fully
        # recomputed); guard against single-layer models.
        selective_layers = max(1, self.n_layers - 1)
        self.schedule = ratio_schedule(
            self.target_ratio, selective_layers, self.boost, self.floor
        )

    def _ratio_for(self, step: int) -> float:
        if step < len(self.schedule):
            return self.schedule[step]
        return self.schedule[-1]

    def first_selection(self, deviation: np.ndarray) -> np.ndarray:
        """Select HKVD tokens from the fully recomputed first layer."""
        self._layer = 0
        self.history = []
        selected = select_top_fraction(
            deviation,
            self._ratio_for(0),
            candidates=None,
            always_include=self.always_include,
        )
        self.history.append(selected)
        return selected

    def next_selection(self, deviation: np.ndarray) -> np.ndarray:
        """Select the next layer's HKVD tokens among the current ones."""
        if not self.history:
            raise RuntimeError("first_selection must be called before next_selection")
        self._layer += 1
        previous = self.history[-1]
        selected = select_top_fraction(
            deviation,
            self._ratio_for(self._layer),
            candidates=previous,
            always_include=self.always_include,
        )
        self.history.append(selected)
        return selected

    @property
    def selected_counts(self) -> list[int]:
        """Number of tokens selected at each step so far."""
        return [len(indices) for indices in self.history]
