"""Layer-wise pipelining of KV loading and selective recompute (paper §5).

CacheBlend starts recomputing layer ``i`` as soon as layer ``i``'s cached KV
has been loaded into GPU memory, while layer ``i+1``'s KV is being loaded in
the background.  If per-layer loading takes at least as long as per-layer
recompute, the recompute cost is completely hidden and the TTFT equals the
loading time (plus one layer of compute at the tail).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class PipelineTrace:
    """Per-layer schedule of the load/compute pipeline.

    ``load_start[i]``/``load_end[i]`` bound the loading of layer ``i``'s KV;
    ``compute_start[i]``/``compute_end[i]`` bound its selective recompute.
    """

    load_start: np.ndarray
    load_end: np.ndarray
    compute_start: np.ndarray
    compute_end: np.ndarray

    @property
    def total_time(self) -> float:
        return float(self.compute_end[-1]) if self.compute_end.size else 0.0

    @property
    def stall_time(self) -> float:
        """Total time compute spent waiting for loads (pipeline bubbles)."""
        return self.stall_time_since(0.0)

    def stall_time_since(self, origin: float) -> float:
        """Stall with the head wait measured from *origin* instead of 0.

        Inside a batch the compute stream only becomes available to a request
        when the previous request finishes; waiting for *that* is queueing,
        not load stall, so per-request stall must measure the head bubble
        from the hand-over point (the previous request's last compute end).
        """
        gaps = self.compute_start[1:] - self.compute_end[:-1]
        head = (
            max(0.0, float(self.compute_start[0]) - origin)
            if self.compute_start.size
            else 0.0
        )
        return float(np.sum(np.maximum(gaps, 0.0)) + head)


def pipeline_schedule(load_times: list[float], compute_times: list[float]) -> PipelineTrace:
    """Schedule loads and computes with one layer of lookahead.

    Loads are sequential on the storage device.  Compute of layer ``i`` starts
    once (a) layer ``i``'s load finished and (b) layer ``i-1``'s compute
    finished.  This mirrors the two-thread implementation described in §6.
    """
    load_times = [float(t) for t in load_times]
    compute_times = [float(t) for t in compute_times]
    if len(load_times) != len(compute_times):
        raise ValueError("load_times and compute_times must have the same length")
    n = len(load_times)
    if n == 0:
        empty = np.zeros(0)
        return PipelineTrace(empty, empty, empty, empty)
    if any(t < 0 for t in load_times) or any(t < 0 for t in compute_times):
        raise ValueError("times must be non-negative")

    load_start = np.zeros(n)
    load_end = np.zeros(n)
    compute_start = np.zeros(n)
    compute_end = np.zeros(n)
    for i in range(n):
        load_start[i] = load_end[i - 1] if i > 0 else 0.0
        load_end[i] = load_start[i] + load_times[i]
        prev_compute_end = compute_end[i - 1] if i > 0 else 0.0
        compute_start[i] = max(load_end[i], prev_compute_end)
        compute_end[i] = compute_start[i] + compute_times[i]
    return PipelineTrace(load_start, load_end, compute_start, compute_end)


def pipelined_time(load_times: list[float], compute_times: list[float]) -> float:
    """Total delay with load/compute pipelining."""
    return pipeline_schedule(load_times, compute_times).total_time


def sequential_time(load_times: list[float], compute_times: list[float]) -> float:
    """Total delay without pipelining (load everything, then compute)."""
    if len(load_times) != len(compute_times):
        raise ValueError("load_times and compute_times must have the same length")
    return float(sum(load_times) + sum(compute_times))


def pipeline_speedup(load_times: list[float], compute_times: list[float]) -> float:
    """Ratio of sequential to pipelined delay (>= 1)."""
    pipelined = pipelined_time(load_times, compute_times)
    if pipelined == 0.0:
        return 1.0
    return sequential_time(load_times, compute_times) / pipelined


# ----------------------------------------------------------------------
# Cross-request pipelining (multi-request extension of the §5 schedule)
# ----------------------------------------------------------------------
def cross_request_schedule(
    load_times: list[list[float]], compute_times: list[list[float]]
) -> list[PipelineTrace]:
    """Schedule a queue of requests over one loader and one compute stream.

    The loader streams layers in request order: while request ``r``'s tail
    layers recompute, it is already loading request ``r+1``'s layer 0 — the
    cross-request extension of the §5 pipeline that
    :meth:`~repro.core.executor.PipelinedExecutor.execute_batch` executes
    with real threads (the executor additionally bounds the loader to one
    request of lookahead for memory; this model's unbounded loader is its
    lower envelope).  Compute is a single stream: layer ``(r, i)`` starts
    once its own load finished and the previous layer (possibly of the
    previous request) finished computing.

    Returns one :class:`PipelineTrace` per request, all sharing the batch's
    time origin, so request ``r``'s ``total_time`` is its completion offset
    in the batch (queueing behind earlier requests included).
    """
    if len(load_times) != len(compute_times):
        raise ValueError("need one compute list per load list")
    for loads, computes in zip(load_times, compute_times):
        if len(loads) != len(computes):
            raise ValueError("each request needs equal load/compute layer counts")
    flat_loads = [t for loads in load_times for t in loads]
    flat_computes = [t for computes in compute_times for t in computes]
    flat = pipeline_schedule(flat_loads, flat_computes)
    traces: list[PipelineTrace] = []
    offset = 0
    for loads in load_times:
        n = len(loads)
        traces.append(
            PipelineTrace(
                load_start=flat.load_start[offset : offset + n],
                load_end=flat.load_end[offset : offset + n],
                compute_start=flat.compute_start[offset : offset + n],
                compute_end=flat.compute_end[offset : offset + n],
            )
        )
        offset += n
    return traces


def cross_request_pipelined_time(
    load_times: list[list[float]], compute_times: list[list[float]]
) -> float:
    """Makespan of the whole queue under cross-request pipelining."""
    traces = cross_request_schedule(load_times, compute_times)
    return max((t.total_time for t in traces), default=0.0)


def cross_request_sequential_time(
    load_times: list[list[float]], compute_times: list[list[float]]
) -> float:
    """Makespan when every request loads and computes strictly in turn."""
    if len(load_times) != len(compute_times):
        raise ValueError("need one compute list per load list")
    return float(
        sum(
            sequential_time(loads, computes)
            for loads, computes in zip(load_times, compute_times)
        )
    )
