"""KV deviation and attention deviation metrics (paper §4.1).

* *KV deviation* of token ``j`` on layer ``i`` is the difference between a KV
  cache entry and the fully-recomputed reference entry,
  ``Δkv(KV_i, KV_full_i)[j]``.  CacheBlend uses it to rank tokens and pick the
  High-KV-Deviation (HKVD) tokens to recompute.
* *Attention deviation* of a layer's forward attention matrix is the L2 norm
  of its difference with the full-prefill forward attention matrix,
  ``Δattn(A_i, A_full_i)``.  It is the quantity CacheBlend tries to minimise.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from repro.model.tensors import KVCache, LayerKV


def token_kv_deviation(layer_kv: LayerKV, reference: LayerKV) -> np.ndarray:
    """Per-token KV deviation between *layer_kv* and the *reference* layer.

    Returns an array of shape ``(n_tokens,)`` where entry ``j`` is the L2 norm
    of the difference of token ``j``'s key and value vectors (flattened over
    heads), matching the paper's per-token, per-layer ``Δkv`` definition.
    """
    if layer_kv.keys.shape != reference.keys.shape:
        raise ValueError(
            f"shape mismatch: {layer_kv.keys.shape} vs {reference.keys.shape}"
        )
    key_diff = layer_kv.keys - reference.keys
    value_diff = layer_kv.values - reference.values
    n_tokens = key_diff.shape[0]
    key_norm = np.linalg.norm(key_diff.reshape(n_tokens, -1), axis=1)
    value_norm = np.linalg.norm(value_diff.reshape(n_tokens, -1), axis=1)
    return key_norm + value_norm


def kv_deviation(cache: KVCache, reference: KVCache) -> np.ndarray:
    """Per-layer, per-token KV deviation, shape ``(n_layers, n_tokens)``."""
    if cache.n_layers != reference.n_layers:
        raise ValueError("layer count mismatch between cache and reference")
    return np.stack(
        [
            token_kv_deviation(cache.layers[i], reference.layers[i])
            for i in range(cache.n_layers)
        ]
    )


def attention_deviation(
    attention: np.ndarray, reference: np.ndarray, normalise: bool = True
) -> float:
    """Attention deviation ``Δattn(A, A_full)`` between two forward matrices.

    With ``normalise=True`` (default) the L2 norm of the difference is divided
    by the L2 norm of the reference so results are comparable across models
    and context lengths (the paper's Figure 6 plots values in [0, 1]).
    """
    attention = np.asarray(attention, dtype=np.float64)
    reference = np.asarray(reference, dtype=np.float64)
    if attention.shape != reference.shape:
        raise ValueError(
            f"attention shape {attention.shape} != reference shape {reference.shape}"
        )
    diff = float(np.linalg.norm(attention - reference))
    if not normalise:
        return diff
    ref_norm = float(np.linalg.norm(reference))
    if ref_norm == 0.0:
        return 0.0
    return diff / ref_norm


def mean_attention_deviation(
    attentions: list[np.ndarray], references: list[np.ndarray], normalise: bool = True
) -> float:
    """Average attention deviation across layers (as plotted in Figure 6)."""
    if len(attentions) != len(references):
        raise ValueError("layer count mismatch between attention lists")
    if not attentions:
        return 0.0
    deviations = [
        attention_deviation(a, r, normalise=normalise)
        for a, r in zip(attentions, references)
    ]
    return float(np.mean(deviations))


def layer_rank_correlation(deviation_a: np.ndarray, deviation_b: np.ndarray) -> float:
    """Spearman rank correlation of per-token deviations on two layers.

    This is the statistic of the paper's Figure 8, used to justify that HKVD
    tokens picked on one layer remain HKVD tokens on the next.
    """
    deviation_a = np.asarray(deviation_a, dtype=np.float64)
    deviation_b = np.asarray(deviation_b, dtype=np.float64)
    if deviation_a.shape != deviation_b.shape:
        raise ValueError("deviation arrays must have the same shape")
    if deviation_a.size < 2:
        raise ValueError("need at least two tokens to compute a rank correlation")
    if np.allclose(deviation_a, deviation_a[0]) or np.allclose(deviation_b, deviation_b[0]):
        return 0.0
    result = stats.spearmanr(deviation_a, deviation_b)
    return float(result.correlation)


def deviation_cdf(deviation: np.ndarray, n_points: int = 50) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CDF of per-token KV deviation (paper Figure 7).

    Returns ``(values, cumulative_fraction)`` suitable for plotting or for
    checking the heavy-tail property (a small fraction of tokens carries most
    of the deviation).
    """
    deviation = np.sort(np.asarray(deviation, dtype=np.float64))
    if deviation.size == 0:
        raise ValueError("deviation array is empty")
    quantiles = np.linspace(0.0, 1.0, n_points)
    values = np.quantile(deviation, quantiles)
    return values, quantiles
