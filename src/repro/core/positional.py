"""Positional re-alignment of precomputed chunk KV caches.

A chunk's KV cache is precomputed at some absolute position (usually starting
at 0).  When the chunk is reused as the ``n``-th chunk of a fused input, its
keys must be re-rotated so their RoPE embedding matches the new absolute
positions.  Because RoPE attention depends only on relative positions (paper
Appendix A), multiplying the stored keys by the rotation of the position delta
is an exact correction with negligible cost.
"""

from __future__ import annotations

import numpy as np

from repro.model.rope import shift_keys
from repro.model.tensors import KVCache, LayerKV


def realign_chunk_cache(
    chunk_cache: KVCache, new_start: int, rope_theta: float = 10_000.0
) -> KVCache:
    """Return a copy of *chunk_cache* re-aligned to start at *new_start*.

    Keys are rotated by the position delta; values are position-independent
    and are reused as-is.  The returned cache's ``positions`` reflect the new
    placement.
    """
    if chunk_cache.n_tokens == 0:
        raise ValueError("cannot re-align an empty chunk cache")
    old_positions = chunk_cache.positions
    new_positions = np.arange(
        new_start, new_start + chunk_cache.n_tokens, dtype=np.int64
    )
    if np.array_equal(old_positions, new_positions):
        return chunk_cache.copy()
    layers = [
        LayerKV(
            shift_keys(layer.keys, old_positions, new_positions, rope_theta),
            layer.values.copy(),
        )
        for layer in chunk_cache.layers
    ]
    return KVCache(layers, chunk_cache.token_ids.copy(), new_positions)


def concat_chunk_caches(
    chunk_caches: list[KVCache], rope_theta: float = 10_000.0
) -> KVCache:
    """Re-align and concatenate chunk caches into one contiguous cache.

    Chunk ``k`` is placed right after chunk ``k-1``; this is the
    "full KV reuse" layout (PromptCache-style) that CacheBlend starts from
    before selectively recomputing tokens.
    """
    if not chunk_caches:
        raise ValueError("need at least one chunk cache to concatenate")
    aligned = []
    offset = 0
    for cache in chunk_caches:
        aligned.append(realign_chunk_cache(cache, offset, rope_theta))
        offset += cache.n_tokens
    return KVCache.concat(aligned)
