"""Executed layer-wise pipelining of KV loading and selective recompute.

:mod:`repro.core.pipeline` *models* the paper's §5 schedule analytically; this
module actually **runs** it.  A :class:`PipelinedExecutor` drives
:meth:`KVFusor.fuse_layers` while a background loader thread streams each
layer's serialized KV off a (simulated) storage device:

* every layer's reused KV exists as raw fp16 bytes (the store format of
  :mod:`repro.kvstore.serialization`); *loading* a layer means sleeping for
  the device's transfer delay, then decoding (``np.frombuffer``), RoPE
  re-aligning and padding the chunk entries — real work, on a real thread;
* the fusor's compute for layer ``i`` blocks until layer ``i``'s load has
  finished, exactly the two-thread double buffer the paper describes in §6;
* every load and compute span is measured with ``time.perf_counter`` and
  reported as a :class:`~repro.core.pipeline.PipelineTrace` — the same type
  the analytical model emits, but with *measured* timestamps.

``pipelined=False`` runs the identical code path without the background
thread (each layer is loaded synchronously right before its compute), which
is the sequential baseline the measured speedup is reported against.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

import numpy as np

from repro.core.fusor import (
    FusionLayout,
    FusionResult,
    FusorConfig,
    KVFusor,
    LayerProvider,
    place_chunk_layer,
)
from repro.core.pipeline import PipelineTrace
from repro.kvstore.device import StorageDevice, get_device
from repro.kvstore.serialization import pack_layer_kv, unpack_layer_kv
from repro.model.tensors import KVCache, LayerKV
from repro.model.transformer import TransformerModel


@dataclass
class ExecutionResult:
    """One executed (not modeled) fusion pass plus its measured schedule."""

    fusion: FusionResult
    trace: PipelineTrace
    pipelined: bool
    #: Simulated device transfer delay injected per layer (seconds).
    simulated_load_delay: float

    @property
    def load_times(self) -> np.ndarray:
        """Measured per-layer load durations (transfer + decode + re-align)."""
        return self.trace.load_end - self.trace.load_start

    @property
    def compute_times(self) -> np.ndarray:
        """Measured per-layer selective-recompute durations."""
        return self.trace.compute_end - self.trace.compute_start

    @property
    def total_time(self) -> float:
        """Measured wall-clock of the whole fuse (seconds)."""
        return self.trace.total_time

    @property
    def stall_time(self) -> float:
        """Measured time compute spent waiting on loads (incl. the first load)."""
        return self.trace.stall_time


class _SpanRecorder:
    """Records per-layer compute spans relative to the executor's clock origin."""

    def __init__(self, n_layers: int, origin: float) -> None:
        self.origin = origin
        self.compute_start_at = np.zeros(n_layers)
        self.compute_end_at = np.zeros(n_layers)

    def compute_start(self, layer_idx: int) -> None:
        self.compute_start_at[layer_idx] = time.perf_counter() - self.origin

    def compute_end(self, layer_idx: int) -> None:
        self.compute_end_at[layer_idx] = time.perf_counter() - self.origin


class PipelinedExecutor:
    """Overlaps per-layer KV loading with selective recompute, for real.

    Parameters
    ----------
    model:
        The runnable proxy transformer the fusor computes with.
    fusor_config:
        Selective-recompute configuration (ratio, gradual filtering shape).
    device:
        Storage device (preset name or instance) whose read bandwidth and
        access latency set the simulated per-layer transfer delay.
    time_scale:
        Multiplier on the device transfer delay.  The proxy model's layers
        are tiny, so scaling lets experiments hit the load≈compute operating
        point the paper's pipelining targets without terabyte caches.
    layer_load_time:
        When set, a fixed simulated transfer delay in seconds per layer,
        overriding the device model entirely (used by the profile harness to
        calibrate loads against measured compute).
    """

    def __init__(
        self,
        model: TransformerModel,
        fusor_config: FusorConfig | None = None,
        device: StorageDevice | str = "nvme_ssd",
        time_scale: float = 1.0,
        layer_load_time: float | None = None,
    ) -> None:
        self.model = model
        self.fusor = KVFusor(model, fusor_config)
        self.device = device if isinstance(device, StorageDevice) else get_device(device)
        if time_scale < 0:
            raise ValueError("time_scale must be non-negative")
        if layer_load_time is not None and layer_load_time < 0:
            raise ValueError("layer_load_time must be non-negative")
        self.time_scale = time_scale
        self.layer_load_time = layer_load_time

    # ------------------------------------------------------------------
    def execute(
        self,
        chunk_caches: list[KVCache],
        suffix_token_ids: np.ndarray,
        recompute_ratio: float | None = None,
        pipelined: bool = True,
    ) -> ExecutionResult:
        """Fuse *chunk_caches* + suffix, measuring the load/compute schedule.

        With ``pipelined=True`` a background thread loads layer ``i+1, i+2,
        ...`` while layer ``i`` recomputes; with ``pipelined=False`` each
        layer is loaded synchronously immediately before its compute.  Both
        paths run the identical fusor numerics and return identical
        :class:`FusionResult` contents (up to float scheduling noise — the
        numerics are deterministic).
        """
        cfg = self.model.config
        layout = self.fusor.plan_layout(chunk_caches, suffix_token_ids)
        for cache in chunk_caches:
            shape = cache.layers[0].keys.shape
            if shape[1:] != (cfg.n_kv_heads, cfg.head_dim):
                raise ValueError(
                    f"chunk cache KV shape {shape[1:]} does not match model "
                    f"({cfg.n_kv_heads}, {cfg.head_dim})"
                )

        # The store's view of the caches: raw fp16 bytes per (layer, chunk),
        # exactly what serialize_kv would have persisted.
        blobs: list[list[bytes]] = [
            [pack_layer_kv(cache.layers[i]) for cache in chunk_caches]
            for i in range(cfg.n_layers)
        ]
        chunk_positions = [cache.positions for cache in chunk_caches]
        layer_nbytes = sum(len(b) for b in blobs[0]) if blobs else 0
        delay = (
            self.layer_load_time
            if self.layer_load_time is not None
            else self.device.read_time(layer_nbytes) * self.time_scale
        )

        n_layers = cfg.n_layers
        load_start = np.zeros(n_layers)
        load_end = np.zeros(n_layers)
        slots: list[LayerKV | None] = [None] * n_layers
        ready = [threading.Event() for _ in range(n_layers)]
        load_error: list[BaseException] = []

        origin = time.perf_counter()
        recorder = _SpanRecorder(n_layers, origin)

        def load_layer(layer_idx: int) -> None:
            load_start[layer_idx] = time.perf_counter() - origin
            if delay > 0.0:
                time.sleep(delay)  # simulated device transfer
            slots[layer_idx] = self._decode_layer(
                blobs[layer_idx], chunk_positions, layout
            )
            load_end[layer_idx] = time.perf_counter() - origin
            ready[layer_idx].set()

        if pipelined:

            def loader() -> None:
                try:
                    for layer_idx in range(n_layers):
                        load_layer(layer_idx)
                except BaseException as exc:  # surface in the compute thread
                    load_error.append(exc)
                    for event in ready:
                        event.set()

            thread = threading.Thread(target=loader, name="kv-loader", daemon=True)
            thread.start()

            def provider(layer_idx: int) -> LayerKV:
                ready[layer_idx].wait()
                if load_error:
                    raise load_error[0]
                layer = slots[layer_idx]
                slots[layer_idx] = None  # the fusor consumes the buffer
                assert layer is not None
                return layer

        else:
            thread = None

            def provider(layer_idx: int) -> LayerKV:
                load_layer(layer_idx)
                layer = slots[layer_idx]
                slots[layer_idx] = None
                assert layer is not None
                return layer

        provider_typed: LayerProvider = provider
        fusion = self.fusor.fuse_layers(
            provider_typed, layout, recompute_ratio=recompute_ratio, recorder=recorder
        )
        if thread is not None:
            thread.join()

        trace = PipelineTrace(
            load_start=load_start,
            load_end=load_end,
            compute_start=recorder.compute_start_at,
            compute_end=recorder.compute_end_at,
        )
        return ExecutionResult(
            fusion=fusion,
            trace=trace,
            pipelined=pipelined,
            simulated_load_delay=float(delay),
        )

    # ------------------------------------------------------------------
    def _decode_layer(
        self,
        layer_blobs: list[bytes],
        chunk_positions: list[np.ndarray],
        layout: FusionLayout,
    ) -> LayerKV:
        """Decode one layer's blobs and assemble the padded reused buffers.

        This is the per-layer "load" work that overlaps with compute:
        ``np.frombuffer`` decode, RoPE re-alignment of the keys to the fused
        offsets, and the scatter into the zero-padded ``(n_total, ...)``
        buffers the fusor merges into.
        """
        cfg = self.model.config
        n_total = layout.n_tokens
        keys = np.zeros((n_total, cfg.n_kv_heads, cfg.head_dim), dtype=cfg.np_dtype)
        values = np.zeros_like(keys)
        for blob, old_positions, offset in zip(
            layer_blobs, chunk_positions, layout.chunk_offsets
        ):
            layer = unpack_layer_kv(
                blob, old_positions.size, cfg.n_kv_heads, cfg.head_dim
            )
            place_chunk_layer(keys, values, layer, old_positions, offset, cfg.rope_theta)
        return LayerKV(keys, values)
