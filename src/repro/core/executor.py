"""Executed layer-wise pipelining of KV loading and selective recompute.

:mod:`repro.core.pipeline` *models* the paper's §5 schedule analytically; this
module actually **runs** it.  A :class:`PipelinedExecutor` drives
:meth:`KVFusor.fuse_layers` while a background loader thread streams each
layer's serialized KV off a (simulated) storage device:

* every layer's reused KV exists as raw bytes in the store's wire precision
  (fp16 by default; fp32/int8/per-layer mixed under a
  :class:`~repro.kvstore.precision.PrecisionPolicy` — the formats of
  :mod:`repro.kvstore.serialization`); *loading* a layer means sleeping for
  the device's transfer delay priced at that layer's payload width, then
  decoding (``np.frombuffer``), RoPE re-aligning and padding the chunk
  entries — real work, on a real thread;
* the fusor's compute for layer ``i`` blocks until layer ``i``'s load has
  finished, exactly the two-thread double buffer the paper describes in §6;
* every load and compute span is measured with ``time.perf_counter`` and
  reported as a :class:`~repro.core.pipeline.PipelineTrace` — the same type
  the analytical model emits, but with *measured* timestamps.

``pipelined=False`` runs the identical code path without the background
thread (each layer is loaded synchronously right before its compute), which
is the sequential baseline the measured speedup is reported against.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

import numpy as np

from repro.core.fusor import (
    FusionLayout,
    FusionResult,
    FusorConfig,
    KVFusor,
    LayerProvider,
    place_chunk_layer,
)
from repro.core.pipeline import PipelineTrace
from repro.kvstore.device import StorageDevice, get_device
from repro.kvstore.precision import PrecisionPolicy
from repro.kvstore.serialization import pack_layer_kv_as, unpack_layer_kv_as
from repro.model.tensors import KVCache, LayerKV
from repro.model.transformer import TransformerModel


@dataclass
class ExecutionResult:
    """One executed (not modeled) fusion pass plus its measured schedule.

    Inside a batch (:meth:`PipelinedExecutor.execute_batch`) all trace
    timestamps share the batch's time origin, so :attr:`total_time` is the
    request's completion offset in the batch — queueing behind earlier
    requests included, which is exactly the measured serving delay.
    """

    fusion: FusionResult
    trace: PipelineTrace
    pipelined: bool
    #: Simulated device transfer delay injected per layer (seconds).
    simulated_load_delay: float
    #: Batch-origin offset at which the compute stream became available to
    #: this request (the previous request's last compute end; 0 for the
    #: first / a standalone request).
    queue_start: float = 0.0

    @property
    def load_times(self) -> np.ndarray:
        """Measured per-layer load durations (transfer + decode + re-align)."""
        return self.trace.load_end - self.trace.load_start

    @property
    def compute_times(self) -> np.ndarray:
        """Measured per-layer selective-recompute durations."""
        return self.trace.compute_end - self.trace.compute_start

    @property
    def total_time(self) -> float:
        """Measured wall-clock of the whole fuse (seconds)."""
        return self.trace.total_time

    @property
    def stall_time(self) -> float:
        """Measured time compute spent waiting on loads (incl. the first load).

        Waiting for earlier requests in a batch is queueing, not stall, so
        the head wait is measured from :attr:`queue_start`.
        """
        return self.trace.stall_time_since(self.queue_start)


@dataclass
class BatchExecutionResult:
    """A queue of requests executed back to back on one loader/compute pair."""

    requests: list[ExecutionResult]
    pipelined: bool
    #: Measured wall-clock from batch start to the last request's completion.
    makespan: float

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self):
        return iter(self.requests)

    @property
    def completion_offsets(self) -> list[float]:
        """Per-request completion offsets from the batch origin (seconds)."""
        return [r.total_time for r in self.requests]


@dataclass
class _RequestPlan:
    """Per-request load state; the packed blobs materialize lazily.

    Layout, positions and the simulated per-layer delays are prepared before
    the batch clock starts, but the raw store-precision blobs — the store's
    view of the caches — are packed only when the request is about to load
    (and dropped once its fusion consumed them), so a deep queue never holds
    every request's bytes at once.
    """

    layout: FusionLayout
    chunk_caches: list[KVCache]
    chunk_positions: list[np.ndarray]
    #: Per-layer wire dtypes from the executor's precision policy.
    layer_dtypes: tuple[str, ...]
    #: Per-layer simulated transfer delays (non-uniform under ``mixed``).
    layer_delays: tuple[float, ...]
    #: Mean per-layer delay, reported as ``simulated_load_delay``.
    delay: float
    recompute_ratio: float | None
    blobs: list[list[bytes]] | None = None

    def materialize(self, n_layers: int) -> None:
        """Pack the raw store-precision bytes per (layer, chunk) — what
        serialize_kv would have persisted."""
        if self.blobs is None:
            self.blobs = [
                [
                    pack_layer_kv_as(cache.layers[i], self.layer_dtypes[i])
                    for cache in self.chunk_caches
                ]
                for i in range(n_layers)
            ]

    def release_blobs(self) -> None:
        self.blobs = None


class _SpanRecorder:
    """Records per-layer compute spans relative to the executor's clock origin."""

    def __init__(self, n_layers: int, origin: float) -> None:
        self.origin = origin
        self.compute_start_at = np.zeros(n_layers)
        self.compute_end_at = np.zeros(n_layers)

    def compute_start(self, layer_idx: int) -> None:
        self.compute_start_at[layer_idx] = time.perf_counter() - self.origin

    def compute_end(self, layer_idx: int) -> None:
        self.compute_end_at[layer_idx] = time.perf_counter() - self.origin


class PipelinedExecutor:
    """Overlaps per-layer KV loading with selective recompute, for real.

    Parameters
    ----------
    model:
        The runnable proxy transformer the fusor computes with.
    fusor_config:
        Selective-recompute configuration (ratio, gradual filtering shape).
    device:
        Storage device (preset name or instance) whose read bandwidth and
        access latency set the simulated per-layer transfer delay.
    time_scale:
        Multiplier on the device transfer delay.  The proxy model's layers
        are tiny, so scaling lets experiments hit the load≈compute operating
        point the paper's pipelining targets without terabyte caches.
    layer_load_time:
        When set, a fixed simulated transfer delay in seconds per layer,
        overriding the device model entirely (used by the profile harness to
        calibrate loads against measured compute).
    precision:
        The store's :class:`~repro.kvstore.precision.PrecisionPolicy` (or a
        preset name).  Governs both the wire format each layer is packed and
        decoded with and the payload bytes each layer's transfer delay is
        priced at.  Defaults to uniform fp16, the historical behaviour.
    """

    def __init__(
        self,
        model: TransformerModel,
        fusor_config: FusorConfig | None = None,
        device: StorageDevice | str = "nvme_ssd",
        time_scale: float = 1.0,
        layer_load_time: float | None = None,
        precision: PrecisionPolicy | str | None = None,
    ) -> None:
        self.model = model
        self.fusor = KVFusor(model, fusor_config)
        self.device = device if isinstance(device, StorageDevice) else get_device(device)
        if time_scale < 0:
            raise ValueError("time_scale must be non-negative")
        if layer_load_time is not None and layer_load_time < 0:
            raise ValueError("layer_load_time must be non-negative")
        self.time_scale = time_scale
        self.layer_load_time = layer_load_time
        self.precision = PrecisionPolicy.get(precision)

    # ------------------------------------------------------------------
    def execute(
        self,
        chunk_caches: list[KVCache],
        suffix_token_ids: np.ndarray,
        recompute_ratio: float | None = None,
        pipelined: bool = True,
        extra_load_delay: float = 0.0,
    ) -> ExecutionResult:
        """Fuse *chunk_caches* + suffix, measuring the load/compute schedule.

        With ``pipelined=True`` a background thread loads layer ``i+1, i+2,
        ...`` while layer ``i`` recomputes; with ``pipelined=False`` each
        layer is loaded synchronously immediately before its compute.  Both
        paths run the identical fusor numerics and return identical
        :class:`FusionResult` contents (up to float scheduling noise — the
        numerics are deterministic).

        ``extra_load_delay`` adds that many seconds of simulated transfer to
        the request's loads (spread evenly across layers) — how the engine
        charges slow-tier store reads onto the measured pipeline.
        """
        batch = self.execute_batch(
            [(chunk_caches, suffix_token_ids)],
            recompute_ratio=recompute_ratio,
            pipelined=pipelined,
            extra_load_delay=[extra_load_delay],
        )
        return batch.requests[0]

    # ------------------------------------------------------------------
    def execute_batch(
        self,
        items: list[tuple[list[KVCache], np.ndarray]],
        recompute_ratio: float | list[float | None] | None = None,
        pipelined: bool = True,
        extra_load_delay: list[float] | None = None,
    ) -> BatchExecutionResult:
        """Fuse a queue of ``(chunk_caches, suffix_token_ids)`` requests.

        With ``pipelined=True`` one background loader thread streams layers
        *across request boundaries*: while request ``r``'s tail layers
        recompute, request ``r+1``'s layer 0 is already loading — the
        cross-request extension of the paper's §5 pipeline (modeled
        analytically by :func:`~repro.core.pipeline.cross_request_schedule`).
        The loader runs at most one request ahead of compute, bounding peak
        memory to ~two requests' decoded buffers regardless of queue depth.
        With ``pipelined=False`` every request loads and computes strictly in
        turn, which is the sequential baseline the batch speedup is reported
        against.

        ``recompute_ratio`` may be a single value for the whole queue or one
        value per request.  ``extra_load_delay`` (one value per request)
        adds simulated transfer seconds to a request's loads, spread evenly
        across its layers — the engine's channel for slow-tier store reads.
        All returned traces share the batch time origin.
        """
        if not items:
            raise ValueError("execute_batch needs at least one request")
        if isinstance(recompute_ratio, list):
            if len(recompute_ratio) != len(items):
                raise ValueError("need one recompute_ratio per request")
            ratios = list(recompute_ratio)
        else:
            ratios = [recompute_ratio] * len(items)
        if extra_load_delay is None:
            extras = [0.0] * len(items)
        else:
            if len(extra_load_delay) != len(items):
                raise ValueError("need one extra_load_delay per request")
            extras = [float(extra) for extra in extra_load_delay]

        plans = [
            self._plan_request(chunk_caches, suffix_ids, ratio, extra)
            for (chunk_caches, suffix_ids), ratio, extra in zip(items, ratios, extras)
        ]
        n_layers = self.model.config.n_layers
        n_requests = len(plans)
        load_start = [np.zeros(n_layers) for _ in range(n_requests)]
        load_end = [np.zeros(n_layers) for _ in range(n_requests)]
        slots: list[list[LayerKV | None]] = [[None] * n_layers for _ in range(n_requests)]
        ready = [
            [threading.Event() for _ in range(n_layers)] for _ in range(n_requests)
        ]
        load_error: list[BaseException] = []

        origin = time.perf_counter()

        def load_layer(req_idx: int, layer_idx: int) -> None:
            plan = plans[req_idx]
            load_start[req_idx][layer_idx] = time.perf_counter() - origin
            if plan.layer_delays[layer_idx] > 0.0:
                time.sleep(plan.layer_delays[layer_idx])  # simulated device transfer
            slots[req_idx][layer_idx] = self._decode_layer(
                plan.blobs[layer_idx],
                plan.layer_dtypes[layer_idx],
                plan.chunk_positions,
                plan.layout,
            )
            load_end[req_idx][layer_idx] = time.perf_counter() - origin
            ready[req_idx][layer_idx].set()

        # Backpressure: the loader may run at most one request ahead of the
        # compute stream (the §6 double buffer at request granularity), so
        # peak memory holds ~two requests' packed+decoded buffers, not the
        # queue's.  ``abort`` stops it promptly if compute fails mid-batch.
        lookahead = threading.Semaphore(2)
        abort = threading.Event()
        thread: threading.Thread | None = None
        if pipelined:

            def loader() -> None:
                try:
                    for req_idx in range(n_requests):
                        lookahead.acquire()
                        if abort.is_set():
                            return
                        plans[req_idx].materialize(n_layers)
                        for layer_idx in range(n_layers):
                            load_layer(req_idx, layer_idx)
                except BaseException as exc:  # surface in the compute thread
                    load_error.append(exc)
                    for events in ready:
                        for event in events:
                            event.set()

            thread = threading.Thread(target=loader, name="kv-loader", daemon=True)
            thread.start()

        results: list[ExecutionResult] = []
        queue_start = 0.0
        try:
            for req_idx, plan in enumerate(plans):
                if not pipelined:
                    plan.materialize(n_layers)

                def provider(layer_idx: int, req_idx: int = req_idx) -> LayerKV:
                    if pipelined:
                        ready[req_idx][layer_idx].wait()
                        if load_error:
                            raise load_error[0]
                    else:
                        load_layer(req_idx, layer_idx)
                    layer = slots[req_idx][layer_idx]
                    slots[req_idx][layer_idx] = None  # the fusor consumes the buffer
                    assert layer is not None
                    return layer

                provider_typed: LayerProvider = provider
                recorder = _SpanRecorder(n_layers, origin)
                fusion = self.fusor.fuse_layers(
                    provider_typed,
                    plan.layout,
                    recompute_ratio=plan.recompute_ratio,
                    recorder=recorder,
                )
                plan.release_blobs()  # this request's bytes are consumed
                lookahead.release()
                results.append(
                    ExecutionResult(
                        fusion=fusion,
                        trace=PipelineTrace(
                            load_start=load_start[req_idx],
                            load_end=load_end[req_idx],
                            compute_start=recorder.compute_start_at,
                            compute_end=recorder.compute_end_at,
                        ),
                        pipelined=pipelined,
                        simulated_load_delay=plan.delay,
                        queue_start=queue_start,
                    )
                )
                queue_start = (
                    float(recorder.compute_end_at[-1]) if n_layers else queue_start
                )
        except BaseException:
            # Unblock and stop the loader so it neither leaks nor keeps the
            # remaining queue's buffers alive behind a blocked acquire().
            abort.set()
            lookahead.release()
            raise
        if thread is not None:
            thread.join()

        return BatchExecutionResult(
            requests=results,
            pipelined=pipelined,
            makespan=time.perf_counter() - origin,
        )

    # ------------------------------------------------------------------
    def _plan_request(
        self,
        chunk_caches: list[KVCache],
        suffix_token_ids: np.ndarray,
        recompute_ratio: float | None,
        extra_load_delay: float = 0.0,
    ) -> _RequestPlan:
        """Validate one request and plan its layout and simulated delay.

        Validation (layout, KV shapes, ratio) happens here, before any
        loader thread starts, so a bad request fails fast instead of from a
        background thread.  The blob bytes themselves materialize lazily
        when the request is about to load (see :class:`_RequestPlan`).
        """
        if recompute_ratio is not None and not 0.0 <= recompute_ratio <= 1.0:
            raise ValueError("recompute_ratio must be in [0, 1]")
        if extra_load_delay < 0.0:
            raise ValueError("extra_load_delay must be non-negative")
        layout = self.fusor.plan_layout(chunk_caches, suffix_token_ids)
        cfg = self.model.config
        n_layers = cfg.n_layers
        layer_dtypes = self.precision.layer_dtype_table(n_layers)
        if self.layer_load_time is not None:
            layer_delays = [float(self.layer_load_time)] * n_layers
        else:
            # K+V payload bytes of each layer across the request's chunks
            # (what pack_layer_kv_as will produce), computable without
            # packing; non-uniform across layers under a mixed policy.
            layer_delays = [
                self.device.read_time(
                    sum(
                        self.precision.layer_payload_nbytes(
                            layer_idx,
                            n_layers,
                            n_tokens=cache.positions.size,
                            n_kv_heads=cfg.n_kv_heads,
                            head_dim=cfg.head_dim,
                        )
                        for cache in chunk_caches
                    )
                )
                * self.time_scale
                for layer_idx in range(n_layers)
            ]
        if extra_load_delay > 0.0 and n_layers:
            per_layer = extra_load_delay / n_layers
            layer_delays = [delay + per_layer for delay in layer_delays]
        mean_delay = sum(layer_delays) / n_layers if n_layers else 0.0
        return _RequestPlan(
            layout=layout,
            chunk_caches=chunk_caches,
            chunk_positions=[cache.positions for cache in chunk_caches],
            layer_dtypes=layer_dtypes,
            layer_delays=tuple(layer_delays),
            delay=float(mean_delay),
            recompute_ratio=recompute_ratio,
        )

    # ------------------------------------------------------------------
    def _decode_layer(
        self,
        layer_blobs: list[bytes],
        layer_dtype: str,
        chunk_positions: list[np.ndarray],
        layout: FusionLayout,
    ) -> LayerKV:
        """Decode one layer's blobs and assemble the padded reused buffers.

        This is the per-layer "load" work that overlaps with compute:
        ``np.frombuffer`` decode (dequantising int8 layers), RoPE
        re-alignment of the keys to the fused offsets, and the scatter into
        the zero-padded ``(n_total, ...)`` buffers the fusor merges into.
        """
        cfg = self.model.config
        n_total = layout.n_tokens
        keys = np.zeros((n_total, cfg.n_kv_heads, cfg.head_dim), dtype=cfg.np_dtype)
        values = np.zeros_like(keys)
        for blob, old_positions, offset in zip(
            layer_blobs, chunk_positions, layout.chunk_offsets
        ):
            layer = unpack_layer_kv_as(
                blob, layer_dtype, old_positions.size, cfg.n_kv_heads, cfg.head_dim
            )
            place_chunk_layer(keys, values, layer, old_positions, offset, cfg.rope_theta)
        return LayerKV(keys, values)
