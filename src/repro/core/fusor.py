"""The KV cache fusor: selective KV recompute over fused chunk caches.

Given the precomputed KV caches of the chunks appearing in an LLM input plus
the new suffix (the user question), the fusor produces a fused KV cache whose
forward attention matrix is close to what a full prefill would have produced,
while recomputing only a small fraction of tokens per layer:

1. re-align every chunk cache to its position in the fused input and
   concatenate them (the "full KV reuse" starting point);
2. fully recompute layer 0 and measure each token's KV deviation against the
   loaded cache;
3. on every subsequent layer, recompute only the High-KV-Deviation tokens
   (gradual filtering, paper §4.3 / Figure 9) together with the suffix tokens,
   merging the freshly computed K/V entries into the reused layer cache.

The reused KV of each layer is pulled through a *layer provider* exactly when
that layer's recompute needs it, which is what lets
:class:`~repro.core.executor.PipelinedExecutor` overlap per-layer KV loading
with the recompute of earlier layers (paper §5).  The default provider
assembles each layer on demand from the in-memory chunk caches.

The fusor reports per-layer forward attention matrices, recompute counts and
deviation statistics so the paper's analysis figures (6, 7, 8, 16) can be
regenerated directly from it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Protocol

import numpy as np

from repro.core.deviation import token_kv_deviation
from repro.core.hkvd import HKVDSelector
from repro.model.rope import shift_keys
from repro.model.tensors import KVCache, LayerKV
from repro.model.transformer import TransformerModel


@dataclass(frozen=True)
class FusorConfig:
    """Configuration of the selective KV recompute.

    Attributes
    ----------
    recompute_ratio:
        Target fraction of tokens whose KV is recomputed per layer (the
        paper's default operating point is 0.15).
    boost / floor:
        Gradual-filtering schedule shape (first selective layer picks
        ``boost * ratio``, last picks ``floor * ratio``).
    query_window:
        Number of trailing tokens whose attention rows form the forward
        attention matrix used for deviation reporting.
    recompute_first_layer:
        Whether layer 0 is fully recomputed to seed HKVD selection (the
        paper's scheme).  Disabling it falls back to selecting HKVD tokens
        randomly, which is only useful for ablations.
    """

    recompute_ratio: float = 0.15
    boost: float = 1.5
    floor: float = 0.8
    query_window: int = 8
    recompute_first_layer: bool = True

    def __post_init__(self) -> None:
        if not 0.0 <= self.recompute_ratio <= 1.0:
            raise ValueError("recompute_ratio must be in [0, 1]")
        if self.query_window < 0:
            raise ValueError("query_window must be >= 0")


@dataclass(frozen=True)
class FusionLayout:
    """Token layout of one fused input (chunks followed by the suffix).

    ``chunk_offsets[c]`` is the absolute position the ``c``-th chunk starts at
    in the fused input; chunk keys must be RoPE-shifted from their precompute
    positions to these offsets before use.
    """

    token_ids: np.ndarray
    positions: np.ndarray
    suffix_start: int
    chunk_offsets: tuple[int, ...]

    @property
    def n_tokens(self) -> int:
        return int(self.token_ids.size)


class ComputeSpanRecorder(Protocol):
    """Instrumentation hook for per-layer compute spans (used by the executor)."""

    def compute_start(self, layer_idx: int) -> None: ...

    def compute_end(self, layer_idx: int) -> None: ...


#: A layer provider returns the re-aligned, zero-padded reused KV of one layer.
#: It may block (the pipelined executor's provider waits for the background
#: load of that layer to finish).
LayerProvider = Callable[[int], LayerKV]


def place_chunk_layer(
    keys: np.ndarray,
    values: np.ndarray,
    layer: LayerKV,
    old_positions: np.ndarray,
    offset: int,
    rope_theta: float,
) -> None:
    """Scatter one chunk's layer KV into padded buffers at *offset*.

    Keys are rotated by the chunk's position delta (exact under RoPE, paper
    Appendix A); values are position independent and copied as-is.  This is
    the single definition of the re-alignment rule, shared by the in-memory
    provider below and the executor's background loader.
    """
    n = layer.n_tokens
    new_positions = np.arange(offset, offset + n, dtype=np.int64)
    if np.array_equal(old_positions, new_positions):
        keys[offset : offset + n] = layer.keys
    else:
        keys[offset : offset + n] = shift_keys(
            layer.keys, old_positions, new_positions, rope_theta
        )
    values[offset : offset + n] = layer.values


def assemble_reused_layer(
    chunk_caches: list[KVCache],
    layout: FusionLayout,
    layer_idx: int,
    rope_theta: float,
    n_kv_heads: int,
    head_dim: int,
    dtype: np.dtype,
) -> LayerKV:
    """Build one layer's reused KV: re-aligned chunk entries, zero-padded suffix.

    The suffix region stays zero — suffix tokens have no precomputed KV and
    are always recomputed.
    """
    n_total = layout.n_tokens
    keys = np.zeros((n_total, n_kv_heads, head_dim), dtype=dtype)
    values = np.zeros_like(keys)
    for cache, offset in zip(chunk_caches, layout.chunk_offsets):
        place_chunk_layer(
            keys, values, cache.layers[layer_idx], cache.positions, offset, rope_theta
        )
    return LayerKV(keys, values)


@dataclass
class FusionResult:
    """Everything produced by one fusion pass."""

    kv_cache: KVCache
    last_logits: np.ndarray
    token_ids: np.ndarray
    positions: np.ndarray
    suffix_start: int
    forward_attention: list[np.ndarray]
    selected_per_layer: list[np.ndarray]
    recompute_counts: list[int]
    layer_deviations: list[np.ndarray] = field(default_factory=list)
    first_layer_deviation: np.ndarray | None = None

    @property
    def n_tokens(self) -> int:
        return int(self.token_ids.size)

    @property
    def mean_recompute_fraction(self) -> float:
        """Average fraction of tokens recomputed per layer (incl. layer 0)."""
        if not self.recompute_counts or self.n_tokens == 0:
            return 0.0
        return float(np.mean(self.recompute_counts) / self.n_tokens)


class KVFusor:
    """Fuses precomputed chunk KV caches via selective recompute."""

    def __init__(self, model: TransformerModel, config: FusorConfig | None = None) -> None:
        self.model = model
        self.config = config or FusorConfig()

    # ------------------------------------------------------------------
    def plan_layout(
        self, chunk_caches: list[KVCache], suffix_token_ids: np.ndarray
    ) -> FusionLayout:
        """Validate the chunk caches and lay out the fused input."""
        if not chunk_caches:
            raise ValueError("fusion requires at least one chunk cache")
        suffix_token_ids = np.asarray(suffix_token_ids, dtype=np.int64)
        cfg = self.model.config
        n_layers = cfg.n_layers
        kv_shape = (cfg.n_kv_heads, cfg.head_dim)
        offsets: list[int] = []
        offset = 0
        for cache in chunk_caches:
            if cache.n_layers != n_layers:
                raise ValueError(
                    f"chunk cache has {cache.n_layers} layers; model has {n_layers}"
                )
            if cache.n_tokens == 0:
                raise ValueError("cannot fuse an empty chunk cache")
            shape = cache.layers[0].keys.shape[1:]
            if shape != kv_shape:
                raise ValueError(
                    f"chunk cache KV shape {shape} does not match model {kv_shape}"
                )
            offsets.append(offset)
            offset += cache.n_tokens
        suffix_start = offset
        token_ids = np.concatenate(
            [cache.token_ids for cache in chunk_caches] + [suffix_token_ids]
        )
        positions = np.arange(token_ids.size, dtype=np.int64)
        return FusionLayout(
            token_ids=token_ids,
            positions=positions,
            suffix_start=suffix_start,
            chunk_offsets=tuple(offsets),
        )

    def default_provider(
        self, chunk_caches: list[KVCache], layout: FusionLayout
    ) -> LayerProvider:
        """Provider assembling each reused layer on demand from memory."""
        cfg = self.model.config

        def provider(layer_idx: int) -> LayerKV:
            return assemble_reused_layer(
                chunk_caches,
                layout,
                layer_idx,
                cfg.rope_theta,
                cfg.n_kv_heads,
                cfg.head_dim,
                cfg.np_dtype,
            )

        return provider

    # ------------------------------------------------------------------
    def fuse(
        self,
        chunk_caches: list[KVCache],
        suffix_token_ids: np.ndarray,
        recompute_ratio: float | None = None,
    ) -> FusionResult:
        """Fuse *chunk_caches* followed by the new *suffix_token_ids*.

        Parameters
        ----------
        chunk_caches:
            Precomputed KV caches of the context chunks, in the order they
            appear in the LLM input.  Each must carry its token ids and the
            positions it was precomputed at.
        suffix_token_ids:
            Token ids of the new text (user question) appended after the
            chunks; they have no precomputed KV and are always recomputed.
        recompute_ratio:
            Optional override of the configured recompute ratio (used by the
            loading controller, which adapts the ratio to the storage device).
        """
        layout = self.plan_layout(chunk_caches, suffix_token_ids)
        provider = self.default_provider(chunk_caches, layout)
        return self.fuse_layers(provider, layout, recompute_ratio=recompute_ratio)

    # ------------------------------------------------------------------
    def fuse_layers(
        self,
        layer_provider: LayerProvider,
        layout: FusionLayout,
        recompute_ratio: float | None = None,
        recorder: ComputeSpanRecorder | None = None,
    ) -> FusionResult:
        """Run the selective-recompute pass, pulling reused KV per layer.

        ``layer_provider(i)`` must return layer ``i``'s re-aligned, padded
        reused KV; it is called exactly once per layer, immediately before
        that layer's recompute, so a pipelined provider can overlap loading
        with the compute of earlier layers.  The returned buffers are consumed
        (recomputed rows are scattered into them in place) and become part of
        the fused cache.  ``recorder``, when given, is notified at the start
        and end of each layer's compute span.
        """
        ratio = self.config.recompute_ratio if recompute_ratio is None else recompute_ratio
        if not 0.0 <= ratio <= 1.0:
            raise ValueError("recompute_ratio must be in [0, 1]")
        token_ids = layout.token_ids
        positions = layout.positions
        suffix_start = layout.suffix_start
        n_tokens = layout.n_tokens
        suffix_indices = np.arange(suffix_start, n_tokens, dtype=np.int64)

        selector = HKVDSelector(
            target_ratio=ratio,
            n_layers=self.model.config.n_layers,
            boost=self.config.boost,
            floor=self.config.floor,
            always_include=suffix_indices,
        )

        hidden = self.model.embed(token_ids)
        fused_layers: list[LayerKV] = []
        forward_attention: list[np.ndarray] = []
        selected_per_layer: list[np.ndarray] = []
        recompute_counts: list[int] = []
        layer_deviations: list[np.ndarray] = []

        # ---- layer 0: full recompute to seed HKVD selection -------------
        reused0 = layer_provider(0)
        if recorder is not None:
            recorder.compute_start(0)
        out0 = self.model.layer_full(
            0, hidden, positions, query_window=self.config.query_window
        )
        fused_layers.append(out0.layer_kv)
        if out0.forward_attention is not None:
            forward_attention.append(out0.forward_attention)
        recompute_counts.append(n_tokens)
        selected_per_layer.append(np.arange(n_tokens, dtype=np.int64))

        deviation0 = self._deviation_against_reused(out0.layer_kv, reused0, suffix_start)
        first_layer_deviation = deviation0
        layer_deviations.append(deviation0)
        if self.config.recompute_first_layer:
            selected = selector.first_selection(deviation0)
        else:
            selected = self._random_selection(selector, n_tokens, suffix_indices)
        hidden_selected = out0.hidden[selected]
        if recorder is not None:
            recorder.compute_end(0)

        # ---- layers 1..L-1: selective recompute --------------------------
        for layer_idx in range(1, self.model.config.n_layers):
            reused = layer_provider(layer_idx)
            if recorder is not None:
                recorder.compute_start(layer_idx)
            # Snapshot the reused rows being replaced: the in-place scatter
            # below overwrites them, but the deviation metric needs them.
            prev_keys = reused.keys[selected]
            prev_values = reused.values[selected]
            out = self.model.layer_selective(
                layer_idx,
                hidden_selected,
                selected,
                positions,
                reused,
                query_window=self.config.query_window,
                in_place=True,
            )
            fused_layers.append(out.merged_kv)
            if out.forward_attention is not None:
                forward_attention.append(out.forward_attention)
            recompute_counts.append(int(selected.size))
            selected_per_layer.append(selected)

            deviation = self._selected_deviation(
                out.new_keys,
                out.new_values,
                prev_keys,
                prev_values,
                selected,
                suffix_start,
                n_tokens,
            )
            layer_deviations.append(deviation)

            if layer_idx < self.model.config.n_layers - 1:
                next_selected = selector.next_selection(deviation)
                keep_mask = np.isin(selected, next_selected)
                hidden_selected = out.hidden_selected[keep_mask]
                selected = selected[keep_mask]
            else:
                hidden_selected = out.hidden_selected
            if recorder is not None:
                recorder.compute_end(layer_idx)

        last_logits = self._last_logits(hidden_selected, selected, n_tokens)
        kv_cache = KVCache(fused_layers, token_ids, positions)
        return FusionResult(
            kv_cache=kv_cache,
            last_logits=last_logits,
            token_ids=token_ids,
            positions=positions,
            suffix_start=suffix_start,
            forward_attention=forward_attention,
            selected_per_layer=selected_per_layer,
            recompute_counts=recompute_counts,
            layer_deviations=layer_deviations,
            first_layer_deviation=first_layer_deviation,
        )

    # ------------------------------------------------------------------
    def full_reuse(
        self, chunk_caches: list[KVCache], suffix_token_ids: np.ndarray
    ) -> FusionResult:
        """PromptCache-style full KV reuse: recompute only the suffix.

        Equivalent to ``fuse(..., recompute_ratio=0.0)`` except that layer 0 of
        the chunk region is also reused rather than recomputed, which is what
        the full-KV-reuse baseline does.
        """
        layout = self.plan_layout(chunk_caches, suffix_token_ids)
        provider = self.default_provider(chunk_caches, layout)
        n_tokens = layout.n_tokens
        suffix_indices = np.arange(layout.suffix_start, n_tokens, dtype=np.int64)

        hidden_selected = self.model.embed(layout.token_ids[suffix_indices])
        fused_layers: list[LayerKV] = []
        forward_attention: list[np.ndarray] = []
        recompute_counts: list[int] = []
        selected_per_layer: list[np.ndarray] = []
        for layer_idx in range(self.model.config.n_layers):
            out = self.model.layer_selective(
                layer_idx,
                hidden_selected,
                suffix_indices,
                layout.positions,
                provider(layer_idx),
                query_window=self.config.query_window,
                in_place=True,
            )
            fused_layers.append(out.merged_kv)
            if out.forward_attention is not None:
                forward_attention.append(out.forward_attention)
            recompute_counts.append(int(suffix_indices.size))
            selected_per_layer.append(suffix_indices)
            hidden_selected = out.hidden_selected

        last_logits = self._last_logits(hidden_selected, suffix_indices, n_tokens)
        return FusionResult(
            kv_cache=KVCache(fused_layers, layout.token_ids, layout.positions),
            last_logits=last_logits,
            token_ids=layout.token_ids,
            positions=layout.positions,
            suffix_start=layout.suffix_start,
            forward_attention=forward_attention,
            selected_per_layer=selected_per_layer,
            recompute_counts=recompute_counts,
        )

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _deviation_against_reused(
        computed: LayerKV, reused: LayerKV, suffix_start: int
    ) -> np.ndarray:
        """Per-token deviation of the freshly computed layer vs the loaded one.

        Suffix tokens have no precomputed KV (the reused entries are zeros),
        so their deviation is not meaningful for HKVD ranking; they are forced
        to zero here and included in the recompute set explicitly instead.
        """
        deviation = token_kv_deviation(computed, reused)
        deviation[suffix_start:] = 0.0
        return deviation

    @staticmethod
    def _selected_deviation(
        new_keys: np.ndarray,
        new_values: np.ndarray,
        prev_keys: np.ndarray,
        prev_values: np.ndarray,
        selected: np.ndarray,
        suffix_start: int,
        n_tokens: int,
    ) -> np.ndarray:
        """Full-length deviation array populated only at the selected tokens.

        ``prev_keys``/``prev_values`` are the reused rows the selected tokens
        replaced (snapshotted before the in-place merge).
        """
        deviation = np.zeros(n_tokens)
        key_diff = new_keys - prev_keys
        value_diff = new_values - prev_values
        per_token = np.linalg.norm(
            key_diff.reshape(len(selected), -1), axis=1
        ) + np.linalg.norm(value_diff.reshape(len(selected), -1), axis=1)
        deviation[selected] = per_token
        deviation[suffix_start:] = 0.0
        return deviation

    def _random_selection(
        self, selector: HKVDSelector, n_tokens: int, suffix_indices: np.ndarray
    ) -> np.ndarray:
        """Ablation path: pick the first-layer tokens uniformly at random."""
        rng = np.random.default_rng(self.model.seed)
        fake_deviation = rng.random(n_tokens)
        fake_deviation[suffix_indices] = 0.0
        return selector.first_selection(fake_deviation)

    def _last_logits(
        self, hidden_selected: np.ndarray, selected: np.ndarray, n_tokens: int
    ) -> np.ndarray:
        """Logits of the last input token (it is always in the selected set)."""
        last_index = n_tokens - 1
        rows = np.nonzero(np.asarray(selected) == last_index)[0]
        if rows.size == 0:
            raise RuntimeError("the last input token was not recomputed; cannot decode")
        return self.model.logits(hidden_selected[rows[0]])
