"""CacheBlend core: selective KV recompute and cached knowledge fusion.

This package contains the paper's primary contribution:

* :mod:`repro.core.deviation` — KV deviation and attention deviation metrics
  (paper §4.1, Table 1).
* :mod:`repro.core.positional` — RoPE re-alignment of cached keys when a chunk
  is reused at a new position (paper §4.3 footnote, Appendix A).
* :mod:`repro.core.hkvd` — High-KV-Deviation token selection with gradual
  filtering across layers (paper §4.3, Figure 9).
* :mod:`repro.core.fusor` — the KV cache fusor performing selective KV
  recompute layer by layer (paper §4.2, Figure 5).
* :mod:`repro.core.controller` — the loading controller choosing recompute
  ratios and storage devices (paper §5.1, Figure 10).
* :mod:`repro.core.pipeline` — the per-layer load/recompute pipeline (paper §5).
* :mod:`repro.core.blend_engine` — the public façade combining all of the
  above with the KV store and the serving cost model.
"""

from repro.core.blend_engine import BlendEngine, BlendResult
from repro.core.controller import ControllerDecision, LoadingController
from repro.core.deviation import attention_deviation, kv_deviation
from repro.core.fusor import FusorConfig, FusionResult, KVFusor
from repro.core.hkvd import HKVDSelector, ratio_schedule
from repro.core.pipeline import PipelineTrace, pipelined_time, sequential_time
from repro.core.positional import realign_chunk_cache

__all__ = [
    "BlendEngine",
    "BlendResult",
    "ControllerDecision",
    "LoadingController",
    "attention_deviation",
    "kv_deviation",
    "FusorConfig",
    "FusionResult",
    "KVFusor",
    "HKVDSelector",
    "ratio_schedule",
    "PipelineTrace",
    "pipelined_time",
    "sequential_time",
    "realign_chunk_cache",
]
