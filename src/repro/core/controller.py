"""Loading controller: recompute-ratio and storage-device selection (paper §5.1).

The controller answers the two practical questions the paper poses:

1. *Given a storage device, which recompute ratio keeps the selective
   recompute hidden behind KV loading?*  It picks the ratio where the
   per-layer recompute delay equals the per-layer loading delay, and never
   goes below the minimum ratio ``r*`` that preserves generation quality
   (empirically 15 %, Figure 16).
2. *Given a fixed recompute ratio, which storage device should KV caches be
   kept on?*  It picks the cheapest device whose loading delay still covers
   the recompute delay (Figure 10b).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kvstore.device import StorageDevice
from repro.serving.costmodel import ServingCostModel


@dataclass(frozen=True)
class ControllerDecision:
    """Outcome of a controller query for one request."""

    recompute_ratio: float
    device: StorageDevice
    load_time_per_layer: float
    recompute_time_per_layer: float
    estimated_ttft: float
    storage_cost_per_month: float

    @property
    def recompute_hidden(self) -> bool:
        """True when loading fully hides the selective recompute."""
        return self.recompute_time_per_layer <= self.load_time_per_layer + 1e-12


@dataclass
class LoadingController:
    """Chooses recompute ratios and storage devices for CacheBlend.

    Parameters
    ----------
    cost_model:
        Delay estimators for the served model.
    min_quality_ratio:
        The paper's ``r*``: the smallest recompute ratio with negligible
        quality loss (default 0.15).
    max_ratio:
        Upper bound on the chosen ratio (1.0 recomputes everything).
    """

    cost_model: ServingCostModel
    min_quality_ratio: float = 0.15
    max_ratio: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.min_quality_ratio <= self.max_ratio <= 1.0:
            raise ValueError("require 0 <= min_quality_ratio <= max_ratio <= 1")

    # ------------------------------------------------------------------
    def pick_recompute_ratio(self, n_context_tokens: int, device: StorageDevice) -> float:
        """Largest ratio whose recompute stays hidden behind loading (>= r*).

        The per-layer recompute delay is ``ratio x prefill_layer_time``, so the
        break-even ratio is ``load_layer_time / prefill_layer_time``.  The
        result is clamped to ``[min_quality_ratio, max_ratio]`` — even with an
        infinitely fast device the controller keeps recomputing ``r*`` of the
        tokens to protect quality.
        """
        if n_context_tokens <= 0:
            return self.min_quality_ratio
        prefill_layer = self.cost_model.prefill_layer_time(n_context_tokens)
        load_layer = self.cost_model.kv_load_time_per_layer(n_context_tokens, device)
        if prefill_layer <= 0.0:
            return self.min_quality_ratio
        break_even = load_layer / prefill_layer
        ratio = max(self.min_quality_ratio, break_even)
        return min(self.max_ratio, ratio)

    # ------------------------------------------------------------------
    def choose_device(
        self,
        n_context_tokens: int,
        devices: list[StorageDevice],
        ratio: float | None = None,
    ) -> StorageDevice:
        """Cheapest device whose loading delay hides the recompute at *ratio*.

        If no device can hide the recompute (all of them are faster than the
        recompute — which never hurts latency), the cheapest device overall is
        returned; if some devices are too slow, they are excluded.
        """
        if not devices:
            raise ValueError("choose_device needs at least one candidate device")
        ratio = self.min_quality_ratio if ratio is None else ratio
        recompute_layer = self.cost_model.recompute_layer_time(n_context_tokens, ratio)

        def monthly_cost(device: StorageDevice) -> float:
            return self.cost_model.kv_store_cost(n_context_tokens, device)

        # Devices whose loading does not add delay beyond the recompute floor:
        # loading must not be slower than the recompute it needs to hide.
        viable = [
            device
            for device in devices
            if self.cost_model.kv_load_time_per_layer(n_context_tokens, device)
            <= recompute_layer + 1e-12
        ]
        candidates = viable if viable else devices
        return min(candidates, key=monthly_cost)

    # ------------------------------------------------------------------
    def decide(
        self,
        n_context_tokens: int,
        n_suffix_tokens: int,
        devices: list[StorageDevice] | None = None,
        device: StorageDevice | None = None,
    ) -> ControllerDecision:
        """Full controller decision for one request.

        Either a fixed *device* is given (question 1: pick the ratio) or a
        list of candidate *devices* is given (question 2: pick the cheapest
        device at the quality-preserving ratio, then pick the ratio for it).
        """
        if device is None and not devices:
            raise ValueError("decide() needs either a device or a list of devices")
        if device is None:
            device = self.choose_device(n_context_tokens, devices, self.min_quality_ratio)
        ratio = self.pick_recompute_ratio(n_context_tokens, device)
        n_total = n_context_tokens + n_suffix_tokens
        ttft = self.cost_model.ttft_cacheblend(
            n_total, n_suffix_tokens, ratio, device, pipelined=True
        )
        return ControllerDecision(
            recompute_ratio=ratio,
            device=device,
            load_time_per_layer=self.cost_model.kv_load_time_per_layer(
                n_context_tokens, device
            ),
            recompute_time_per_layer=self.cost_model.recompute_layer_time(n_total, ratio),
            estimated_ttft=ttft,
            storage_cost_per_month=self.cost_model.kv_store_cost(n_context_tokens, device),
        )
