"""BlendEngine: the public façade of the CacheBlend reproduction.

The engine ties together the tokenizer, the runnable proxy transformer (for
KV fusion and deviation measurement), the KV cache store, the loading
controller and the serving cost model (for TTFT estimates on the paper's
real model architectures).

Two execution modes serve a request:

* ``execution="analytic"`` (default) fuses through the in-memory fusor and
  *estimates* TTFT with the analytical cost model — fast, deterministic,
  device-parameterised;
* ``execution="pipelined"`` routes the fuse through the
  :class:`~repro.core.executor.PipelinedExecutor`: each layer's KV streams
  off the (simulated) storage device on a background thread while earlier
  layers recompute, and the request carries a *measured*
  :class:`~repro.core.pipeline.PipelineTrace` whose load/compute/stall spans
  are wall-clock facts.  ``run_batch`` additionally pipelines *across*
  requests — request B's layer 0 loads while request A's tail layers
  recompute — and decodes the whole batch in lock-step on one persistent
  :class:`~repro.model.tensors.DecodeSession`, one session step per
  scheduler iteration.  Measured spans feed the cost model's
  :class:`~repro.serving.costmodel.OnlineCostCalibration` so scheduler cost
  estimates track observed rates.

Both modes run identical fusor numerics over identical store bytes, so the
fused KV is bitwise-equal between them.

Typical use::

    engine = BlendEngine.build(paper_model="Mistral-7B", device="nvme_ssd")
    engine.precompute_chunks(["chunk one text ...", "chunk two text ..."])
    result = engine.run(["chunk one text ...", "chunk two text ..."],
                        question="who proposed using RAG?",
                        execution="pipelined")
    print(result.ttft, result.trace.stall_time)
"""

from __future__ import annotations

import time
import warnings
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.core.controller import ControllerDecision, LoadingController
from repro.core.executor import PipelinedExecutor
from repro.core.fusor import FusionResult, FusorConfig, KVFusor
from repro.core.pipeline import PipelineTrace
from repro.kvstore.config import StoreConfig
from repro.kvstore.device import StorageDevice, get_device
from repro.kvstore.faults import (
    FaultConfig,
    FaultyStore,
    StoreFault,
    StoreReadTimeout,
)
from repro.kvstore.precision import PrecisionPolicy
from repro.kvstore.protocol import ChunkStore, StoreLookup
from repro.kvstore.serialization import KVCorruptionError, quantize_kv_to_store_dtype
from repro.kvstore.store import chunk_key
from repro.model.config import PAPER_MODEL_PAIRS, ModelConfig, get_config
from repro.model.transformer import TransformerModel
from repro.serving.costmodel import GPUSpec, OnlineCostCalibration, ServingCostModel
from repro.tokenizer.tokenizer import Tokenizer

#: Supported request execution modes.
EXECUTION_MODES = ("analytic", "pipelined")

#: Per-request fault-recovery counters, all initialised to zero.
_FAULT_STAT_KEYS = (
    "fault_retries",
    "fault_timeouts",
    "fault_transients",
    "fault_corruptions",
    "fault_fallbacks",
    "fallback_recompute_tokens",
)


@dataclass(frozen=True)
class LookupRetryPolicy:
    """How :meth:`BlendEngine._gather_request` survives store read faults.

    Each chunk lookup gets ``max_retries`` retries after a typed store
    fault (:class:`~repro.kvstore.faults.StoreFault` subclasses or a
    :class:`~repro.kvstore.serialization.KVCorruptionError`), with
    exponential simulated backoff (``backoff_s * 2**attempt`` seconds,
    priced into the request's store read delay rather than slept).  A hit
    whose simulated ``read_delay`` exceeds ``timeout_s`` is cut off and
    treated as a timed-out read — the caller waited ``timeout_s`` for
    nothing.  When every attempt fails, the engine degrades gracefully:
    the chunk is recomputed from scratch (correct output, higher TTFT) and
    re-``put`` to repair the store.
    """

    max_retries: int = 2
    backoff_s: float = 0.005
    timeout_s: float | None = 0.25

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_s < 0.0:
            raise ValueError("backoff_s must be >= 0")
        if self.timeout_s is not None and self.timeout_s <= 0.0:
            raise ValueError("timeout_s must be positive (or None to disable)")


@dataclass
class BlendResult:
    """Outcome of answering one request through CacheBlend.

    ``ttft`` is the headline time-to-first-token: the *measured* (trace
    derived) wall-clock under ``execution="pipelined"``, the analytical
    estimate under ``execution="analytic"``.  ``ttft_estimate`` always
    carries the analytical estimate so the two can be compared side by side;
    ``measured_ttft``/``trace`` are populated by the pipelined path only.
    A pipelined ``measured_ttft`` runs to the first emitted token: it folds
    in ``measured_first_decode_s``, the wall-clock of the first co-batched
    :class:`~repro.model.tensors.DecodeSession` step (the analytic
    ``ttft_estimate`` prices that step with the cost model, so the two stay
    comparable).  Generation is decoded in lock-step across the whole
    pipelined batch — one session step per iteration — so the first step is
    shared: every request of the batch carries the same
    ``measured_first_decode_s``, and ``decode_batch_width`` records how many
    requests that step decoded together.

    ``cache_stats`` is this request's *own* hit/miss accounting (KV store and
    tokenizer), counted locally while the request executed — it never reads
    the engine-global counters, so results from concurrent or interleaved
    batches cannot cross-contaminate.
    """

    fusion: FusionResult
    ttft: float
    decision: ControllerDecision
    cache_hits: int
    cache_misses: int
    generated_ids: list[int] = field(default_factory=list)
    n_context_tokens: int = 0
    n_suffix_tokens: int = 0
    execution: str = "analytic"
    ttft_estimate: float = 0.0
    measured_ttft: float | None = None
    #: Measured load-wait inside this request's pipeline (queueing behind
    #: earlier batch requests excluded); pipelined mode only.
    measured_stall: float | None = None
    #: Measured wall-clock of the first decode step (one co-batched
    #: ``DecodeSession`` step shared by the whole pipelined batch), already
    #: folded into ``measured_ttft``; pipelined mode only.
    measured_first_decode_s: float | None = None
    #: How many requests the first decode step was co-batched with (the
    #: session width at that step); pipelined mode only.
    decode_batch_width: int | None = None
    trace: PipelineTrace | None = None
    cache_stats: dict[str, int] = field(default_factory=dict)

    @property
    def n_total_tokens(self) -> int:
        return self.n_context_tokens + self.n_suffix_tokens


@dataclass
class _RequestInputs:
    """One request's gathered inputs plus its locally-counted statistics."""

    chunk_caches: list
    suffix_ids: np.ndarray
    context_tokens: int
    miss_tokens: int
    #: Measured wall-clock spent prefilling cold chunks for this request.
    miss_prefill_s: float
    stats: dict[str, int]
    #: Simulated extra seconds of store reads beyond the primary device's
    #: rate — nonzero only when a tiered store served hits from a slow tier.
    store_read_delay_s: float = 0.0

    @property
    def hits(self) -> int:
        return self.stats["hits"]

    @property
    def misses(self) -> int:
        return self.stats["misses"]


class _EncodingCache:
    """Small LRU memoizing tokenizer encodings per chunk/question text.

    Cache-hit requests repeat the same chunk texts, so re-encoding them on
    every request is pure O(chunk) overhead; the entries are tiny (one int64
    array per distinct text).  Arrays are returned read-only so a hit can be
    shared across requests without defensive copies.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self._entries: OrderedDict[str, np.ndarray] = OrderedDict()

    def get(self, text: str) -> np.ndarray | None:
        ids = self._entries.get(text)
        if ids is None:
            self.misses += 1
            return None
        self.hits += 1
        self._entries.move_to_end(text)
        return ids

    def put(self, text: str, ids: np.ndarray) -> None:
        ids = np.asarray(ids, dtype=np.int64)
        ids.setflags(write=False)
        self._entries[text] = ids
        self._entries.move_to_end(text)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0


class BlendEngine:
    """End-to-end CacheBlend engine over a chunk store and a proxy model."""

    def __init__(
        self,
        model: TransformerModel,
        tokenizer: Tokenizer,
        kv_store: ChunkStore,
        controller: LoadingController,
        fusor_config: FusorConfig | None = None,
        timing_model: ModelConfig | None = None,
        encoding_cache_size: int = 1024,
        execution: str = "analytic",
        executor: PipelinedExecutor | None = None,
        precision: PrecisionPolicy | str | None = None,
        retry_policy: LookupRetryPolicy | None = None,
    ) -> None:
        if execution not in EXECUTION_MODES:
            raise ValueError(
                f"unknown execution mode {execution!r}; expected one of {EXECUTION_MODES}"
            )
        self.model = model
        self.tokenizer = tokenizer
        #: Any :class:`~repro.kvstore.protocol.ChunkStore` backend — whole
        #: chunk, radix-trie dedup, or a multi-tier hierarchy of either.
        self.kv_store = kv_store
        #: Store precision policy; chunk caches are round-tripped through it
        #: before ``put`` so fusion sees exactly the stored precision, and
        #: every load span is priced at its per-layer payload bytes.
        #: Defaults to the store's own policy when it carries one.
        if precision is None:
            precision = getattr(kv_store, "precision", None)
        self.precision = PrecisionPolicy.get(precision)
        self.controller = controller
        self.fusor = KVFusor(model, fusor_config or FusorConfig())
        #: Architecture used for the TTFT estimates (defaults to the proxy).
        self.timing_model = timing_model or model.config
        #: Default execution mode of :meth:`run`/:meth:`run_batch`.
        self.execution = execution
        #: The measured serving path; shares the store's device model and
        #: the engine's precision policy.
        self.executor = executor or PipelinedExecutor(
            model, self.fusor.config, device=kv_store.device, precision=self.precision
        )
        self._encodings = _EncodingCache(capacity=encoding_cache_size)
        #: Retry/timeout/fallback behaviour of store lookups under faults.
        self.retry_policy = retry_policy or LookupRetryPolicy()
        #: Engine-global fault-recovery counters, aggregated across requests
        #: (the per-request counts live in each result's ``cache_stats``).
        self._fault_totals: dict[str, int] = {key: 0 for key in _FAULT_STAT_KEYS}

    @property
    def kv_dtype(self) -> str:
        """Legacy name for the store precision policy's preset name."""
        return self.precision.name

    # ------------------------------------------------------------------
    # Tokenization (memoized)
    # ------------------------------------------------------------------
    def encode(self, text: str) -> np.ndarray:
        """Tokenize *text*, memoizing the encoding per distinct string.

        Returns a read-only int64 array shared across requests; copy before
        mutating.
        """
        ids, _ = self._encode(text)
        return ids

    def _encode(self, text: str) -> tuple[np.ndarray, bool]:
        """Memoized encode returning ``(ids, was_cache_hit)``.

        The hit flag lets callers count per-request tokenizer statistics
        locally instead of diffing the engine-global counters.
        """
        ids = self._encodings.get(text)
        if ids is not None:
            return ids, True
        ids = np.asarray(self.tokenizer.encode(text), dtype=np.int64)
        self._encodings.put(text, ids)
        return ids, False

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        paper_model: str = "Mistral-7B",
        device: str | StorageDevice = "nvme_ssd",
        recompute_ratio: float = 0.15,
        seed: int = 0,
        n_gpus: int | None = None,
        store_capacity_bytes: int | None = None,
        vocab_size: int | None = None,
        execution: str = "analytic",
        calibration: OnlineCostCalibration | None = None,
        store: StoreConfig | ChunkStore | None = None,
        faults: FaultConfig | None = None,
        retry_policy: LookupRetryPolicy | None = None,
    ) -> "BlendEngine":
        """Build an engine for one of the paper's evaluated models.

        ``paper_model`` must be one of ``Mistral-7B``, ``Yi-34B`` or
        ``Llama-70B``; the proxy configuration runs the actual NumPy forward
        pass while the corresponding architecture preset drives the timing.
        ``calibration`` (one is created by default) accumulates the measured
        per-layer rates of every pipelined run; pass a shared instance to
        feed one calibration from several engines.

        ``store`` selects the KV store backend: a
        :class:`~repro.kvstore.config.StoreConfig` recipe (chunk / trie /
        tiered), or a pre-built :class:`~repro.kvstore.protocol.ChunkStore`.
        The default is a whole-chunk store on ``device``.
        ``store_capacity_bytes`` is deprecated — pass
        ``store=StoreConfig(capacity_bytes=...)`` instead.

        ``faults`` (a :class:`~repro.kvstore.faults.FaultConfig` with
        ``rate > 0``) wraps the built store in a
        :class:`~repro.kvstore.faults.FaultyStore` for chaos testing;
        ``retry_policy`` tunes how the gather path retries and degrades
        when those (or real) store faults surface.
        """
        if paper_model not in PAPER_MODEL_PAIRS:
            known = ", ".join(sorted(PAPER_MODEL_PAIRS))
            raise KeyError(f"unknown paper model {paper_model!r}; known: {known}")
        proxy_name, timing_name = PAPER_MODEL_PAIRS[paper_model]
        proxy_config = get_config(proxy_name)
        if vocab_size is not None:
            proxy_config = ModelConfig(
                **{**proxy_config.__dict__, "vocab_size": vocab_size}
            )
        timing_config = get_config(timing_name)
        if n_gpus is None:
            n_gpus = 2 if paper_model == "Llama-70B" else 1

        if store_capacity_bytes is not None:
            if store is not None:
                raise ValueError(
                    "pass either store= or the deprecated store_capacity_bytes=, not both"
                )
            warnings.warn(
                "store_capacity_bytes= is deprecated; pass "
                "store=StoreConfig(capacity_bytes=...) instead",
                DeprecationWarning,
                stacklevel=2,
            )
            store = StoreConfig(capacity_bytes=store_capacity_bytes)

        model = TransformerModel(proxy_config, seed=seed)
        tokenizer = Tokenizer(vocab_size=proxy_config.vocab_size)
        storage = device if isinstance(device, StorageDevice) else get_device(device)
        if store is None:
            store = StoreConfig()
        if isinstance(store, StoreConfig):
            # Every backend accounts and prices bytes at the store precision
            # policy's widths — identical payloads cost the same no matter
            # which backend holds them.
            precision = store.precision
            kv_store = store.build(device=None if store.tiered else storage)
        else:
            kv_store = store
            precision = PrecisionPolicy.get(getattr(store, "precision", None))
        if faults is not None and faults.rate > 0.0:
            kv_store = FaultyStore(kv_store, faults)
        cost_model = ServingCostModel(
            timing_config,
            GPUSpec(),
            n_gpus=n_gpus,
            calibration=calibration or OnlineCostCalibration(),
            precision=precision,
        )
        controller = LoadingController(cost_model, min_quality_ratio=recompute_ratio)
        return cls(
            model=model,
            tokenizer=tokenizer,
            kv_store=kv_store,
            controller=controller,
            fusor_config=FusorConfig(recompute_ratio=recompute_ratio),
            timing_model=timing_config,
            execution=execution,
            precision=precision,
            retry_policy=retry_policy,
        )

    # ------------------------------------------------------------------
    # Chunk precomputation
    # ------------------------------------------------------------------
    def chunk_cache_key(self, token_ids: np.ndarray) -> str:
        return chunk_key(token_ids, model_name=self.model.config.name)

    def precompute_chunk(self, text: str) -> str:
        """Tokenize, prefill and store one chunk; returns its cache key.

        The stored cache is round-tripped through the store's precision
        policy (per-layer fp32/fp16/int8), so what the in-memory fusion path
        sees is bit-identical to what the executor's byte-level load path
        decodes.
        """
        token_ids = self.encode(text)
        if token_ids.size == 0:
            raise ValueError("cannot precompute an empty chunk")
        key = self.chunk_cache_key(token_ids)
        if not self.kv_store.contains(key):
            cache = self.model.chunk_prefill(token_ids, start_position=0)
            self.kv_store.put(key, quantize_kv_to_store_dtype(cache, self.precision))
        return key

    def precompute_chunks(self, texts: list[str]) -> list[str]:
        """Precompute and store the KV caches of several chunks."""
        return [self.precompute_chunk(text) for text in texts]

    # ------------------------------------------------------------------
    # Request execution
    # ------------------------------------------------------------------
    def _resolve_execution(self, execution: str | None) -> str:
        mode = self.execution if execution is None else execution
        if mode not in EXECUTION_MODES:
            raise ValueError(
                f"unknown execution mode {mode!r}; expected one of {EXECUTION_MODES}"
            )
        return mode

    def _lookup_with_retry(
        self, key: str, stats: dict[str, int]
    ) -> tuple[StoreLookup, float, bool]:
        """One chunk lookup under the engine's :class:`LookupRetryPolicy`.

        Returns ``(found, fault_delay_s, fallback)``: the final lookup
        result, the simulated seconds lost to faulted attempts (timeouts
        waited out plus exponential backoff between retries), and whether
        every attempt failed — in which case the caller must recompute the
        chunk from scratch.  A clean miss is not a fault and returns
        immediately; faults are only counted on attempts that raised (or a
        hit cut off by the per-lookup timeout).
        """
        policy = self.retry_policy
        fault_delay_s = 0.0
        for attempt in range(policy.max_retries + 1):
            if attempt > 0:
                stats["fault_retries"] += 1
                fault_delay_s += policy.backoff_s * 2 ** (attempt - 1)
            try:
                found = self.kv_store.lookup(key)
            except StoreReadTimeout:
                stats["fault_timeouts"] += 1
                if policy.timeout_s is not None:
                    fault_delay_s += policy.timeout_s
                continue
            except StoreFault:
                stats["fault_transients"] += 1
                continue
            except KVCorruptionError:
                stats["fault_corruptions"] += 1
                continue
            if (
                found.hit
                and policy.timeout_s is not None
                and found.read_delay > policy.timeout_s
            ):
                # The read would outlive the lookup deadline: the caller
                # waited ``timeout_s`` for nothing, then retried.
                stats["fault_timeouts"] += 1
                fault_delay_s += policy.timeout_s
                continue
            return found, fault_delay_s, False
        return StoreLookup(cache=None), fault_delay_s, True

    def _gather_request(self, chunk_texts: list[str], question: str) -> _RequestInputs:
        """Resolve one request's chunk caches, counting its stats locally.

        Chunks missing from the KV store are prefilled on the fly (the
        measured wall-clock is recorded in ``miss_prefill_s``) and inserted
        for future requests, exactly like a cold chunk in the real system.
        Store lookups that keep faulting (timeouts, transient losses,
        corrupted payloads) degrade the same way: after
        :class:`LookupRetryPolicy` is exhausted the chunk is recomputed from
        scratch — correct output, higher TTFT — and re-``put`` to repair the
        store; every such fallback is counted in the request's stats.
        """
        if not chunk_texts:
            raise ValueError("run() needs at least one context chunk")
        if not question.strip():
            raise ValueError("run() needs a non-empty question")

        chunk_caches = []
        stats = {
            "hits": 0,
            "misses": 0,
            "miss_tokens": 0,
            "slow_tier_hits": 0,
            "tokenizer_hits": 0,
            "tokenizer_misses": 0,
            **{key: 0 for key in _FAULT_STAT_KEYS},
        }
        context_tokens = 0
        miss_prefill_s = 0.0
        store_read_delay_s = 0.0
        primary = self.kv_store.device
        for text in chunk_texts:
            token_ids, encoded_hit = self._encode(text)
            stats["tokenizer_hits" if encoded_hit else "tokenizer_misses"] += 1
            context_tokens += int(token_ids.size)
            key = self.chunk_cache_key(token_ids)
            found, fault_delay_s, fallback = self._lookup_with_retry(key, stats)
            store_read_delay_s += fault_delay_s
            cached = found.cache
            if cached is None:
                if fallback:
                    # Graceful degradation: the store kept faulting, so the
                    # chunk is recomputed (priced like a miss via
                    # ``miss_tokens``) and re-put to repair the store — but
                    # it is *not* a cache miss: the entry was there.
                    stats["fault_fallbacks"] += 1
                    stats["fallback_recompute_tokens"] += int(token_ids.size)
                else:
                    stats["misses"] += 1
                stats["miss_tokens"] += int(token_ids.size)
                start = time.perf_counter()
                cached = quantize_kv_to_store_dtype(
                    self.model.chunk_prefill(token_ids, start_position=0),
                    self.precision,
                )
                miss_prefill_s += time.perf_counter() - start
                self.kv_store.put(key, cached)
            else:
                stats["hits"] += 1
                # Reads at the primary (fastest) device's rate are already
                # part of the pipeline's per-layer load delay; only the
                # slow-tier excess is charged on top.  Exactly zero for any
                # single-tier store.
                store_read_delay_s += max(
                    0.0, found.read_delay - primary.read_time(found.nbytes)
                )
                if found.tier_index is not None and found.tier_index > 0:
                    stats["slow_tier_hits"] += 1
            chunk_caches.append(cached)
        for fault_key in _FAULT_STAT_KEYS:
            self._fault_totals[fault_key] += stats[fault_key]

        suffix_ids, suffix_hit = self._encode(question)
        stats["tokenizer_hits" if suffix_hit else "tokenizer_misses"] += 1
        return _RequestInputs(
            chunk_caches=chunk_caches,
            suffix_ids=suffix_ids,
            context_tokens=context_tokens,
            miss_tokens=stats["miss_tokens"],
            miss_prefill_s=miss_prefill_s,
            stats=stats,
            store_read_delay_s=store_read_delay_s,
        )

    def _executor_for(self, device: StorageDevice) -> PipelinedExecutor:
        """The engine's executor, re-targeted when the controller picked a
        different storage device than the KV store's (``candidate_devices``):
        the measured transfer delays must simulate the device the analytic
        estimate beside them is priced at."""
        if device.name == self.executor.device.name:
            return self.executor
        return PipelinedExecutor(
            self.model, self.fusor.config, device=device, precision=self.precision
        )

    def _decide(self, inputs: _RequestInputs, recompute_ratio, candidate_devices):
        decision = self.controller.decide(
            n_context_tokens=inputs.context_tokens,
            n_suffix_tokens=int(inputs.suffix_ids.size),
            devices=candidate_devices,
            device=None if candidate_devices else self.kv_store.device,
        )
        ratio = (
            recompute_ratio if recompute_ratio is not None else decision.recompute_ratio
        )
        return decision, ratio

    def _observe(self, trace: PipelineTrace, inputs: _RequestInputs, fusion) -> None:
        """Feed one measured trace into the cost model's online calibration."""
        calibration = self.controller.cost_model.calibration
        if calibration is not None:
            calibration.observe(
                trace,
                n_context_tokens=inputs.context_tokens,
                recompute_counts=fusion.recompute_counts,
            )

    def _decode_session_batch(
        self, fusions: list[FusionResult], max_new_tokens: int
    ) -> tuple[float, list[list[int]]]:
        """Co-batched generation for every pipelined request of a batch.

        All requests join one persistent
        :class:`~repro.model.tensors.DecodeSession` (their fused caches are
        copied into the padded slots once — setup, outside the timed spans;
        a persistent engine would have prefilled into the pad directly), and
        generation runs Orca-style lock-step: **one session step per
        scheduler iteration**, replacing the former N independent
        ``generate`` calls.  Steady-state steps write only each member's
        appended row; requests leave the session — freeing their slot — the
        moment they finish, so peak resident KV tracks the live batch.

        The first step is timed exactly (the per-iteration unit the
        continuous-batching scheduler paces decode with) and every executed
        step feeds the cost model's width-aware decode calibration, tagged
        with its batch width.  Returns ``(first_step_seconds,
        generated_ids_per_request)``.
        """
        calibration = self.controller.cost_model.calibration

        def observe(step_seconds: float, batch_width: int) -> None:
            if calibration is not None:
                calibration.observe_decode(step_seconds, batch_width=batch_width)

        session = self.model.new_decode_session(
            slot_capacity=max(1, len(fusions))
        )
        for index, fusion in enumerate(fusions):
            session.join(index, fusion.kv_cache, reserve=max(1, max_new_tokens))
        # The first token of every request is decoded in one shared, measured
        # step (mirroring the per-request measured first step this replaces,
        # which also ran regardless of EOS or a zero token budget).
        first_ids = [int(np.argmax(fusion.last_logits)) for fusion in fusions]
        start = time.perf_counter()
        step_logits = self.model.decode_session_step(session, first_ids)
        first_step_s = time.perf_counter() - start
        observe(first_step_s, session.n_members)

        generated: list[list[int]] = [[] for _ in fusions]
        for index, first_id in enumerate(first_ids):
            if max_new_tokens > 0 and first_id != self.tokenizer.eos_id:
                generated[index] = [first_id]
            else:
                session.leave(index)
        if session.n_members and max_new_tokens > 1:
            order = list(session.member_ids)
            rest = self.model.generate_session(
                session,
                [step_logits[index] for index in order],
                max_new_tokens=max_new_tokens - 1,
                eos_id=self.tokenizer.eos_id,
                on_step=observe,
            )
            for index, tokens in zip(order, rest):
                generated[index].extend(tokens)
        else:
            for index in list(session.member_ids):
                session.leave(index)
        return first_step_s, generated

    def _finish(
        self,
        inputs: _RequestInputs,
        fusion: FusionResult,
        decision: ControllerDecision,
        ratio: float,
        mode: str,
        max_new_tokens: int,
        measured_ttft: float | None = None,
        measured_stall: float | None = None,
        trace: PipelineTrace | None = None,
        generated: list[int] | None = None,
        measured_first_decode_s: float | None = None,
        decode_batch_width: int | None = None,
    ) -> BlendResult:
        """Assemble one request's :class:`BlendResult`.

        Pipelined callers pass the request's share of the co-batched session
        decode (``generated``, the shared ``measured_first_decode_s`` and
        the ``decode_batch_width``); the first decode step is folded into
        the measured TTFT here.  Analytic callers generate per request
        through the legacy (unbatched) path.
        """
        ttft_estimate = self._estimate_ttft(
            inputs.context_tokens,
            int(inputs.suffix_ids.size),
            inputs.miss_tokens,
            ratio,
            decision.device,
            store_read_delay_s=inputs.store_read_delay_s,
        )
        if mode == "pipelined":
            if measured_ttft is not None and measured_first_decode_s is not None:
                measured_ttft += measured_first_decode_s
        elif max_new_tokens > 0:
            generated = self.model.generate(
                fusion.kv_cache,
                fusion.last_logits,
                max_new_tokens=max_new_tokens,
                eos_id=self.tokenizer.eos_id,
            )
        return BlendResult(
            fusion=fusion,
            ttft=measured_ttft if measured_ttft is not None else ttft_estimate,
            decision=decision,
            cache_hits=inputs.hits,
            cache_misses=inputs.misses,
            generated_ids=generated or [],
            n_context_tokens=inputs.context_tokens,
            n_suffix_tokens=int(inputs.suffix_ids.size),
            execution=mode,
            ttft_estimate=ttft_estimate,
            measured_ttft=measured_ttft,
            measured_stall=measured_stall,
            measured_first_decode_s=measured_first_decode_s,
            decode_batch_width=decode_batch_width,
            trace=trace,
            cache_stats=dict(inputs.stats),
        )

    def run(
        self,
        chunk_texts: list[str],
        question: str,
        recompute_ratio: float | None = None,
        max_new_tokens: int = 0,
        candidate_devices: list[StorageDevice] | None = None,
        execution: str | None = None,
    ) -> BlendResult:
        """Answer one request whose input is *chunk_texts* followed by *question*.

        ``execution`` overrides the engine's default mode for this request:
        ``"pipelined"`` executes the load/recompute pipeline and returns a
        measured TTFT (cold-chunk prefill wall-clock included) plus the
        per-layer :class:`~repro.core.pipeline.PipelineTrace`;
        ``"analytic"`` estimates TTFT with the cost model as before.
        """
        mode = self._resolve_execution(execution)
        inputs = self._gather_request(chunk_texts, question)
        decision, ratio = self._decide(inputs, recompute_ratio, candidate_devices)

        if mode == "pipelined":
            executed = self._executor_for(decision.device).execute(
                inputs.chunk_caches,
                inputs.suffix_ids,
                recompute_ratio=ratio,
                pipelined=True,
                extra_load_delay=inputs.store_read_delay_s,
            )
            self._observe(executed.trace, inputs, executed.fusion)
            first_decode_s, generated = self._decode_session_batch(
                [executed.fusion], max_new_tokens
            )
            return self._finish(
                inputs,
                executed.fusion,
                decision,
                ratio,
                mode,
                max_new_tokens,
                measured_ttft=executed.total_time + inputs.miss_prefill_s,
                measured_stall=executed.stall_time,
                trace=executed.trace,
                generated=generated[0],
                measured_first_decode_s=first_decode_s,
                decode_batch_width=1,
            )

        fusion = self.fusor.fuse(
            inputs.chunk_caches, inputs.suffix_ids, recompute_ratio=ratio
        )
        return self._finish(inputs, fusion, decision, ratio, mode, max_new_tokens)

    # ------------------------------------------------------------------
    # Batch execution (used by the bench subsystem)
    # ------------------------------------------------------------------
    def run_batch(
        self,
        batch: list[tuple[list[str], str]],
        recompute_ratio: float | None = None,
        max_new_tokens: int = 0,
        execution: str | None = None,
    ) -> list[BlendResult]:
        """Answer a batch of ``(chunk_texts, question)`` requests in order.

        Requests share the engine's KV store, so chunks repeated across the
        batch hit the cache exactly as they would across a request stream;
        each :class:`BlendResult` carries its own locally-counted
        ``cache_stats`` (the engine-global :attr:`cache_stats` aggregates
        across requests and batches).

        Under ``execution="pipelined"`` the whole batch runs through
        :meth:`~repro.core.executor.PipelinedExecutor.execute_batch` with
        *cross-request* pipelining — while request A's tail layers recompute,
        request B's layer-0 KV is already streaming off the device — and each
        result's measured TTFT is its completion offset in the batch
        (queueing behind earlier requests included).  Generation is then
        co-batched: every request joins one persistent
        :class:`~repro.model.tensors.DecodeSession` and the batch decodes in
        lock-step, one session step per iteration (the measured first step,
        shared across the batch, is folded into each measured TTFT).
        """
        mode = self._resolve_execution(execution)
        if mode == "analytic":
            return [
                self.run(
                    chunk_texts,
                    question,
                    recompute_ratio=recompute_ratio,
                    max_new_tokens=max_new_tokens,
                    execution=mode,
                )
                for chunk_texts, question in batch
            ]

        gathered = [
            self._gather_request(chunk_texts, question) for chunk_texts, question in batch
        ]
        decisions = [self._decide(inputs, recompute_ratio, None) for inputs in gathered]
        executed = self.executor.execute_batch(
            [(inputs.chunk_caches, inputs.suffix_ids) for inputs in gathered],
            recompute_ratio=[ratio for _, ratio in decisions],
            pipelined=True,
            extra_load_delay=[inputs.store_read_delay_s for inputs in gathered],
        )
        for inputs, request in zip(gathered, executed):
            self._observe(request.trace, inputs, request.fusion)
        first_decode_s, generated = self._decode_session_batch(
            [request.fusion for request in executed], max_new_tokens
        )
        results: list[BlendResult] = []
        for index, (inputs, (decision, ratio), request) in enumerate(
            zip(gathered, decisions, executed)
        ):
            results.append(
                self._finish(
                    inputs,
                    request.fusion,
                    decision,
                    ratio,
                    mode,
                    max_new_tokens,
                    measured_ttft=request.total_time + inputs.miss_prefill_s,
                    measured_stall=request.stall_time,
                    trace=request.trace,
                    generated=generated[index],
                    measured_first_decode_s=first_decode_s,
                    decode_batch_width=len(executed),
                )
            )
        return results

    @property
    def cache_stats(self) -> dict[str, float]:
        """JSON-friendly snapshot of the KV store's and tokenizer's counters.

        Includes the engine's fault-recovery counters (retries, timeouts,
        recompute fallbacks) aggregated across requests, and — when the
        store is a :class:`~repro.kvstore.faults.FaultyStore` — the
        injector's own per-kind counts.
        """
        stats = self.kv_store.stats.as_dict()
        # A tiered store keeps bytes in its tiers, not the top-level counter.
        stats["bytes_stored"] = self.kv_store.bytes_stored
        stats["tokenizer_hits"] = self._encodings.hits
        stats["tokenizer_misses"] = self._encodings.misses
        stats.update(self._fault_totals)
        fault_stats = getattr(self.kv_store, "fault_stats", None)
        if fault_stats is not None:
            stats.update(fault_stats.as_dict())
        return stats

    def reset_cache_stats(self) -> None:
        """Zero the KV store and tokenizer counters (e.g. between cells)."""
        self.kv_store.reset_stats()
        self._encodings.reset_stats()
        self._fault_totals = {key: 0 for key in _FAULT_STAT_KEYS}
        reset_faults = getattr(self.kv_store, "reset_fault_stats", None)
        if reset_faults is not None:
            reset_faults()

    # ------------------------------------------------------------------
    def _estimate_ttft(
        self,
        n_context: int,
        n_suffix: int,
        n_miss: int,
        ratio: float,
        device: StorageDevice,
        store_read_delay_s: float = 0.0,
    ) -> float:
        """TTFT estimate on the paper architecture, including cold-chunk cost."""
        cost_model = self.controller.cost_model
        n_total = n_context + n_suffix
        ttft = cost_model.ttft_cacheblend(n_total, n_suffix, ratio, device, pipelined=True)
        if n_miss > 0:
            # Cold chunks must be prefilled (they are then stored for later).
            ttft += cost_model.prefill_time(n_miss)
        # Hits served from a slow store tier read slower than `device`; the
        # excess extends the load side of the pipeline.
        ttft += store_read_delay_s
        # Include the first decode step, as TTFT is measured to the first token.
        ttft += cost_model.decode_time_per_token(context_tokens=n_total)
        return ttft
