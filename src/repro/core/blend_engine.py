"""BlendEngine: the public façade of the CacheBlend reproduction.

The engine ties together the tokenizer, the runnable proxy transformer (for
KV fusion and deviation measurement), the KV cache store, the loading
controller and the analytical serving cost model (for TTFT estimates on the
paper's real model architectures).

Typical use::

    engine = BlendEngine.build(paper_model="Mistral-7B", device="nvme_ssd")
    engine.precompute_chunks(["chunk one text ...", "chunk two text ..."])
    result = engine.run(["chunk one text ...", "chunk two text ..."],
                        question="who proposed using RAG?")
    print(result.ttft, result.fusion.mean_recompute_fraction)
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.core.controller import ControllerDecision, LoadingController
from repro.core.fusor import FusionResult, FusorConfig, KVFusor
from repro.kvstore.device import StorageDevice, get_device
from repro.kvstore.store import KVCacheStore, chunk_key
from repro.model.config import PAPER_MODEL_PAIRS, ModelConfig, get_config
from repro.model.transformer import TransformerModel
from repro.serving.costmodel import GPUSpec, ServingCostModel
from repro.tokenizer.tokenizer import Tokenizer


@dataclass
class BlendResult:
    """Outcome of answering one request through CacheBlend."""

    fusion: FusionResult
    ttft: float
    decision: ControllerDecision
    cache_hits: int
    cache_misses: int
    generated_ids: list[int] = field(default_factory=list)
    n_context_tokens: int = 0
    n_suffix_tokens: int = 0

    @property
    def n_total_tokens(self) -> int:
        return self.n_context_tokens + self.n_suffix_tokens


class _EncodingCache:
    """Small LRU memoizing tokenizer encodings per chunk/question text.

    Cache-hit requests repeat the same chunk texts, so re-encoding them on
    every request is pure O(chunk) overhead; the entries are tiny (one int64
    array per distinct text).  Arrays are returned read-only so a hit can be
    shared across requests without defensive copies.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self._entries: OrderedDict[str, np.ndarray] = OrderedDict()

    def get(self, text: str) -> np.ndarray | None:
        ids = self._entries.get(text)
        if ids is None:
            self.misses += 1
            return None
        self.hits += 1
        self._entries.move_to_end(text)
        return ids

    def put(self, text: str, ids: np.ndarray) -> None:
        ids = np.asarray(ids, dtype=np.int64)
        ids.setflags(write=False)
        self._entries[text] = ids
        self._entries.move_to_end(text)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0


class BlendEngine:
    """End-to-end CacheBlend engine over a chunk store and a proxy model."""

    def __init__(
        self,
        model: TransformerModel,
        tokenizer: Tokenizer,
        kv_store: KVCacheStore,
        controller: LoadingController,
        fusor_config: FusorConfig | None = None,
        timing_model: ModelConfig | None = None,
        encoding_cache_size: int = 1024,
    ) -> None:
        self.model = model
        self.tokenizer = tokenizer
        self.kv_store = kv_store
        self.controller = controller
        self.fusor = KVFusor(model, fusor_config or FusorConfig())
        #: Architecture used for the TTFT estimates (defaults to the proxy).
        self.timing_model = timing_model or model.config
        self._encodings = _EncodingCache(capacity=encoding_cache_size)

    # ------------------------------------------------------------------
    # Tokenization (memoized)
    # ------------------------------------------------------------------
    def encode(self, text: str) -> np.ndarray:
        """Tokenize *text*, memoizing the encoding per distinct string.

        Returns a read-only int64 array shared across requests; copy before
        mutating.
        """
        ids = self._encodings.get(text)
        if ids is None:
            ids = np.asarray(self.tokenizer.encode(text), dtype=np.int64)
            self._encodings.put(text, ids)
        return ids

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        paper_model: str = "Mistral-7B",
        device: str | StorageDevice = "nvme_ssd",
        recompute_ratio: float = 0.15,
        seed: int = 0,
        n_gpus: int | None = None,
        store_capacity_bytes: int | None = None,
        vocab_size: int | None = None,
    ) -> "BlendEngine":
        """Build an engine for one of the paper's evaluated models.

        ``paper_model`` must be one of ``Mistral-7B``, ``Yi-34B`` or
        ``Llama-70B``; the proxy configuration runs the actual NumPy forward
        pass while the corresponding architecture preset drives the timing.
        """
        if paper_model not in PAPER_MODEL_PAIRS:
            known = ", ".join(sorted(PAPER_MODEL_PAIRS))
            raise KeyError(f"unknown paper model {paper_model!r}; known: {known}")
        proxy_name, timing_name = PAPER_MODEL_PAIRS[paper_model]
        proxy_config = get_config(proxy_name)
        if vocab_size is not None:
            proxy_config = ModelConfig(
                **{**proxy_config.__dict__, "vocab_size": vocab_size}
            )
        timing_config = get_config(timing_name)
        if n_gpus is None:
            n_gpus = 2 if paper_model == "Llama-70B" else 1

        model = TransformerModel(proxy_config, seed=seed)
        tokenizer = Tokenizer(vocab_size=proxy_config.vocab_size)
        storage = device if isinstance(device, StorageDevice) else get_device(device)
        kv_store = KVCacheStore(
            device=storage,
            dtype_bytes=timing_config.dtype_bytes,
            capacity_bytes=store_capacity_bytes,
        )
        cost_model = ServingCostModel(timing_config, GPUSpec(), n_gpus=n_gpus)
        controller = LoadingController(cost_model, min_quality_ratio=recompute_ratio)
        return cls(
            model=model,
            tokenizer=tokenizer,
            kv_store=kv_store,
            controller=controller,
            fusor_config=FusorConfig(recompute_ratio=recompute_ratio),
            timing_model=timing_config,
        )

    # ------------------------------------------------------------------
    # Chunk precomputation
    # ------------------------------------------------------------------
    def chunk_cache_key(self, token_ids: np.ndarray) -> str:
        return chunk_key(token_ids, model_name=self.model.config.name)

    def precompute_chunk(self, text: str) -> str:
        """Tokenize, prefill and store one chunk; returns its cache key."""
        token_ids = self.encode(text)
        if token_ids.size == 0:
            raise ValueError("cannot precompute an empty chunk")
        key = self.chunk_cache_key(token_ids)
        if not self.kv_store.contains(key):
            cache = self.model.chunk_prefill(token_ids, start_position=0)
            self.kv_store.put(key, cache)
        return key

    def precompute_chunks(self, texts: list[str]) -> list[str]:
        """Precompute and store the KV caches of several chunks."""
        return [self.precompute_chunk(text) for text in texts]

    # ------------------------------------------------------------------
    # Request execution
    # ------------------------------------------------------------------
    def run(
        self,
        chunk_texts: list[str],
        question: str,
        recompute_ratio: float | None = None,
        max_new_tokens: int = 0,
        candidate_devices: list[StorageDevice] | None = None,
    ) -> BlendResult:
        """Answer one request whose input is *chunk_texts* followed by *question*.

        Chunks missing from the KV store are prefilled on the fly (counted as
        misses, and charged as full prefill in the TTFT estimate, exactly like
        a cold chunk would be in the real system) and inserted for future
        requests.
        """
        if not chunk_texts:
            raise ValueError("run() needs at least one context chunk")
        if not question.strip():
            raise ValueError("run() needs a non-empty question")

        chunk_caches = []
        hits = 0
        misses = 0
        miss_tokens = 0
        context_tokens = 0
        for text in chunk_texts:
            token_ids = self.encode(text)
            context_tokens += int(token_ids.size)
            key = self.chunk_cache_key(token_ids)
            cached = self.kv_store.get(key)
            if cached is None:
                misses += 1
                miss_tokens += int(token_ids.size)
                cached = self.model.chunk_prefill(token_ids, start_position=0)
                self.kv_store.put(key, cached)
            else:
                hits += 1
            chunk_caches.append(cached)

        suffix_ids = self.encode(question)

        decision = self.controller.decide(
            n_context_tokens=context_tokens,
            n_suffix_tokens=int(suffix_ids.size),
            devices=candidate_devices,
            device=None if candidate_devices else self.kv_store.device,
        )
        ratio = recompute_ratio if recompute_ratio is not None else decision.recompute_ratio

        fusion = self.fusor.fuse(chunk_caches, suffix_ids, recompute_ratio=ratio)

        ttft = self._estimate_ttft(
            context_tokens, int(suffix_ids.size), miss_tokens, ratio, decision.device
        )

        generated: list[int] = []
        if max_new_tokens > 0:
            generated = self.model.generate(
                fusion.kv_cache,
                fusion.last_logits,
                max_new_tokens=max_new_tokens,
                eos_id=self.tokenizer.eos_id,
            )

        return BlendResult(
            fusion=fusion,
            ttft=ttft,
            decision=decision,
            cache_hits=hits,
            cache_misses=misses,
            generated_ids=generated,
            n_context_tokens=context_tokens,
            n_suffix_tokens=int(suffix_ids.size),
        )

    # ------------------------------------------------------------------
    # Batch execution (used by the bench subsystem)
    # ------------------------------------------------------------------
    def run_batch(
        self,
        batch: list[tuple[list[str], str]],
        recompute_ratio: float | None = None,
        max_new_tokens: int = 0,
    ) -> list[BlendResult]:
        """Answer a batch of ``(chunk_texts, question)`` requests in order.

        Requests share the engine's KV store, so chunks repeated across the
        batch hit the cache exactly as they would across a request stream;
        use :attr:`cache_stats` (or :meth:`reset_cache_stats`) to read the
        resulting hit/miss accounting.
        """
        return [
            self.run(
                chunk_texts,
                question,
                recompute_ratio=recompute_ratio,
                max_new_tokens=max_new_tokens,
            )
            for chunk_texts, question in batch
        ]

    @property
    def cache_stats(self) -> dict[str, float]:
        """JSON-friendly snapshot of the KV store's and tokenizer's counters."""
        stats = self.kv_store.stats.as_dict()
        stats["tokenizer_hits"] = self._encodings.hits
        stats["tokenizer_misses"] = self._encodings.misses
        return stats

    def reset_cache_stats(self) -> None:
        """Zero the KV store and tokenizer counters (e.g. between cells)."""
        self.kv_store.stats.reset()
        self._encodings.reset_stats()

    # ------------------------------------------------------------------
    def _estimate_ttft(
        self,
        n_context: int,
        n_suffix: int,
        n_miss: int,
        ratio: float,
        device: StorageDevice,
    ) -> float:
        """TTFT estimate on the paper architecture, including cold-chunk cost."""
        cost_model = self.controller.cost_model
        n_total = n_context + n_suffix
        ttft = cost_model.ttft_cacheblend(n_total, n_suffix, ratio, device, pipelined=True)
        if n_miss > 0:
            # Cold chunks must be prefilled (they are then stored for later).
            ttft += cost_model.prefill_time(n_miss)
        # Include the first decode step, as TTFT is measured to the first token.
        ttft += cost_model.decode_time_per_token(context_tokens=n_total)
        return ttft
