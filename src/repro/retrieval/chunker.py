"""Fixed-token text chunking (Langchain-style splitter substitute).

The paper splits contexts into chunks of a fixed token budget (128 tokens for
the motivation study, 512 for the end-to-end evaluation).  The chunker splits
on token boundaries while keeping whole words, which is all the downstream
pipeline relies on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.tokenizer.tokenizer import Tokenizer


@dataclass(frozen=True)
class TextChunk:
    """One chunk of a source document."""

    text: str
    doc_id: str
    chunk_index: int
    n_tokens: int

    @property
    def chunk_id(self) -> str:
        return f"{self.doc_id}#{self.chunk_index}"


@dataclass
class TokenChunker:
    """Split documents into chunks of at most *chunk_tokens* tokens."""

    tokenizer: Tokenizer
    chunk_tokens: int = 512

    def __post_init__(self) -> None:
        if self.chunk_tokens < 1:
            raise ValueError("chunk_tokens must be >= 1")

    def split(self, text: str, doc_id: str = "doc") -> list[TextChunk]:
        """Split *text* into chunks, keeping word boundaries intact."""
        words = text.split()
        if not words:
            return []
        chunks: list[TextChunk] = []
        current: list[str] = []
        current_tokens = 0
        for word in words:
            word_tokens = self.tokenizer.count_tokens(word)
            if current and current_tokens + word_tokens > self.chunk_tokens:
                chunks.append(self._make_chunk(current, doc_id, len(chunks)))
                current = []
                current_tokens = 0
            current.append(word)
            current_tokens += word_tokens
        if current:
            chunks.append(self._make_chunk(current, doc_id, len(chunks)))
        return chunks

    def split_documents(self, documents: dict[str, str]) -> list[TextChunk]:
        """Split a mapping of ``doc_id -> text`` into a flat chunk list."""
        chunks: list[TextChunk] = []
        for doc_id, text in documents.items():
            chunks.extend(self.split(text, doc_id=doc_id))
        return chunks

    def _make_chunk(self, words: list[str], doc_id: str, index: int) -> TextChunk:
        text = " ".join(words)
        return TextChunk(
            text=text,
            doc_id=doc_id,
            chunk_index=index,
            n_tokens=self.tokenizer.count_tokens(text),
        )
