"""Brute-force L2 vector store (FAISS flat-index substitute)."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class SearchResult:
    """One nearest-neighbour hit."""

    item_id: str
    distance: float
    rank: int


@dataclass
class VectorStore:
    """Exact (brute-force) L2 nearest-neighbour index."""

    dim: int
    _ids: list[str] = field(default_factory=list)
    _vectors: list[np.ndarray] = field(default_factory=list)
    _matrix: np.ndarray | None = field(default=None, repr=False)

    def add(self, item_id: str, vector: np.ndarray) -> None:
        """Add one vector under *item_id* (duplicate ids are rejected)."""
        vector = np.asarray(vector, dtype=np.float64)
        if vector.shape != (self.dim,):
            raise ValueError(f"expected vector of shape ({self.dim},), got {vector.shape}")
        if item_id in self._ids:
            raise ValueError(f"duplicate item id {item_id!r}")
        self._ids.append(item_id)
        self._vectors.append(vector)
        self._matrix = None

    def add_batch(self, item_ids: list[str], vectors: np.ndarray) -> None:
        if len(item_ids) != len(vectors):
            raise ValueError("item_ids and vectors must have the same length")
        for item_id, vector in zip(item_ids, vectors):
            self.add(item_id, vector)

    def _ensure_matrix(self) -> np.ndarray:
        if self._matrix is None:
            if not self._vectors:
                self._matrix = np.zeros((0, self.dim))
            else:
                self._matrix = np.stack(self._vectors)
        return self._matrix

    def search(self, query: np.ndarray, top_k: int = 5) -> list[SearchResult]:
        """Return the *top_k* items with least L2 distance to *query*."""
        if top_k < 1:
            raise ValueError("top_k must be >= 1")
        query = np.asarray(query, dtype=np.float64)
        if query.shape != (self.dim,):
            raise ValueError(f"expected query of shape ({self.dim},), got {query.shape}")
        matrix = self._ensure_matrix()
        if matrix.shape[0] == 0:
            return []
        distances = np.linalg.norm(matrix - query[None, :], axis=1)
        order = np.argsort(distances, kind="stable")[:top_k]
        return [
            SearchResult(item_id=self._ids[i], distance=float(distances[i]), rank=rank)
            for rank, i in enumerate(order)
        ]

    def __len__(self) -> int:
        return len(self._ids)

    def __contains__(self, item_id: str) -> bool:
        return item_id in self._ids
