"""Hashed bag-of-words sentence embeddings (SentenceTransformers substitute).

Each word is hashed into one of ``dim`` buckets with a deterministic sign;
the sentence embedding is the L2-normalised sum of its word vectors.  Texts
sharing vocabulary get nearby embeddings, which is all the top-k L2 retrieval
in the evaluation requires.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.tokenizer.vocab import stable_hash


@dataclass
class HashingEmbedder:
    """Deterministic bag-of-words embedder."""

    dim: int = 256
    lowercase: bool = True

    def __post_init__(self) -> None:
        if self.dim < 8:
            raise ValueError("embedding dimension must be at least 8")

    def embed(self, text: str) -> np.ndarray:
        """Embed one text into an L2-normalised vector of shape ``(dim,)``."""
        if self.lowercase:
            text = text.lower()
        vector = np.zeros(self.dim, dtype=np.float64)
        words = text.split()
        if not words:
            return vector
        for word in words:
            digest = stable_hash(word)
            bucket = digest % self.dim
            sign = 1.0 if (digest >> 32) % 2 == 0 else -1.0
            vector[bucket] += sign
        norm = np.linalg.norm(vector)
        if norm > 0:
            vector /= norm
        return vector

    def embed_batch(self, texts: list[str]) -> np.ndarray:
        """Embed several texts into a ``(len(texts), dim)`` matrix."""
        if not texts:
            return np.zeros((0, self.dim), dtype=np.float64)
        return np.stack([self.embed(text) for text in texts])
