"""Retrieval substrate: chunking, embeddings, vector store and retriever.

Stands in for the Langchain text splitter, SentenceTransformers embeddings and
FAISS-style vector search the paper uses to build its RAG pipeline.  Only the
behaviour the evaluation needs is reproduced: fixed-token chunking, L2
nearest-neighbour retrieval of the top-k chunks for a query.
"""

from repro.retrieval.chunker import TokenChunker, TextChunk
from repro.retrieval.embedding import HashingEmbedder
from repro.retrieval.vector_store import VectorStore, SearchResult
from repro.retrieval.retriever import Retriever

__all__ = [
    "TokenChunker",
    "TextChunk",
    "HashingEmbedder",
    "VectorStore",
    "SearchResult",
    "Retriever",
]
