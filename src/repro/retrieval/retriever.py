"""Top-k chunk retriever used to build RAG inputs."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.retrieval.chunker import TextChunk, TokenChunker
from repro.retrieval.embedding import HashingEmbedder
from repro.retrieval.vector_store import VectorStore
from repro.tokenizer.tokenizer import Tokenizer


@dataclass
class Retriever:
    """Chunk database plus query-time top-k retrieval.

    Documents are split into fixed-token chunks, each chunk is embedded and
    indexed, and :meth:`retrieve` returns the *top_k* chunks with the lowest
    L2 distance to the query embedding — the paper's RAG front-end.
    """

    tokenizer: Tokenizer
    chunk_tokens: int = 512
    embedding_dim: int = 256
    shuffle_seed: int | None = None
    chunker: TokenChunker = field(init=False)
    embedder: HashingEmbedder = field(init=False)
    store: VectorStore = field(init=False)
    _chunks: dict[str, TextChunk] = field(init=False, default_factory=dict)

    def __post_init__(self) -> None:
        self.chunker = TokenChunker(self.tokenizer, chunk_tokens=self.chunk_tokens)
        self.embedder = HashingEmbedder(dim=self.embedding_dim)
        self.store = VectorStore(dim=self.embedding_dim)

    # ------------------------------------------------------------------
    def add_document(self, doc_id: str, text: str) -> list[TextChunk]:
        """Chunk, embed and index one document; returns its chunks."""
        chunks = self.chunker.split(text, doc_id=doc_id)
        for chunk in chunks:
            if chunk.chunk_id in self._chunks:
                continue
            self._chunks[chunk.chunk_id] = chunk
            self.store.add(chunk.chunk_id, self.embedder.embed(chunk.text))
        return chunks

    def add_documents(self, documents: dict[str, str]) -> int:
        """Index several documents; returns the number of chunks added."""
        before = len(self._chunks)
        for doc_id, text in documents.items():
            self.add_document(doc_id, text)
        return len(self._chunks) - before

    def add_chunk(self, chunk: TextChunk) -> None:
        """Index an already-split chunk (used by datasets that pre-chunk)."""
        if chunk.chunk_id in self._chunks:
            return
        self._chunks[chunk.chunk_id] = chunk
        self.store.add(chunk.chunk_id, self.embedder.embed(chunk.text))

    # ------------------------------------------------------------------
    def retrieve(self, query: str, top_k: int = 6) -> list[TextChunk]:
        """Return the *top_k* most relevant chunks for *query*.

        If ``shuffle_seed`` is set, the returned chunks are shuffled (the
        paper feeds retrieved chunks to the LLM "in a random order").
        """
        results = self.store.search(self.embedder.embed(query), top_k=top_k)
        chunks = [self._chunks[r.item_id] for r in results]
        if self.shuffle_seed is not None and len(chunks) > 1:
            rng = np.random.default_rng(self.shuffle_seed + len(query))
            order = rng.permutation(len(chunks))
            chunks = [chunks[i] for i in order]
        return chunks

    @property
    def n_chunks(self) -> int:
        return len(self._chunks)

    def get_chunk(self, chunk_id: str) -> TextChunk:
        return self._chunks[chunk_id]
