"""CLI entrypoint: ``python -m repro.bench``.

Runs a scheme × model × device × recompute-ratio sweep over a synthesized
RAG workload and writes a ``BENCH_*.json`` report.  ``--smoke`` selects the
small configuration CI runs on every push (finishes in seconds).

``--profile`` instead runs the profiled perf harness (hot-path op timings +
measured pipelined-vs-sequential fuse speedup) and writes a
``BENCH_profile_*.json``; ``--check-baseline`` turns it into the CI
regression gate.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from pathlib import Path

from repro.bench.experiment import (
    ADMISSION_POLICIES,
    SCHEDULERS,
    ExperimentConfig,
    ExperimentRunner,
)
from repro.bench.report import format_summary, report_to_dict, save_report
from repro.bench.workload import ARRIVAL_PATTERNS, DATASET_PRESETS
from repro.kvstore.device import DEVICE_PRESETS
from repro.kvstore.precision import PRECISION_PRESETS
from repro.model.config import MODEL_PRESETS
from repro.serving.engine import SCHEMES
from repro.serving.router import ROUTING_POLICIES


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="CacheBlend serving-scheme benchmark sweeps",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the small CI-sized sweep (overrides size-related options)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="run the profiled perf harness instead of the scheme sweep "
        "(writes BENCH_profile_*.json)",
    )
    parser.add_argument(
        "--check-baseline", default=None, metavar="PATH",
        help="with --profile: fail (exit 1) if fuse wall-clock regresses >2x "
        "against this baseline profile JSON",
    )
    parser.add_argument(
        "--models", nargs="+", default=None, metavar="MODEL",
        help=f"model presets to sweep (known: {', '.join(sorted(MODEL_PRESETS))})",
    )
    parser.add_argument(
        "--devices", nargs="+", default=None, metavar="DEVICE",
        help=f"storage devices to sweep (known: {', '.join(sorted(DEVICE_PRESETS))})",
    )
    parser.add_argument(
        "--schemes", nargs="+", default=None, choices=SCHEMES, metavar="SCHEME",
        help=f"serving schemes to sweep (default: all of {', '.join(SCHEMES)})",
    )
    parser.add_argument(
        "--ratios", nargs="+", type=float, default=None, metavar="R",
        help="CacheBlend recompute ratios to sweep (default: 0.15)",
    )
    parser.add_argument(
        "--dataset", default="2wikimqa", choices=sorted(DATASET_PRESETS),
        help="workload dataset preset",
    )
    parser.add_argument("--rate", type=float, default=1.0, help="requests per second")
    parser.add_argument(
        "--arrival", default="poisson", choices=ARRIVAL_PATTERNS,
        help="arrival process: poisson, or the overload-inducing bursty/"
        "diurnal presets (same average rate, transient overload windows)",
    )
    parser.add_argument(
        "--ttft-slo", type=float, default=None, metavar="SECONDS",
        help="stamp this TTFT deadline on every request (enables goodput/"
        "SLO-attainment accounting; required for --admission-policies slo)",
    )
    parser.add_argument(
        "--admission-policies", nargs="+", default=None,
        choices=ADMISSION_POLICIES, metavar="POLICY",
        help="admission-policy axis: each cell is scheduled once per policy "
        "('none' serves everything; 'slo' rejects predicted deadline misses "
        "and preempts decode slots for at-risk prefills)",
    )
    parser.add_argument(
        "--fault-rate", type=float, default=0.0, metavar="P",
        help="inject chunk-store lookup faults at this per-chunk probability: "
        "faulted chunks are recomputed (correct output, higher TTFT) and "
        "cells report the measured TTFT inflation vs a clean twin; also "
        "wraps the proxy probe's store in the fault injector",
    )
    parser.add_argument("--n-requests", type=int, default=100)
    parser.add_argument("--n-servers", type=int, default=1)
    parser.add_argument(
        "--scheduler", default="continuous", choices=SCHEDULERS,
        help="request scheduler (continuous batching by default)",
    )
    parser.add_argument("--max-batch-tokens", type=int, default=16_384)
    parser.add_argument(
        "--no-overlap-loads", action="store_true",
        help="disable cross-request load/compute pipelining in the "
        "continuous scheduler (it is on by default)",
    )
    parser.add_argument(
        "--measured-decode-pacing", action="store_true",
        help="pace continuous-batching decode iterations at the proxy-measured "
        "per-step rate (requires the probe; proxy wall-clock scale, off by "
        "default)",
    )
    parser.add_argument("--zipf-alpha", type=float, default=1.0)
    parser.add_argument(
        "--store-capacities", nargs="+", type=int, default=None, metavar="CHUNKS",
        help="RAM-tier store capacities (in chunks) to sweep: each point "
        "replays the workload through a RAM→slow tiered chunk store and "
        "reports store_hit_rate/store_bytes_stored per cell",
    )
    parser.add_argument(
        "--store-slow-factor", type=float, default=4.0, metavar="X",
        help="slow-tier capacity as a multiple of the RAM tier (default 4)",
    )
    parser.add_argument(
        "--kv-dtypes", nargs="+", default=None,
        choices=PRECISION_PRESETS, metavar="DTYPE",
        help="KV precision axis: store dtype presets to sweep (e.g. float16 "
        "int8 mixed); each cell is priced at that precision policy's KV "
        "width and annotated with the measured fusion quality of the dtype "
        "(mean KV / attention deviation on the proxy model)",
    )
    parser.add_argument(
        "--fleet-sizes", nargs="+", type=int, default=None, metavar="N",
        help="fleet axis: replica counts to sweep (e.g. 1 2 4 8); each cell "
        "routes the workload over N engine replicas with private chunk "
        "stores and reports per-replica hit rates and utilisation skew",
    )
    parser.add_argument(
        "--routing-policies", nargs="+", default=None,
        choices=ROUTING_POLICIES, metavar="POLICY",
        help="routing policies of the fleet axis "
        f"(default: all of {', '.join(ROUTING_POLICIES)})",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--with-proxy", action="store_true",
        help="also run the NumPy BlendEngine probe (real fusion numerics)",
    )
    parser.add_argument("--out-dir", default=".", help="directory for BENCH_*.json")
    parser.add_argument("--tag", default=None, help="label embedded in the filename")
    return parser


def config_from_args(args: argparse.Namespace) -> ExperimentConfig:
    # --smoke overrides only the size-related options (request count and
    # rate); everything else the user passed explicitly is respected and
    # recorded as-is in the report's config block.
    smoke = ExperimentConfig.smoke() if args.smoke else None
    return ExperimentConfig(
        models=tuple(args.models or ("mistral-7b", "yi-34b")),
        devices=tuple(args.devices or ("cpu_ram", "nvme_ssd")),
        schemes=tuple(args.schemes or SCHEMES),
        recompute_ratios=tuple(args.ratios or (0.15,)),
        dataset=args.dataset,
        request_rate=smoke.request_rate if smoke else args.rate,
        n_requests=smoke.n_requests if smoke else args.n_requests,
        n_servers=args.n_servers,
        scheduler=args.scheduler,
        max_batch_tokens=args.max_batch_tokens,
        overlap_loads=not args.no_overlap_loads,
        measured_decode_pacing=args.measured_decode_pacing,
        zipf_alpha=args.zipf_alpha,
        store_capacity_chunks=tuple(args.store_capacities or ()),
        store_slow_capacity_factor=args.store_slow_factor,
        arrival_pattern=args.arrival,
        ttft_slo_s=args.ttft_slo,
        admission_policies=tuple(args.admission_policies or ("none",)),
        fault_rate=args.fault_rate,
        fleet_sizes=tuple(args.fleet_sizes or ()),
        routing_policies=tuple(args.routing_policies or ROUTING_POLICIES),
        kv_dtypes=tuple(args.kv_dtypes or ()),
        seed=args.seed,
    )


def run_profile_command(args: argparse.Namespace) -> int:
    from repro.bench.profile import (
        ProfileConfig,
        check_against_baseline,
        format_profile_summary,
        run_profile,
        save_profile_report,
    )

    base = ProfileConfig.smoke() if args.smoke else ProfileConfig()
    config = dataclasses.replace(base, seed=args.seed)
    document = run_profile(config)
    tag = args.tag if args.tag is not None else ("smoke" if args.smoke else "")
    out_path = save_profile_report(document, out_dir=args.out_dir, tag=tag)
    print(format_profile_summary(document))
    print(f"\nwrote {out_path}")
    if args.check_baseline:
        baseline = json.loads(Path(args.check_baseline).read_text())
        failures = check_against_baseline(document, baseline)
        if failures:
            print("perf regression vs baseline:")
            for failure in failures:
                print(f"  {failure}")
            return 1
        print(f"baseline check passed ({args.check_baseline})")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.profile:
        return run_profile_command(args)
    try:
        config = config_from_args(args)
    except ValueError as error:
        # Cross-flag validation (e.g. --measured-decode-pacing with
        # --scheduler fcfs) reads as a usage error, not a traceback.
        parser.error(str(error))
    runner = ExperimentRunner(config)
    # (--measured-decode-pacing forces the probe inside the runner itself.)
    report = runner.run(with_proxy=args.with_proxy or args.smoke)
    tag = args.tag if args.tag is not None else ("smoke" if args.smoke else "")
    out_path = save_report(report, out_dir=args.out_dir, tag=tag)
    print(format_summary(report_to_dict(report, tag=tag)))
    print(f"\nwrote {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
