"""Workload synthesis and serving-scheme experiment sweeps.

This package is the measurement substrate of the reproduction: it generates
paper-style RAG request streams (:mod:`repro.bench.workload`), sweeps serving
schemes over models, storage devices and recompute ratios
(:mod:`repro.bench.experiment`) and writes machine-readable ``BENCH_*.json``
reports (:mod:`repro.bench.report`).  ``python -m repro.bench --smoke`` runs
the CI-sized sweep.
"""

from repro.bench.experiment import (
    QUALITY_SCORES,
    CellResult,
    ExperimentConfig,
    ExperimentReport,
    ExperimentRunner,
    build_comparisons,
    run_proxy_probe,
)
from repro.bench.report import (
    SCHEMA_VERSION,
    format_summary,
    report_to_dict,
    save_report,
    validate_report,
)
from repro.bench.workload import (
    DATASET_PRESETS,
    DatasetSpec,
    WorkloadGenerator,
    WorkloadStats,
    get_dataset,
)

__all__ = [
    "QUALITY_SCORES",
    "CellResult",
    "ExperimentConfig",
    "ExperimentReport",
    "ExperimentRunner",
    "build_comparisons",
    "run_proxy_probe",
    "SCHEMA_VERSION",
    "format_summary",
    "report_to_dict",
    "save_report",
    "validate_report",
    "DATASET_PRESETS",
    "DatasetSpec",
    "WorkloadGenerator",
    "WorkloadStats",
    "get_dataset",
]
