"""Scheme × model × device × recompute-ratio experiment sweeps.

:class:`ExperimentRunner` replays one synthesized workload (the same request
stream, for fairness) through an :class:`~repro.serving.engine.InferenceEngine`
per sweep cell, schedules it with FCFS or continuous batching, and aggregates
the serving metrics the paper reports: TTFT percentiles, throughput, queueing
delay, GPU utilisation and the fraction of prefill compute actually spent
(recompute fraction).  Optionally a small :class:`~repro.core.blend_engine.
BlendEngine` probe runs the real NumPy fusion pipeline — *pipelined*, through
the executor, with cross-request overlap — to attach measured trace-derived
TTFTs (reported beside the analytic estimates), measured recompute fractions
and KV-store hit rates to the report; its traces calibrate the measured TTFT
column of every CacheBlend sweep cell.

Quality is attached per scheme as a static score calibrated to the paper's
accuracy results (§6.2): full recompute and prefix caching are exact,
CacheBlend is statistically indistinguishable from full prefill, while full
KV reuse loses substantial F1/Rouge by ignoring cross-chunk attention.  The
``quality_adjusted_ttft`` of a cell inflates its TTFT by its quality deficit
so "fast but wrong" baselines can be compared against CacheBlend on one axis.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace

import numpy as np

from repro.bench.workload import ARRIVAL_PATTERNS, WorkloadGenerator
from repro.kvstore.device import get_device
from repro.kvstore.precision import PRECISION_PRESETS, PrecisionPolicy
from repro.model.config import get_config
from repro.serving.costmodel import OnlineCostCalibration, ServingCostModel
from repro.serving.engine import SCHEMES, InferenceEngine
from repro.serving.request import GenerationRequest, RequestTiming
from repro.serving.router import ROUTING_POLICIES, simulate_fleet
from repro.serving.scheduler import (
    ContinuousBatchingScheduler,
    FCFSScheduler,
    Scheduler,
)
from repro.serving.simulator import summarise_run

#: Static per-scheme generation-quality scores (relative to full prefill),
#: calibrated to the paper's §6.2 quality results.
QUALITY_SCORES: dict[str, float] = {
    "full_recompute": 1.0,
    "prefix_caching": 1.0,
    "full_reuse": 0.80,
    "cacheblend": 0.99,
}

SCHEDULERS = ("fcfs", "continuous")

#: Admission-policy axis values: ``none`` serves every arrival (the classic
#: behaviour), ``slo`` turns on the continuous scheduler's SLO admission
#: control *and* decode preemption so overload is shed instead of queued.
ADMISSION_POLICIES = ("none", "slo")


@dataclass(frozen=True)
class ExperimentConfig:
    """One sweep: the cross product of models × devices × schemes × ratios."""

    models: tuple[str, ...] = ("mistral-7b", "yi-34b")
    devices: tuple[str, ...] = ("cpu_ram", "nvme_ssd")
    schemes: tuple[str, ...] = SCHEMES
    recompute_ratios: tuple[float, ...] = (0.15,)
    dataset: str = "2wikimqa"
    request_rate: float = 1.0
    n_requests: int = 100
    n_servers: int = 1
    scheduler: str = "continuous"
    max_batch_tokens: int = 16_384
    prefill_chunk_tokens: int = 512
    #: Cross-request load/compute pipelining in the continuous scheduler
    #: (hide one request's KV-loading stalls behind co-batched compute).
    overlap_loads: bool = True
    #: Pace decode iterations at the proxy-measured per-step rate (the
    #: calibration's ``decode_s_per_step``) instead of the analytic
    #: ``decode_time`` slice.  Off by default: the measurement is wall-clock
    #: on the NumPy proxy, so its *scale* matches the proxy serving loop
    #: (the e2e tier), not the paper architectures the sweep cells price —
    #: enabling it deliberately trades scale fidelity for measured pacing.
    measured_decode_pacing: bool = False
    n_unique_chunks: int = 400
    zipf_alpha: float = 1.0
    cache_chunk_capacity: int = 160
    #: Optional store-capacity axis: RAM-tier capacities (in chunks) of a
    #: RAM→slow tiered chunk store.  For each capacity the workload's access
    #: trace is replayed through the tiered store and every cell is served
    #: with the resulting per-request cached/slow-tier fractions — exposing
    #: the hit-rate/TTFT hockey-stick as the store thrashes under Zipf.
    #: Empty (default) keeps the single ``cache_chunk_capacity`` behaviour.
    store_capacity_chunks: tuple[int, ...] = ()
    #: Slow-tier capacity as a multiple of the RAM-tier capacity.
    store_slow_capacity_factor: float = 4.0
    #: Arrival process of the synthesized workload (see
    #: :data:`~repro.bench.workload.ARRIVAL_PATTERNS`): ``bursty`` and
    #: ``diurnal`` concentrate the same average load into transient overload
    #: windows — the regime the SLO admission axis is measured under.
    arrival_pattern: str = "poisson"
    #: TTFT deadline stamped on every generated request.  Required when the
    #: admission axis includes ``"slo"``; without it admission control has
    #: nothing to enforce and would silently admit everything.
    ttft_slo_s: float | None = None
    #: Admission-policy axis: every cell is scheduled once per policy and
    #: carries an ``admission_policy`` column, so a single report compares
    #: goodput with and without SLO admission + preemption.
    admission_policies: tuple[str, ...] = ("none",)
    #: Chunk-store fault axis: each cached chunk independently fails its KV
    #: lookup with this probability (seeded binomial per request) and is
    #: recomputed from scratch — the sweep-level analogue of the engine's
    #: retry-then-recompute fallback.  Cells report the recomputed-chunk
    #: count and the measured TTFT inflation against a clean twin run.
    fault_rate: float = 0.0
    #: Fleet axis: replica counts to sweep (e.g. ``(1, 2, 4, 8)``).  For
    #: each size × routing policy the workload's chunk access trace is
    #: routed over that many engine replicas — each with a *private* chunk
    #: store of ``cache_chunk_capacity`` entries and its own scheduler —
    #: and the cell reports aggregate throughput, per-replica hit rates and
    #: utilisation skew.  Empty (default) keeps the single-server sweep.
    fleet_sizes: tuple[int, ...] = ()
    #: Routing policies of the fleet axis (see
    #: :data:`~repro.serving.router.ROUTING_POLICIES`).
    routing_policies: tuple[str, ...] = ROUTING_POLICIES
    #: KV precision axis: store dtype presets to sweep (see
    #: :data:`~repro.kvstore.precision.PRECISION_PRESETS`).  Each cell is
    #: priced under that :class:`~repro.kvstore.precision.PrecisionPolicy`
    #: (KV load *and* decode memory traffic scale with the policy's bytes
    #: per token), carries a ``kv_dtype`` column plus policy-priced
    #: ``store_bytes_stored``, and is annotated with the measured fusion
    #: quality of that dtype — mean KV / attention deviation of the proxy
    #: model's fused output against a full-recompute reference.  Together
    #: these trace the quality × density × TTFT frontier.  Empty (default)
    #: keeps the single-precision behaviour.
    kv_dtypes: tuple[str, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        if self.arrival_pattern not in ARRIVAL_PATTERNS:
            raise ValueError(
                f"unknown arrival_pattern {self.arrival_pattern!r}; "
                f"expected one of {ARRIVAL_PATTERNS}"
            )
        if self.ttft_slo_s is not None and self.ttft_slo_s <= 0:
            raise ValueError("ttft_slo_s must be positive when set")
        if not self.admission_policies:
            raise ValueError("admission_policies must be non-empty")
        for policy in self.admission_policies:
            if policy not in ADMISSION_POLICIES:
                raise ValueError(
                    f"unknown admission policy {policy!r}; "
                    f"expected one of {ADMISSION_POLICIES}"
                )
        if "slo" in self.admission_policies:
            if self.ttft_slo_s is None:
                raise ValueError(
                    "the 'slo' admission policy requires ttft_slo_s: without "
                    "deadlines admission control admits everything"
                )
            if self.scheduler != "continuous":
                raise ValueError(
                    "the 'slo' admission policy requires the 'continuous' "
                    "scheduler (FCFS has no admission or preemption)"
                )
        if not 0.0 <= self.fault_rate <= 1.0:
            raise ValueError("fault_rate must be in [0, 1]")
        if any(size < 1 for size in self.fleet_sizes):
            raise ValueError("fleet_sizes entries must be >= 1")
        if not self.routing_policies:
            raise ValueError("routing_policies must be non-empty")
        for policy in self.routing_policies:
            if policy not in ROUTING_POLICIES:
                raise ValueError(
                    f"unknown routing policy {policy!r}; "
                    f"expected one of {ROUTING_POLICIES}"
                )
        for dtype in self.kv_dtypes:
            if dtype not in PRECISION_PRESETS:
                raise ValueError(
                    f"unknown kv_dtype {dtype!r}; "
                    f"expected one of {PRECISION_PRESETS}"
                )
        if self.kv_dtypes and self.fleet_sizes:
            # The fleet axis prices every replica with the legacy model-width
            # cost model; crossing it with per-dtype pricing would multiply
            # the sweep without a baseline to compare against.
            raise ValueError(
                "kv_dtypes and fleet_sizes are mutually exclusive sweep axes"
            )
        if self.fleet_sizes:
            # The fleet axis owns the store model (one private tracker per
            # replica) and the request stream (per-replica relabelling), so
            # it stays orthogonal to the tiered-store and fault axes.
            if self.store_capacity_chunks:
                raise ValueError(
                    "fleet_sizes and store_capacity_chunks are mutually "
                    "exclusive sweep axes"
                )
            if self.fault_rate > 0.0:
                raise ValueError(
                    "fleet_sizes and fault_rate are mutually exclusive sweep axes"
                )
        if any(capacity < 1 for capacity in self.store_capacity_chunks):
            raise ValueError("store_capacity_chunks entries must be >= 1")
        if self.store_slow_capacity_factor < 1.0:
            raise ValueError("store_slow_capacity_factor must be >= 1")
        if not self.models or not self.devices or not self.schemes:
            raise ValueError("models, devices and schemes must be non-empty")
        for scheme in self.schemes:
            if scheme not in SCHEMES:
                raise ValueError(f"unknown scheme {scheme!r}; expected one of {SCHEMES}")
        if self.scheduler not in SCHEDULERS:
            raise ValueError(
                f"unknown scheduler {self.scheduler!r}; expected one of {SCHEDULERS}"
            )
        if not self.recompute_ratios:
            raise ValueError("recompute_ratios must be non-empty")
        if self.n_requests < 1:
            raise ValueError("n_requests must be >= 1")
        if self.measured_decode_pacing and self.scheduler != "continuous":
            # Only the continuous scheduler paces per-iteration decode; with
            # FCFS the flag would silently do nothing while still forcing
            # the proxy probe run.
            raise ValueError(
                "measured_decode_pacing requires the 'continuous' scheduler"
            )

    @classmethod
    def smoke(cls) -> "ExperimentConfig":
        """Small sweep that finishes in seconds (used by CI and --smoke)."""
        return cls(n_requests=60, request_rate=0.8)


@dataclass
class CellResult:
    """Aggregated metrics of one sweep cell."""

    model: str
    device: str
    scheme: str
    recompute_ratio: float
    mean_ttft: float
    p50_ttft: float
    p90_ttft: float
    p99_ttft: float
    mean_queueing: float
    mean_ttft_service: float
    throughput: float
    gpu_utilisation: float
    mean_recomputed_fraction: float
    quality: float
    quality_adjusted_ttft: float
    #: Mean trace-calibrated (measured) pipeline delay beside the analytic
    #: ``mean_ttft_service`` — CacheBlend cells under ``--with-proxy`` only.
    mean_ttft_service_measured: float | None = None
    #: Mean per-request decode throughput over the scheduled run (tokens
    #: after the first, per second of first-token-to-completion span) — with
    #: measured width-aware pacing this is where co-batched decode
    #: amortisation shows up at the sweep level.
    mean_decode_tokens_per_s: float = 0.0
    #: Store-capacity axis columns (``None`` when the axis is off): the
    #: RAM-tier capacity in chunks this cell was served under, the tiered
    #: store's chunk hit rate over the workload replay, the KV bytes
    #: resident across tiers at this model's KV width, and the share of
    #: hits served from the slow tier.
    store_capacity_chunks: int | None = None
    store_hit_rate: float | None = None
    store_bytes_stored: int | None = None
    store_slow_tier_hit_share: float | None = None
    #: KV precision axis columns (``None`` when the axis is off): the store
    #: dtype preset this cell was priced under, and the measured quality of
    #: that dtype on the proxy model — the mean KV deviation the store
    #: quantisation introduces on chunk caches, and the end-to-end
    #: forward-attention deviation of the fused output against a
    #: full-recompute reference (the paper's Figure-6 metric).
    kv_dtype: str | None = None
    mean_kv_deviation: float | None = None
    mean_attention_deviation: float | None = None
    #: Robustness columns.  ``admission_policy`` names the scheduling policy
    #: this cell ran under; ``goodput`` is SLO-met requests per second of
    #: served makespan (equal to throughput when no deadline is set);
    #: ``slo_attainment`` counts rejected requests as misses, so shedding
    #: load only pays off when the survivors actually meet their deadlines.
    admission_policy: str = "none"
    goodput: float = 0.0
    slo_attainment: float = 1.0
    rejection_rate: float = 0.0
    preemption_count: int = 0
    #: Fault axis columns: the injected per-chunk lookup failure rate, how
    #: many cached chunks this cell recovered by recomputing, and the mean
    #: TTFT of the faulted run over its clean twin (``None`` with faults off).
    fault_rate: float = 0.0
    fault_recovered_chunks: int = 0
    fault_ttft_inflation: float | None = None
    #: Fleet axis columns (``None`` when the axis is off): the routing
    #: policy and replica count this cell ran under, the served throughput
    #: across all replicas, each replica's private-store hit rate, the
    #: fleet-wide hit rate, and the max/mean replica busy share (1.0 is a
    #: perfectly even fleet).
    routing_policy: str | None = None
    n_replicas: int | None = None
    aggregate_throughput: float | None = None
    per_replica_hit_rates: list[float] | None = None
    fleet_hit_rate: float | None = None
    utilisation_skew: float | None = None

    def as_dict(self) -> dict[str, object]:
        return asdict(self)


@dataclass
class ExperimentReport:
    """Everything one sweep produced, ready for JSON serialisation."""

    config: ExperimentConfig
    workload: dict[str, object]
    cells: list[CellResult]
    comparisons: list[dict[str, object]] = field(default_factory=list)
    proxy: dict[str, object] | None = None


class ExperimentRunner:
    """Runs one :class:`ExperimentConfig` sweep over a shared workload."""

    def __init__(self, config: ExperimentConfig) -> None:
        self.config = config

    # ------------------------------------------------------------------
    def _build_scheduler(
        self,
        calibration: OnlineCostCalibration | None = None,
        admission_policy: str = "none",
        n_servers: int | None = None,
    ) -> Scheduler:
        if n_servers is None:
            n_servers = self.config.n_servers
        if self.config.scheduler == "fcfs":
            return FCFSScheduler(n_servers=n_servers)
        # When measured pacing is on, the same calibration paces every cell's
        # decode iterations, so the measured rate shifts all schemes
        # identically and the scheme-vs-scheme comparisons stay fair.
        return ContinuousBatchingScheduler(
            n_servers=n_servers,
            max_batch_tokens=self.config.max_batch_tokens,
            prefill_chunk_tokens=self.config.prefill_chunk_tokens,
            overlap_loads=self.config.overlap_loads,
            admission_control=admission_policy == "slo",
            preemption=admission_policy == "slo",
            decode_calibration=(
                calibration if self.config.measured_decode_pacing else None
            ),
        )

    def _generate_workload(
        self,
    ) -> tuple[list[GenerationRequest], dict[str, object], WorkloadGenerator]:
        generator = WorkloadGenerator(
            dataset=self.config.dataset,
            request_rate=self.config.request_rate,
            arrival_pattern=self.config.arrival_pattern,
            ttft_slo_s=self.config.ttft_slo_s,
            n_unique_chunks=self.config.n_unique_chunks,
            zipf_alpha=self.config.zipf_alpha,
            cache_chunk_capacity=self.config.cache_chunk_capacity,
            seed=self.config.seed,
        )
        requests = generator.generate(self.config.n_requests)
        return requests, generator.stats.as_dict(), generator

    def _inject_store_faults(
        self, requests: list[GenerationRequest]
    ) -> tuple[list[GenerationRequest], int]:
        """Relabel fault-hit cached chunks as cold (recompute fallback).

        Each cached chunk independently fails its store lookup with
        probability ``fault_rate`` — the sweep-level model of the engine's
        retry-exhausted recompute fallback: the request still completes
        correctly, but the faulted chunks are priced as full prefill.
        Prefix-cached fractions are clamped to the surviving cached fraction
        (a faulted chunk breaks the reusable prefix at that point).
        """
        rng = np.random.default_rng((self.config.seed, 0xFA017))
        faulted: list[GenerationRequest] = []
        n_recovered = 0
        for request in requests:
            n_cached = int(round(request.cached_chunk_fraction * request.n_chunks))
            n_faults = int(rng.binomial(n_cached, self.config.fault_rate))
            if n_faults == 0:
                faulted.append(request)
                continue
            n_recovered += n_faults
            cached = (n_cached - n_faults) / request.n_chunks
            faulted.append(
                replace(
                    request,
                    cached_chunk_fraction=cached,
                    prefix_cached_fraction=min(
                        request.prefix_cached_fraction, cached
                    ),
                )
            )
        return faulted, n_recovered

    # ------------------------------------------------------------------
    def run_cell(
        self,
        requests: list[GenerationRequest],
        model: str,
        device: str,
        scheme: str,
        recompute_ratio: float,
        calibration: OnlineCostCalibration | None = None,
        admission_policy: str = "none",
        clean_requests: list[GenerationRequest] | None = None,
        kv_dtype: str | None = None,
    ) -> CellResult:
        """Serve the shared workload in one sweep cell and aggregate it.

        With a ready *calibration* (measured per-layer rates and decode steps
        from the proxy probe), CacheBlend cells additionally report the
        trace-calibrated ``mean_ttft_service_measured`` (first decode step
        included) beside the analytic estimate, and the continuous-batching
        scheduler paces decode iterations at the measured per-step rate.

        Under ``admission_policy="slo"`` the continuous scheduler rejects
        requests whose predicted TTFT misses their deadline and preempts
        decode slots for at-risk prefills; rejected requests are excluded
        from the service-quality aggregates but counted in
        ``rejection_rate`` and ``slo_attainment``.  With *clean_requests*
        (the fault axis's no-fault twin of the same stream) the cell also
        reports ``fault_ttft_inflation`` — the measured TTFT cost of
        recomputing fault-hit chunks.

        *kv_dtype* (the precision axis) prices the cell's KV traffic — load
        bandwidth and decode memory reads — at that store precision policy's
        bytes per token instead of the model preset's native width.
        """
        cost_model = ServingCostModel(
            get_config(model), calibration=calibration, precision=kv_dtype
        )
        needs_device = scheme in ("full_reuse", "cacheblend")
        engine = InferenceEngine(
            cost_model,
            scheme=scheme,
            device=get_device(device) if needs_device else None,
            recompute_ratio=recompute_ratio,
            # Tiered pricing: requests carrying a slow_tier_fraction split
            # their cached loads between the RAM tier and `device`; legacy
            # requests (fraction None) ignore it entirely.
            fast_device=get_device("cpu_ram") if needs_device else None,
        )
        results = engine.serve_batch(requests)
        scheduler = self._build_scheduler(calibration, admission_policy)
        timings = scheduler.schedule(requests, results)
        cell = self._aggregate(
            model, device, scheme, recompute_ratio, requests, results, timings,
            admission_policy=admission_policy,
        )
        if clean_requests is not None:
            clean_results = engine.serve_batch(clean_requests)
            clean_timings = self._build_scheduler(
                calibration, admission_policy
            ).schedule(clean_requests, clean_results)
            clean_ttfts = [t.ttft for t in clean_timings if not t.rejected]
            clean_mean = float(np.mean(clean_ttfts)) if clean_ttfts else 0.0
            if clean_mean > 0.0 and cell.mean_ttft > 0.0:
                cell = replace(
                    cell, fault_ttft_inflation=cell.mean_ttft / clean_mean
                )
        return cell

    def run_fleet_cell(
        self,
        requests: list[GenerationRequest],
        chunk_ids_per_request: list[list[int]],
        model: str,
        device: str,
        scheme: str,
        recompute_ratio: float,
        routing_policy: str,
        n_replicas: int,
        calibration: OnlineCostCalibration | None = None,
        admission_policy: str = "none",
    ) -> CellResult:
        """Serve the workload over a fleet of *n_replicas* replicas.

        Each replica wraps its own engine (scheme/model/device as the cell)
        and a private chunk store of ``cache_chunk_capacity`` entries; the
        *routing_policy* decides placement from the workload's chunk access
        trace.  Cached/prefix fractions are relabelled per replica (the
        global workload labels describe a shared store), so the routing
        policy's chunk-locality quality shows up directly in hit rates and
        TTFT.  Aggregation treats the fleet as ``n_replicas`` servers.
        """
        needs_device = scheme in ("full_reuse", "cacheblend")

        def engine_factory(replica_id: int) -> InferenceEngine:
            cost_model = ServingCostModel(get_config(model), calibration=calibration)
            return InferenceEngine(
                cost_model,
                scheme=scheme,
                device=get_device(device) if needs_device else None,
                recompute_ratio=recompute_ratio,
            )

        fleet = simulate_fleet(
            requests,
            chunk_ids_per_request,
            policy=routing_policy,
            n_replicas=n_replicas,
            engine_factory=engine_factory,
            scheduler_factory=lambda replica_id: self._build_scheduler(
                calibration, admission_policy, n_servers=1
            ),
            store_capacity_chunks=self.config.cache_chunk_capacity,
        )
        cell = self._aggregate(
            model, device, scheme, recompute_ratio,
            fleet.requests, fleet.results, fleet.timings,
            admission_policy=admission_policy,
            n_servers=n_replicas,
        )
        return replace(
            cell,
            routing_policy=routing_policy,
            n_replicas=n_replicas,
            aggregate_throughput=cell.throughput,
            per_replica_hit_rates=list(fleet.per_replica_hit_rates),
            fleet_hit_rate=fleet.aggregate_hit_rate,
            utilisation_skew=fleet.utilisation_skew,
        )

    def _aggregate(
        self,
        model: str,
        device: str,
        scheme: str,
        recompute_ratio: float,
        requests: list[GenerationRequest],
        results,
        timings: list[RequestTiming],
        admission_policy: str = "none",
        n_servers: int | None = None,
    ) -> CellResult:
        # Rejected requests never occupy a server, so the service-quality
        # aggregates (TTFT percentiles, throughput, utilisation) cover the
        # *served* stream only; the rejections show up in rejection_rate and
        # as SLO misses in slo_attainment/goodput, where shedding is priced.
        served = [
            (request, result, timing)
            for request, result, timing in zip(requests, results, timings)
            if not timing.rejected
        ]
        n_rejected = len(requests) - len(served)
        n_met_slo = sum(1 for timing in timings if timing.met_slo)
        preemption_count = sum(timing.n_preemptions for timing in timings)
        quality = QUALITY_SCORES[scheme]
        robustness = {
            "admission_policy": admission_policy,
            "slo_attainment": n_met_slo / len(requests),
            "rejection_rate": n_rejected / len(requests),
            "preemption_count": preemption_count,
            "fault_rate": self.config.fault_rate,
        }
        if not served:
            # The whole queue was shed: an honest all-zero service row beats
            # a crash, and rejection_rate == 1.0 makes the cause visible.
            return CellResult(
                model=model,
                device=device,
                scheme=scheme,
                recompute_ratio=recompute_ratio,
                mean_ttft=0.0,
                p50_ttft=0.0,
                p90_ttft=0.0,
                p99_ttft=0.0,
                mean_queueing=0.0,
                mean_ttft_service=0.0,
                throughput=0.0,
                gpu_utilisation=0.0,
                mean_recomputed_fraction=0.0,
                quality=quality,
                quality_adjusted_ttft=0.0,
                **robustness,
            )
        served_requests = [request for request, _, _ in served]
        served_results = [result for _, result, _ in served]
        served_timings = [timing for _, _, timing in served]
        summary = summarise_run(
            served_requests,
            served_results,
            served_timings,
            n_servers if n_servers is not None else self.config.n_servers,
        )
        decode_rates = [
            (request.n_output_tokens - 1) / span
            for request, timing in zip(served_requests, served_timings)
            if request.n_output_tokens > 1
            and (span := timing.completion_time - timing.first_token_time) > 0.0
        ]
        return CellResult(
            model=model,
            device=device,
            scheme=scheme,
            recompute_ratio=recompute_ratio,
            mean_ttft=summary.mean_ttft,
            p50_ttft=summary.p50_ttft,
            p90_ttft=summary.p90_ttft,
            p99_ttft=summary.p99_ttft,
            mean_queueing=summary.mean_queueing,
            mean_ttft_service=float(
                np.mean([r.ttft_service for r in served_results])
            ),
            throughput=summary.throughput,
            gpu_utilisation=summary.gpu_utilisation,
            mean_recomputed_fraction=float(
                np.mean([r.recomputed_fraction for r in served_results])
            ),
            quality=quality,
            quality_adjusted_ttft=summary.mean_ttft / quality,
            mean_ttft_service_measured=summary.mean_ttft_service_measured,
            mean_decode_tokens_per_s=(
                float(np.mean(decode_rates)) if decode_rates else 0.0
            ),
            goodput=(
                n_met_slo / summary.makespan if summary.makespan > 0 else 0.0
            ),
            **robustness,
        )

    # ------------------------------------------------------------------
    def run(self, with_proxy: bool = False) -> ExperimentReport:
        """Run the full sweep; optionally attach a BlendEngine probe.

        Only ``cacheblend`` actually depends on the recompute ratio; the
        baseline schemes are served once per (model, device) and their cell
        is replicated across ratios so every comparison row stays complete.

        With ``with_proxy`` the measured probe runs *first*: it executes the
        real pipelined fusion (cross-request) and its traces calibrate an
        :class:`~repro.serving.costmodel.OnlineCostCalibration` that every
        CacheBlend cell then uses to report measured TTFT beside the
        analytic estimate.  ``measured_decode_pacing`` forces the probe —
        without its decode observations the pacing would silently fall back
        to analytic.
        """
        calibration: OnlineCostCalibration | None = None
        proxy: dict[str, object] | None = None
        if with_proxy or self.config.measured_decode_pacing:
            calibration = OnlineCostCalibration()
            proxy = run_proxy_probe(
                seed=self.config.seed,
                calibration=calibration,
                fault_rate=self.config.fault_rate,
            )

        requests, workload_stats, generator = self._generate_workload()

        # Fleet axis: route the same stream over n_replicas × routing_policy
        # fleets instead of the single-server store sweep.  The per-policy
        # saturation story lives in the routing comparisons (affinity vs
        # least-loaded hit-rate gain, utilisation skew, tail TTFT).
        if self.config.fleet_sizes:
            chunk_ids_per_request = [
                chunk_ids for chunk_ids, _ in generator.last_chunk_accesses
            ]
            fleet_cells: list[CellResult] = []
            for n_replicas in self.config.fleet_sizes:
                for routing_policy in self.config.routing_policies:
                    for model in self.config.models:
                        for device in self.config.devices:
                            for scheme in self.config.schemes:
                                for policy in self.config.admission_policies:
                                    ratio_dependent = scheme == "cacheblend"
                                    base: CellResult | None = None
                                    for ratio in self.config.recompute_ratios:
                                        if ratio_dependent or base is None:
                                            base = self.run_fleet_cell(
                                                requests,
                                                chunk_ids_per_request,
                                                model, device, scheme, ratio,
                                                routing_policy=routing_policy,
                                                n_replicas=n_replicas,
                                                calibration=calibration,
                                                admission_policy=policy,
                                            )
                                            fleet_cells.append(base)
                                        else:
                                            fleet_cells.append(
                                                replace(base, recompute_ratio=ratio)
                                            )
            return ExperimentReport(
                config=self.config,
                workload=workload_stats,
                cells=fleet_cells,
                comparisons=build_comparisons(fleet_cells),
                proxy=proxy,
            )

        # The store-capacity axis replays the same access trace through a
        # RAM→slow tiered store per capacity; each point serves requests
        # re-labelled with that capacity's cached/prefix/slow fractions.
        store_points: list[tuple[int | None, list[GenerationRequest], object]] = []
        if self.config.store_capacity_chunks:
            for capacity in self.config.store_capacity_chunks:
                slow_capacity = max(
                    1, int(round(capacity * self.config.store_slow_capacity_factor))
                )
                simulation = generator.simulate_tiered_store(capacity, slow_capacity)
                relabelled = [
                    replace(
                        request,
                        cached_chunk_fraction=cached,
                        prefix_cached_fraction=prefix,
                        slow_tier_fraction=slow,
                    )
                    for request, (cached, prefix, slow) in zip(
                        requests, simulation.per_request
                    )
                ]
                store_points.append((capacity, relabelled, simulation))
        else:
            store_points.append((None, requests, None))

        # KV precision axis: measure each dtype's fusion quality once on the
        # proxy model (the probe is scheme- and device-independent, so every
        # cell at that dtype shares it), and — when the capacity axis is off
        # — replay the access trace through the default-capacity tiered
        # store so the policy-priced resident-byte column stays measurable.
        dtype_points: list[str | None] = list(self.config.kv_dtypes) or [None]
        dtype_quality: dict[str, dict[str, float]] = {}
        dtype_simulation = None
        if self.config.kv_dtypes:
            dtype_quality = run_quality_probe(
                self.config.kv_dtypes,
                seed=self.config.seed,
                recompute_ratio=self.config.recompute_ratios[0],
            )
            if not self.config.store_capacity_chunks:
                slow_capacity = max(
                    1,
                    int(
                        round(
                            self.config.cache_chunk_capacity
                            * self.config.store_slow_capacity_factor
                        )
                    ),
                )
                dtype_simulation = generator.simulate_tiered_store(
                    self.config.cache_chunk_capacity, slow_capacity
                )

        cells: list[CellResult] = []
        for capacity, point_requests, simulation in store_points:
            # Fault axis: relabel fault-hit cached chunks as cold (recompute
            # fallback) and keep the clean stream as the TTFT-inflation twin.
            clean_requests: list[GenerationRequest] | None = None
            n_fault_recovered = 0
            if self.config.fault_rate > 0.0:
                clean_requests = point_requests
                point_requests, n_fault_recovered = self._inject_store_faults(
                    point_requests
                )
            for model in self.config.models:
                store_columns: dict[str, object] = {}
                if simulation is not None:
                    store_columns = {
                        "store_capacity_chunks": capacity,
                        "store_hit_rate": simulation.hit_rate,
                        "store_bytes_stored": sum(simulation.resident_tokens)
                        * get_config(model).kv_bytes_per_token(),
                        "store_slow_tier_hit_share": simulation.slow_tier_hit_share,
                    }
                for kv_dtype in dtype_points:
                    dtype_columns: dict[str, object] = {}
                    if kv_dtype is not None:
                        # Policy-priced resident bytes: the same resident
                        # tokens, at the sweep dtype's width instead of the
                        # model preset's native KV width (this is the
                        # density leg of the frontier; fp16 vs int8 is
                        # exactly the policies' mean-element-width ratio).
                        policy = PrecisionPolicy.get(kv_dtype)
                        model_config = get_config(model)
                        bytes_per_token = (
                            model_config.n_layers
                            * policy.kv_bytes_per_token_per_layer(
                                model_config.n_kv_heads,
                                model_config.head_dim,
                                model_config.n_layers,
                            )
                        )
                        byte_simulation = (
                            simulation if simulation is not None else dtype_simulation
                        )
                        quality_probe = dtype_quality.get(kv_dtype, {})
                        dtype_columns = {
                            "kv_dtype": kv_dtype,
                            "store_hit_rate": byte_simulation.hit_rate,
                            "store_bytes_stored": int(
                                round(
                                    sum(byte_simulation.resident_tokens)
                                    * bytes_per_token
                                )
                            ),
                            "store_slow_tier_hit_share": (
                                byte_simulation.slow_tier_hit_share
                            ),
                            "mean_kv_deviation": quality_probe.get(
                                "mean_kv_deviation"
                            ),
                            "mean_attention_deviation": quality_probe.get(
                                "mean_attention_deviation"
                            ),
                        }
                    columns = {**store_columns, **dtype_columns}
                    for device in self.config.devices:
                        for scheme in self.config.schemes:
                            for policy_name in self.config.admission_policies:
                                ratio_dependent = scheme == "cacheblend"
                                base_cell: CellResult | None = None
                                for ratio in self.config.recompute_ratios:
                                    if ratio_dependent or base_cell is None:
                                        base_cell = replace(
                                            self.run_cell(
                                                point_requests, model, device,
                                                scheme, ratio,
                                                calibration=calibration,
                                                admission_policy=policy_name,
                                                clean_requests=clean_requests,
                                                kv_dtype=kv_dtype,
                                            ),
                                            fault_recovered_chunks=n_fault_recovered,
                                            **columns,
                                        )
                                        cells.append(base_cell)
                                    else:
                                        cells.append(
                                            replace(base_cell, recompute_ratio=ratio)
                                        )
        return ExperimentReport(
            config=self.config,
            workload=workload_stats,
            cells=cells,
            comparisons=build_comparisons(cells),
            proxy=proxy,
        )


def build_comparisons(cells: list[CellResult]) -> list[dict[str, object]]:
    """Per (model, device, ratio): CacheBlend vs the paper's baselines.

    ``full_reuse`` is compared on its *quality-adjusted* TTFT — it answers
    faster but degrades generation quality, so its TTFT is inflated by the
    quality deficit before the comparison (see module docstring).
    """
    by_key: dict[tuple, dict[str, CellResult]] = {}
    for cell in cells:
        capacity_key = (
            cell.store_capacity_chunks if cell.store_capacity_chunks is not None else -1
        )
        by_key.setdefault(
            (
                cell.model,
                cell.device,
                cell.recompute_ratio,
                capacity_key,
                cell.admission_policy,
                cell.routing_policy,
                cell.n_replicas,
                cell.kv_dtype,
            ),
            {},
        )[cell.scheme] = cell
    comparisons: list[dict[str, object]] = []
    for key, schemes in sorted(
        by_key.items(), key=lambda item: tuple(map(str, item[0]))
    ):
        model, device, ratio, capacity_key, policy, routing, n_replicas, kv_dtype = key
        blend = schemes.get("cacheblend")
        if blend is None:
            continue
        row: dict[str, object] = {
            "model": model,
            "device": device,
            "recompute_ratio": ratio,
            "cacheblend_mean_ttft": blend.mean_ttft,
        }
        if policy != "none":
            row["admission_policy"] = policy
        if kv_dtype is not None:
            row["kv_dtype"] = kv_dtype
        if routing is not None:
            row["routing_policy"] = routing
            row["n_replicas"] = n_replicas
            row["fleet_hit_rate"] = blend.fleet_hit_rate
        if capacity_key >= 0:
            row["store_capacity_chunks"] = capacity_key
            row["store_hit_rate"] = blend.store_hit_rate
        recompute = schemes.get("full_recompute")
        if recompute is not None:
            row["full_recompute_mean_ttft"] = recompute.mean_ttft
            row["speedup_vs_full_recompute"] = (
                recompute.mean_ttft / blend.mean_ttft if blend.mean_ttft else float("inf")
            )
            row["cacheblend_beats_full_recompute"] = blend.mean_ttft < recompute.mean_ttft
        reuse = schemes.get("full_reuse")
        if reuse is not None:
            row["full_reuse_quality_adjusted_ttft"] = reuse.quality_adjusted_ttft
            row["cacheblend_beats_full_reuse_quality_adjusted"] = (
                blend.quality_adjusted_ttft < reuse.quality_adjusted_ttft
            )
        prefix = schemes.get("prefix_caching")
        if prefix is not None:
            row["prefix_caching_mean_ttft"] = prefix.mean_ttft
        comparisons.append(row)
    comparisons.extend(build_admission_comparisons(cells))
    comparisons.extend(build_routing_comparisons(cells))
    comparisons.extend(build_dtype_comparisons(cells))
    return comparisons


def build_dtype_comparisons(cells: list[CellResult]) -> list[dict[str, object]]:
    """Per (model, device, scheme, ratio): each store dtype vs ``float16``.

    Pairs every precision-axis cell with its ``float16`` twin at the same
    sweep point and reports the frontier trade: the resident-byte density
    gain of the narrower store dtype, the TTFT it buys (KV load and decode
    memory traffic shrink with the width) and the fusion-quality cost it is
    bought at (mean KV / attention deviation vs the full-recompute
    reference).  The ``mixed`` preset is the interesting middle point —
    near-int8 density at below-int8 deviation.
    """
    by_point: dict[tuple, dict[str, CellResult]] = {}
    for cell in cells:
        if cell.kv_dtype is None:
            continue
        key = (
            cell.model,
            cell.device,
            cell.scheme,
            cell.recompute_ratio,
            cell.admission_policy,
            cell.store_capacity_chunks,
        )
        by_point.setdefault(key, {})[cell.kv_dtype] = cell
    rows: list[dict[str, object]] = []
    for key, dtypes in sorted(
        by_point.items(), key=lambda item: tuple(map(str, item[0]))
    ):
        model, device, scheme, ratio, _admission, capacity = key
        baseline = dtypes.get("float16")
        if baseline is None:
            continue
        base_bytes = baseline.store_bytes_stored or 0
        for dtype in sorted(dtypes):
            if dtype == "float16":
                continue
            cell = dtypes[dtype]
            row: dict[str, object] = {
                "comparison": f"dtype_{dtype}_vs_float16",
                "model": model,
                "device": device,
                "scheme": scheme,
                "recompute_ratio": ratio,
                "store_bytes_float16": baseline.store_bytes_stored,
                f"store_bytes_{dtype}": cell.store_bytes_stored,
                "bytes_density_gain": (
                    base_bytes / cell.store_bytes_stored
                    if cell.store_bytes_stored
                    else float("inf")
                ),
                "mean_ttft_float16": baseline.mean_ttft,
                f"mean_ttft_{dtype}": cell.mean_ttft,
                "mean_kv_deviation_float16": baseline.mean_kv_deviation,
                f"mean_kv_deviation_{dtype}": cell.mean_kv_deviation,
                "mean_attention_deviation_float16": (
                    baseline.mean_attention_deviation
                ),
                f"mean_attention_deviation_{dtype}": cell.mean_attention_deviation,
                f"{dtype}_denser_than_float16": (
                    (cell.store_bytes_stored or 0) < base_bytes
                ),
            }
            if capacity is not None:
                row["store_capacity_chunks"] = capacity
            rows.append(row)
    return rows


def build_routing_comparisons(cells: list[CellResult]) -> list[dict[str, object]]:
    """Per (model, device, scheme, ratio, n_replicas): policy vs least-loaded.

    Pairs every affinity-aware fleet cell (``affinity``/``consistent_hash``)
    with its ``least_loaded`` twin at the same replica count and reports the
    headline number of the fleet experiments: the aggregate hit-rate gain of
    chunk-affine placement at equal request rate — alongside the utilisation
    skew and tail-TTFT cost it was bought at.
    """
    by_point: dict[tuple, dict[str, CellResult]] = {}
    for cell in cells:
        if cell.routing_policy is None:
            continue
        key = (
            cell.model,
            cell.device,
            cell.scheme,
            cell.recompute_ratio,
            cell.admission_policy,
            cell.n_replicas,
        )
        by_point.setdefault(key, {})[cell.routing_policy] = cell
    rows: list[dict[str, object]] = []
    for key, policies in sorted(by_point.items(), key=lambda item: tuple(map(str, item[0]))):
        model, device, scheme, ratio, admission, n_replicas = key
        baseline = policies.get("least_loaded")
        if baseline is None:
            continue
        for routing in ("affinity", "consistent_hash"):
            cell = policies.get(routing)
            if cell is None:
                continue
            base_hit = baseline.fleet_hit_rate or 0.0
            rows.append(
                {
                    "comparison": f"routing_{routing}_vs_least_loaded",
                    "model": model,
                    "device": device,
                    "scheme": scheme,
                    "recompute_ratio": ratio,
                    "n_replicas": n_replicas,
                    "fleet_hit_rate_least_loaded": base_hit,
                    f"fleet_hit_rate_{routing}": cell.fleet_hit_rate,
                    "hit_rate_gain": (cell.fleet_hit_rate or 0.0) - base_hit,
                    "utilisation_skew_least_loaded": baseline.utilisation_skew,
                    f"utilisation_skew_{routing}": cell.utilisation_skew,
                    "p99_ttft_least_loaded": baseline.p99_ttft,
                    f"p99_ttft_{routing}": cell.p99_ttft,
                    "aggregate_throughput_least_loaded": baseline.aggregate_throughput,
                    f"aggregate_throughput_{routing}": cell.aggregate_throughput,
                    f"{routing}_beats_least_loaded_hit_rate": (
                        (cell.fleet_hit_rate or 0.0) > base_hit
                    ),
                }
            )
    return rows


def build_admission_comparisons(cells: list[CellResult]) -> list[dict[str, object]]:
    """Per (model, device, scheme, ratio): SLO admission vs no admission.

    Pairs each ``admission_policy == "slo"`` cell with its ``"none"`` twin
    from the same sweep point and reports the goodput gain — the headline
    number of the overload experiments: shedding doomed requests (and
    preempting decode slots for at-risk prefills) must *increase* the rate
    of requests that meet their deadline.
    """
    by_point: dict[tuple, dict[str, CellResult]] = {}
    for cell in cells:
        key = (
            cell.model,
            cell.device,
            cell.scheme,
            cell.recompute_ratio,
            cell.store_capacity_chunks,
            cell.routing_policy,
            cell.n_replicas,
        )
        by_point.setdefault(key, {})[cell.admission_policy] = cell
    rows: list[dict[str, object]] = []
    for (model, device, scheme, ratio, _capacity, _routing, _size), policies in by_point.items():
        plain, slo = policies.get("none"), policies.get("slo")
        if plain is None or slo is None:
            continue
        rows.append(
            {
                "comparison": "admission_vs_none",
                "model": model,
                "device": device,
                "scheme": scheme,
                "recompute_ratio": ratio,
                "goodput_none": plain.goodput,
                "goodput_slo": slo.goodput,
                "goodput_gain": (
                    slo.goodput / plain.goodput if plain.goodput > 0 else float("inf")
                ),
                "slo_attainment_none": plain.slo_attainment,
                "slo_attainment_slo": slo.slo_attainment,
                "rejection_rate": slo.rejection_rate,
                "preemption_count": slo.preemption_count,
                "admission_improves_goodput": slo.goodput > plain.goodput,
            }
        )
    return rows


def run_quality_probe(
    kv_dtypes: tuple[str, ...],
    seed: int = 0,
    recompute_ratio: float = 0.15,
) -> dict[str, dict[str, float]]:
    """Measured fusion quality per store dtype (NumPy proxy model).

    Precomputes two chunk caches on the proxy Mistral-7B, round-trips them
    through each dtype's store quantisation
    (:func:`~repro.kvstore.serialization.quantize_kv_to_store_dtype`) and
    fuses them with the real selective-recompute pipeline.  Two deviation
    statistics are reported per dtype:

    - ``mean_kv_deviation`` / ``max_kv_deviation``: the KV deviation the
      store quantisation *itself* introduces on the chunk caches (reference
      = the unquantised caches).  This isolates the precision knob — exact
      zero for ``float32``, monotone in the width, and ``mixed`` lands
      below ``int8`` because its fp16 early layers contribute ~none.
    - ``mean_attention_deviation``: the paper's Figure-6 end-to-end metric —
      forward-attention deviation of the fused output against a
      full-recompute reference of the same token stream.  This includes the
      fusion error (reused cross-attention), so dtypes differ by how their
      rounding perturbs HKVD token selection, not just by width.

    Returns ``{dtype: {mean_kv_deviation, max_kv_deviation,
    mean_attention_deviation, mean_recompute_fraction}}``; the sweep
    attaches the deviations to every cell served at that dtype.
    """
    from repro.core.deviation import kv_deviation, mean_attention_deviation
    from repro.core.fusor import FusorConfig, KVFusor
    from repro.kvstore.serialization import quantize_kv_to_store_dtype
    from repro.model.transformer import TransformerModel

    model = TransformerModel(get_config("proxy-mistral-7b"), seed=seed)
    fusor = KVFusor(model, FusorConfig(recompute_ratio=recompute_ratio))
    rng = np.random.default_rng((seed, 0xD7E))
    chunk_ids = [
        rng.integers(4, model.config.vocab_size, size=48).astype(np.int64)
        for _ in range(2)
    ]
    suffix_ids = rng.integers(4, model.config.vocab_size, size=12).astype(np.int64)
    chunk_caches = [model.chunk_prefill(ids) for ids in chunk_ids]
    full_ids = np.concatenate(chunk_ids + [suffix_ids])
    reference = model.full_prefill(
        full_ids, query_window=fusor.config.query_window
    )
    probe: dict[str, dict[str, float]] = {}
    for dtype in kv_dtypes:
        quantized = [
            quantize_kv_to_store_dtype(cache, dtype) for cache in chunk_caches
        ]
        store_deviation = np.concatenate(
            [
                kv_deviation(quant, original)
                for quant, original in zip(quantized, chunk_caches)
            ],
            axis=1,
        )
        fused = fusor.fuse(quantized, suffix_ids)
        probe[dtype] = {
            "mean_kv_deviation": float(store_deviation.mean()),
            "max_kv_deviation": float(store_deviation.max()),
            "mean_attention_deviation": mean_attention_deviation(
                fused.forward_attention, reference.forward_attention
            ),
            "mean_recompute_fraction": fused.mean_recompute_fraction,
        }
    return probe


def run_proxy_probe(
    seed: int = 0,
    calibration: OnlineCostCalibration | None = None,
    fault_rate: float = 0.0,
) -> dict[str, object]:
    """End-to-end run of the real fusion pipeline (NumPy proxy model).

    Serves a small batch over a shared chunk set through
    :meth:`~repro.core.blend_engine.BlendEngine.run_batch` with
    ``execution="pipelined"`` — every request goes through the
    :class:`~repro.core.executor.PipelinedExecutor` with cross-request
    pipelining and carries a *measured* trace-derived TTFT, reported beside
    the analytical estimate.  The traces feed *calibration* (shared with the
    sweep cells when the runner passes one in).

    Also measures, on profile-sized synthetic caches at the calibrated
    load≈compute operating point, the single-request pipelined-vs-sequential
    fuse speedup and the cross-request batch makespan against the
    load-then-compute-in-turn baseline.
    """
    from repro.bench.profile import measure_pipeline_speedup
    from repro.core.blend_engine import BlendEngine
    from repro.core.executor import PipelinedExecutor
    from repro.kvstore.config import StoreConfig
    from repro.kvstore.faults import FaultConfig

    # The probe exercises the serving-path store stack end to end: a
    # RAM→SSD hierarchy of radix-trie (prefix-dedup) tiers behind the
    # engine, not the plain whole-chunk default.  A non-zero *fault_rate*
    # additionally wraps the store in a fault injector (the chaos smoke):
    # lookups fail/corrupt/stall at that rate and the engine must retry or
    # recompute — with bitwise-identical generations either way.
    engine = BlendEngine.build(
        paper_model="Mistral-7B",
        device="cpu_ram",
        seed=seed,
        calibration=calibration,
        store=StoreConfig(backend="tiered_trie"),
        faults=(
            FaultConfig(rate=fault_rate, seed=seed) if fault_rate > 0.0 else None
        ),
    )
    chunks = [
        "retrieval augmented generation feeds reused text chunks to the model",
        "the kv cache of each chunk can be precomputed offline and stored",
        "cacheblend recomputes a small fraction of tokens to fix cross attention",
    ]
    engine.precompute_chunks(chunks)
    engine.reset_cache_stats()
    batch = [
        (chunks[:2], "what does cacheblend recompute?"),
        (chunks[1:], "where are kv caches stored?"),
    ]
    # max_new_tokens exercises the co-batched DecodeSession generation path:
    # the batch decodes in lock-step (one session step per iteration), the
    # shared measured first step is folded into every measured_ttft, and
    # each step feeds the width-aware decode calibration buckets.
    results = engine.run_batch(batch, execution="pipelined", max_new_tokens=4)

    # Measured load/compute pipelining: the text chunks above are only a few
    # tokens (per-layer compute well under the sleep/thread granularity), so
    # the executor is measured on profile-sized synthetic chunk caches, with
    # the shared calibrate-then-compare methodology of repro.bench.profile.
    rng = np.random.default_rng(seed)
    chunk_caches = [
        engine.model.chunk_prefill(
            rng.integers(4, engine.model.config.vocab_size, size=96).astype(np.int64)
        )
        for _ in range(2)
    ]
    suffix_ids = rng.integers(4, engine.model.config.vocab_size, size=12).astype(np.int64)
    measurement = measure_pipeline_speedup(
        engine.model, engine.fusor.config, chunk_caches, suffix_ids, repeats=2
    )

    # Cross-request pipelining at the same calibrated operating point: a
    # queue of identical requests, pipelined (loader runs ahead into the next
    # request) vs strictly in turn.
    batch_executor = PipelinedExecutor(
        engine.model, engine.fusor.config, layer_load_time=measurement.layer_load_time
    )
    items = [(chunk_caches, suffix_ids)] * 3
    batch_pipelined = batch_executor.execute_batch(items, pipelined=True)
    batch_sequential = batch_executor.execute_batch(items, pipelined=False)

    cost_model = engine.controller.cost_model
    return {
        "paper_model": "Mistral-7B",
        "execution": "pipelined",
        "fault_rate": fault_rate,
        "n_requests": len(results),
        "mean_recompute_fraction": float(
            np.mean([r.fusion.mean_recompute_fraction for r in results])
        ),
        "recompute_ratios_decided": [r.decision.recompute_ratio for r in results],
        "estimated_ttfts": [r.ttft_estimate for r in results],
        "measured_ttfts": [r.measured_ttft for r in results],
        "measured_stall_s": [r.measured_stall for r in results],
        "measured_first_decode_s": [r.measured_first_decode_s for r in results],
        "decode_batch_widths": [r.decode_batch_width for r in results],
        "n_generated": [len(r.generated_ids) for r in results],
        "cache": engine.cache_stats,
        "store": {
            "backend": "tiered_trie",
            "bytes_stored": engine.kv_store.bytes_stored,
            "logical_bytes": sum(
                tier.logical_bytes for tier in engine.kv_store.tiers
            ),
            "n_entries": engine.kv_store.n_entries,
            "tiers": engine.kv_store.stats_by_tier(),
        },
        "executor": measurement.as_dict(),
        "batch": {
            "n_requests": len(items),
            "pipelined_makespan_s": batch_pipelined.makespan,
            "sequential_makespan_s": batch_sequential.makespan,
            "cross_request_speedup": (
                batch_sequential.makespan / batch_pipelined.makespan
                if batch_pipelined.makespan > 0
                else float("inf")
            ),
        },
        "calibration": (
            cost_model.calibration.as_dict() if cost_model.calibration else None
        ),
    }
