"""Profiled perf harness (``python -m repro.bench --profile``).

Times the hot-path primitives on a fixed, seeded workload — chunk prefill,
sequential vs pipelined fuse (through the *executing*
:class:`~repro.core.executor.PipelinedExecutor`, not the analytical model),
session vs batched vs sequential decode (one persistent
:class:`~repro.model.tensors.DecodeSession` pad stepping B requests
lock-step, vs per-call ``decode_batch`` re-gathers, vs per-request
``decode_step`` loops; plus per-token and batch-width scaling probes), KV
serialize/deserialize — and writes a ``BENCH_profile_*.json`` so every PR
has a perf trajectory to regress against.

The pipelined/sequential comparison is run at the calibrated load≈compute
operating point: a zero-delay sequential pass measures the mean per-layer
compute, and the simulated per-layer device transfer is pinned to it.  That
is the crossover §5 of the paper targets — where loading can fully hide the
selective recompute — and it is where pipelining's measured speedup is
meaningful rather than an artifact of one side dominating.

:func:`check_against_baseline` is the CI regression gate: it fails when fuse
wall-clock regresses more than ``max_regression``× against a checked-in
baseline document (see ``benchmarks/profile_baseline.json``).
"""

from __future__ import annotations

import json
import platform
import sys
import time
from dataclasses import asdict, dataclass
from datetime import datetime, timezone
from pathlib import Path
from typing import Callable

import numpy as np

from repro.core.executor import ExecutionResult, PipelinedExecutor
from repro.core.fusor import FusorConfig, KVFusor
from repro.kvstore.serialization import deserialize_kv, serialize_kv
from repro.model.config import get_config
from repro.model.tensors import GrowableKVCache
from repro.model.transformer import TransformerModel

#: v2 added the decode ops (``decode_batched``/``decode_sequential``) and the
#: top-level ``decode`` block (batched speedup + per-token scaling); v3 added
#: ``decode_session`` (persistent padded batch buffers, no per-step re-gather)
#: and the ``decode.width_scaling`` batch-width block; v4 adds ``store_lookup``
#: (tiered radix-trie lookup: prefix walk + segment reassembly + tier read)
#: and the top-level ``store`` dedup block; v5 adds ``preempt_resume`` (one
#: scheduler pause/resume round-trip on a live decode session: extract the
#: victim's decode state, free its slot, re-join it and take one lock-step
#: step — the per-preemption overhead of the SLO scheduler's decode
#: preemption); v6 adds ``routing_decision`` (affinity-scored placement of
#: one request over a warmed 4-replica fleet — the router tier's per-request
#: overhead) and the top-level ``fleet`` block with per-policy decision
#: timings; v7 adds ``dequant_int8`` (full int8 store round-trip of the
#: fused cache: per-layer quantise + scale recovery on the deserialize
#: path — the extra CPU the narrower store dtype costs per request).
PROFILE_SCHEMA_VERSION = 7

_REQUIRED_OPS = (
    "chunk_prefill",
    "fuse_sequential",
    "fuse_pipelined",
    "serve_pipelined",
    "decode_sequential",
    "decode_batched",
    "decode_session",
    "preempt_resume",
    "store_lookup",
    "routing_decision",
    "serialize_kv",
    "deserialize_kv",
    "dequant_int8",
)


@dataclass(frozen=True)
class ProfileConfig:
    """The fixed workload the profile harness times."""

    model: str = "small"
    n_chunks: int = 3
    chunk_tokens: int = 128
    suffix_tokens: int = 16
    recompute_ratio: float = 0.15
    repeats: int = 3
    warmup: int = 1
    seed: int = 0
    #: Batched-decode workload: ``decode_batch_size`` requests stepped
    #: together for ``decode_tokens`` tokens (vs the same work through
    #: sequential per-request ``decode_step`` loops).
    decode_batch_size: int = 4
    decode_tokens: int = 64

    def __post_init__(self) -> None:
        if self.n_chunks < 1 or self.chunk_tokens < 1 or self.suffix_tokens < 1:
            raise ValueError("workload sizes must be positive")
        if self.repeats < 1:
            raise ValueError("repeats must be >= 1")
        if self.decode_batch_size < 1 or self.decode_tokens < 1:
            raise ValueError("decode workload sizes must be positive")

    @classmethod
    def smoke(cls) -> "ProfileConfig":
        """CI-sized profile (seconds, not minutes)."""
        return cls(chunk_tokens=64, repeats=2, warmup=1)


def _random_token_ids(
    model: "TransformerModel", size, rng: np.random.Generator
) -> np.ndarray:
    """Seeded token ids skipping the reserved special-token ids (0-3)."""
    return rng.integers(4, model.config.vocab_size, size=size).astype(np.int64)


def _stats(samples: list[float]) -> dict[str, float | int]:
    return {
        "mean_s": float(np.mean(samples)),
        "min_s": float(np.min(samples)),
        "max_s": float(np.max(samples)),
        "repeats": len(samples),
    }


def _time_op(fn: Callable[[], object], repeats: int, warmup: int) -> dict[str, float | int]:
    for _ in range(warmup):
        fn()
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return _stats(samples)


@dataclass
class PipelineMeasurement:
    """Measured sequential-vs-pipelined executor runs at one operating point."""

    layer_load_time: float
    sequential_runs: list[ExecutionResult]
    pipelined_runs: list[ExecutionResult]

    @property
    def best_sequential(self) -> ExecutionResult:
        return min(self.sequential_runs, key=lambda r: r.total_time)

    @property
    def best_pipelined(self) -> ExecutionResult:
        return min(self.pipelined_runs, key=lambda r: r.total_time)

    @property
    def speedup(self) -> float:
        pipelined = self.best_pipelined.total_time
        if pipelined <= 0:
            return float("inf")
        return self.best_sequential.total_time / pipelined

    def as_dict(self) -> dict[str, float]:
        """JSON-friendly block for bench/profile reports."""
        return {
            "layer_load_time_s": self.layer_load_time,
            "sequential_total_s": self.best_sequential.total_time,
            "pipelined_total_s": self.best_pipelined.total_time,
            "measured_speedup": self.speedup,
            "pipelined_stall_s": self.best_pipelined.stall_time,
        }


def measure_pipeline_speedup(
    model,
    fusor_config: FusorConfig,
    chunk_caches,
    suffix_ids,
    repeats: int = 2,
    recompute_ratio: float | None = None,
) -> PipelineMeasurement:
    """Calibrate load≈compute and run both executor schedules *repeats* times.

    A zero-delay sequential pass measures the per-layer compute; the
    simulated per-layer device transfer is pinned to the mean compute of the
    *selective* layers (layer 0's full recompute is excluded — including it
    would push loads past compute and inflate the speedup with hidden sleep
    time), i.e. the §5 crossover where loading can just hide the selective
    recompute.  Sequential and pipelined schedules then run
    best-of-*repeats*.  This is the single definition of the
    measured-speedup methodology, shared by the profile harness and the sweep
    runner's proxy probe.
    """
    probe = PipelinedExecutor(model, fusor_config, layer_load_time=0.0)
    calibration = probe.execute(
        chunk_caches, suffix_ids, recompute_ratio=recompute_ratio, pipelined=False
    )
    selective = calibration.compute_times[1:]
    layer_load_time = float(
        selective.mean() if selective.size else calibration.compute_times.mean()
    )
    executor = PipelinedExecutor(model, fusor_config, layer_load_time=layer_load_time)

    def runs(pipelined: bool) -> list[ExecutionResult]:
        return [
            executor.execute(
                chunk_caches,
                suffix_ids,
                recompute_ratio=recompute_ratio,
                pipelined=pipelined,
            )
            for _ in range(repeats)
        ]

    return PipelineMeasurement(
        layer_load_time=layer_load_time,
        sequential_runs=runs(pipelined=False),
        pipelined_runs=runs(pipelined=True),
    )


def _measure_served_ttfts(
    model: TransformerModel, config: "ProfileConfig"
) -> list[float]:
    """Measured serving TTFTs of warm pipelined requests through BlendEngine.

    Builds a serving stack around the profile's proxy *model* (word-level
    tokenizer, cpu_ram-backed store, loading controller) and serves the same
    request ``config.repeats`` times with ``execution="pipelined"``, after one
    cold warmup that populates the store.  Each sample is a trace-derived
    wall-clock TTFT — the end-to-end measured serving number the baseline
    gate regresses on, one level above the bare fuse timings.
    """
    from repro.core.blend_engine import BlendEngine
    from repro.core.controller import LoadingController
    from repro.kvstore.device import get_device
    from repro.kvstore.store import KVCacheStore
    from repro.serving.costmodel import GPUSpec, OnlineCostCalibration, ServingCostModel
    from repro.tokenizer.tokenizer import Tokenizer

    cost_model = ServingCostModel(
        model.config, GPUSpec(), calibration=OnlineCostCalibration()
    )
    engine = BlendEngine(
        model=model,
        tokenizer=Tokenizer(vocab_size=model.config.vocab_size),
        kv_store=KVCacheStore(device=get_device("cpu_ram")),
        controller=LoadingController(cost_model, min_quality_ratio=config.recompute_ratio),
        fusor_config=FusorConfig(recompute_ratio=config.recompute_ratio),
    )
    chunks = [
        " ".join(f"w{chunk}x{i}" for i in range(config.chunk_tokens))
        for chunk in range(config.n_chunks)
    ]
    question = " ".join(f"q{i}" for i in range(config.suffix_tokens))
    engine.precompute_chunks(chunks)
    for _ in range(config.warmup):
        engine.run(chunks, question, execution="pipelined")
    return [
        engine.run(chunks, question, execution="pipelined").measured_ttft
        for _ in range(config.repeats)
    ]


def _decode_prompt_caches(
    model: TransformerModel,
    config: "ProfileConfig",
    rng: np.random.Generator,
    n_requests: int | None = None,
):
    """Prefill one prompt per batched-decode request; returns (caches, tokens).

    Shared by the decode-op comparison and the batch-width scaling probe
    (which passes its own ``n_requests``), so both measure the same prompt
    shape and token stream construction.
    """
    if n_requests is None:
        n_requests = config.decode_batch_size
    prefills = [
        model.full_prefill(_random_token_ids(model, config.chunk_tokens, rng)).kv_cache
        for _ in range(n_requests)
    ]
    tokens = _random_token_ids(model, (n_requests, config.decode_tokens), rng)
    return prefills, tokens


def measure_decode_ops(
    model: TransformerModel, config: "ProfileConfig", rng: np.random.Generator
) -> tuple[dict[str, dict[str, float | int]], dict[str, object]]:
    """Time session vs batched vs sequential decode of one B×T workload.

    ``decode_sequential`` steps each of the B requests alone — one
    :meth:`~repro.model.transformer.TransformerModel.decode_step` per token
    per request, B·T single-token passes.  ``decode_batched`` steps all B
    requests per :meth:`~repro.model.transformer.TransformerModel.
    decode_batch` call — T batched passes, amortising the per-layer dispatch
    overhead across the batch, but re-gathering every request's full K/V
    into per-call scratch each step.  ``decode_session`` runs the same T
    lock-step passes on a persistent
    :class:`~repro.model.tensors.DecodeSession` pad — steady-state steps
    write only each request's appended row (the serving loop's decode path).
    All three consume identical token streams, so the comparison isolates
    the batching and the buffer strategy.
    """
    prefills, tokens = _decode_prompt_caches(model, config, rng)
    n_tokens = config.decode_tokens

    def fresh_caches():
        return [
            GrowableKVCache.from_kv_cache(cache, reserve=n_tokens)
            for cache in prefills
        ]

    def run_sequential() -> None:
        for i, cache in enumerate(fresh_caches()):
            for step in range(n_tokens):
                model.decode_step(cache, int(tokens[i, step]))

    def run_batched() -> None:
        caches = fresh_caches()
        for step in range(n_tokens):
            model.decode_batch(caches, tokens[:, step])

    def run_session() -> None:
        session = model.new_decode_session(
            slot_capacity=config.decode_batch_size
        )
        for i, cache in enumerate(prefills):
            session.join(i, cache, reserve=n_tokens)
        for step in range(n_tokens):
            model.decode_session_step(session, tokens[:, step])
        for i in range(len(prefills)):
            session.leave(i)

    # One preemption round-trip on a live session: pause member 0 (extract
    # its decode state, free the slot), re-admit it and take one lock-step
    # step — what the SLO scheduler pays per decode preemption.  The session
    # persists across samples (its members genuinely mid-generation); the
    # reserve covers one appended row per warmup+timed cycle.
    preempt_session = model.new_decode_session(
        slot_capacity=config.decode_batch_size
    )
    for i, cache in enumerate(prefills):
        preempt_session.join(i, cache, reserve=2 * (config.repeats + config.warmup))

    def run_preempt_resume() -> None:
        paused = preempt_session.preempt(0)
        preempt_session.join(0, paused, reserve=config.repeats + config.warmup)
        model.decode_session_step(preempt_session, tokens[:, 0])

    ops = {
        "decode_sequential": _time_op(run_sequential, config.repeats, config.warmup),
        "decode_batched": _time_op(run_batched, config.repeats, config.warmup),
        "decode_session": _time_op(run_session, config.repeats, config.warmup),
        "preempt_resume": _time_op(run_preempt_resume, config.repeats, config.warmup),
    }
    sequential = float(ops["decode_sequential"]["min_s"])
    batched = float(ops["decode_batched"]["min_s"])
    session = float(ops["decode_session"]["min_s"])
    block: dict[str, object] = {
        "batch_size": config.decode_batch_size,
        "n_tokens": n_tokens,
        "sequential_total_s": sequential,
        "batched_total_s": batched,
        "batched_speedup": sequential / batched if batched > 0 else float("inf"),
        "session_total_s": session,
        "session_speedup_vs_sequential": (
            sequential / session if session > 0 else float("inf")
        ),
        "session_vs_batched": batched / session if session > 0 else float("inf"),
        "preempt_resume_s": float(ops["preempt_resume"]["min_s"]),
    }
    return ops, block


def measure_decode_width_scaling(
    model: TransformerModel,
    config: "ProfileConfig",
    rng: np.random.Generator,
    widths: tuple[int, ...] | None = None,
) -> dict[str, object]:
    """Per-step session decode cost as a function of batch width.

    For each width W, W requests (prompts of ``chunk_tokens`` tokens) join a
    :class:`~repro.model.tensors.DecodeSession` and decode ``decode_tokens``
    tokens in lock-step; the best-of-``repeats`` per-step wall-clock is
    reported beside a per-call :meth:`~repro.model.transformer.
    TransformerModel.decode_batch` reference over the same caches.  The
    amortisation column is what the width-aware
    :class:`~repro.serving.costmodel.OnlineCostCalibration` buckets model:
    one width-W step costs far less than W × the width-1 step.
    """
    if widths is None:
        widths = tuple(sorted({1, 2, config.decode_batch_size}))
    if any(w < 1 for w in widths):
        raise ValueError("widths must be >= 1")
    n_tokens = config.decode_tokens
    # The per-step quantities compared across widths are small (ms); floor
    # the sampling so a repeats=1/no-warmup test config still yields stable
    # minima (first-call allocator/cache effects dominate single samples).
    repeats = max(config.repeats, 3)
    warmup = max(config.warmup, 1)
    prefills, tokens = _decode_prompt_caches(model, config, rng, n_requests=max(widths))

    s_per_step: list[float] = []
    batched_s_per_step: list[float] = []
    for width in widths:

        def run_session() -> None:
            session = model.new_decode_session(slot_capacity=width)
            for i in range(width):
                session.join(i, prefills[i], reserve=n_tokens)
            for step in range(n_tokens):
                model.decode_session_step(session, tokens[:width, step])
            for i in range(width):
                session.leave(i)

        def run_batched() -> None:
            caches = [
                GrowableKVCache.from_kv_cache(prefills[i], reserve=n_tokens)
                for i in range(width)
            ]
            for step in range(n_tokens):
                model.decode_batch(caches, tokens[:width, step])

        # Interleave the two runners so clock drift and scheduler bursts hit
        # both sides of the session-vs-batched comparison equally.
        session_samples: list[float] = []
        batched_samples: list[float] = []
        for _ in range(warmup):
            run_session()
            run_batched()
        for _ in range(repeats):
            start = time.perf_counter()
            run_session()
            session_samples.append(time.perf_counter() - start)
            start = time.perf_counter()
            run_batched()
            batched_samples.append(time.perf_counter() - start)
        s_per_step.append(min(session_samples) / n_tokens)
        batched_s_per_step.append(min(batched_samples) / n_tokens)

    baseline_width = 1 if 1 in widths else min(widths)
    baseline = s_per_step[widths.index(baseline_width)]
    return {
        "widths": list(widths),
        "n_tokens": n_tokens,
        "session_s_per_step": s_per_step,
        "batched_s_per_step": batched_s_per_step,
        "tokens_per_s": [
            w / s if s > 0 else float("inf") for w, s in zip(widths, s_per_step)
        ],
        # One width-W step vs W/baseline independent baseline-width steps:
        # the scheduler-level amortisation the width-aware calibration
        # buckets capture.  The baseline is width 1 whenever measured (the
        # default); ``baseline_width`` records it so a custom widths tuple
        # without 1 cannot silently mislabel the column.
        "baseline_width": baseline_width,
        "amortisation_vs_sequential": [
            (w / baseline_width * baseline) / s if s > 0 else float("inf")
            for w, s in zip(widths, s_per_step)
        ],
    }


def measure_store_ops(
    model: TransformerModel, config: "ProfileConfig", rng: np.random.Generator
) -> tuple[dict[str, dict[str, float | int]], dict[str, object]]:
    """Time tiered radix-trie lookups on a shared-prefix chunk family.

    One ``store_lookup`` sample fetches every chunk once through a
    RAM→SSD :class:`~repro.kvstore.hierarchy.TieredKVStore` of
    :class:`~repro.kvstore.trie.RadixTrieStore` tiers — the store work on
    :class:`~repro.core.blend_engine.BlendEngine`'s gather path: the O(L)
    token-prefix walk, reassembling the full-chunk KV from deduplicated
    segments, and pricing the owning tier's read delay.  The chunks share
    the first half of their token ids so the trie actually deduplicates,
    and the RAM tier is sized to half the family's logical bytes so the
    overflow demotes to the SSD tier and lookups exercise both.  Promotion
    is disabled so tier residency stays fixed across timed repeats.

    The family is at least three chunks regardless of ``config.n_chunks``:
    with one chunk demoted, two must stay co-resident in RAM for the shared
    prefix to be stored once (the dedup the block reports).
    """
    from repro.kvstore.device import get_device
    from repro.kvstore.hierarchy import TieredKVStore
    from repro.kvstore.serialization import kv_nbytes
    from repro.kvstore.store import chunk_key
    from repro.kvstore.trie import RadixTrieStore

    n_family = max(3, config.n_chunks)
    half = max(1, config.chunk_tokens // 2)
    shared = _random_token_ids(model, half, rng)
    chunk_ids = [
        np.concatenate(
            [shared, _random_token_ids(model, config.chunk_tokens - half, rng)]
        )
        for _ in range(n_family)
    ]
    caches = [model.chunk_prefill(ids) for ids in chunk_ids]
    logical_each = [kv_nbytes(cache) for cache in caches]
    ram_capacity = max(max(logical_each), sum(logical_each) // 2)
    store = TieredKVStore(
        tiers=[
            RadixTrieStore(device=get_device("cpu_ram"), capacity_bytes=ram_capacity),
            RadixTrieStore(device=get_device("nvme_ssd")),
        ],
        promote_on_hit=False,
    )
    keys = [chunk_key(ids, model_name=config.model) for ids in chunk_ids]
    for key, cache in zip(keys, caches):
        store.put(key, cache)

    def run_lookup() -> None:
        for key in keys:
            if store.lookup(key).cache is None:
                raise RuntimeError("profile store lost a resident chunk")

    ops = {"store_lookup": _time_op(run_lookup, config.repeats, config.warmup)}
    store.reset_stats()
    lookups = [store.lookup(key) for key in keys]
    stored = store.bytes_stored
    logical = sum(tier.logical_bytes for tier in store.tiers)
    block: dict[str, object] = {
        "n_chunks": n_family,
        "chunk_tokens": config.chunk_tokens,
        "shared_prefix_tokens": half,
        "bytes_stored": stored,
        "logical_bytes": logical,
        "dedup_ratio": logical / stored if stored > 0 else float("inf"),
        "slow_tier_hits": sum(
            1 for found in lookups if found.tier_index is not None and found.tier_index > 0
        ),
        "read_delay_s": sum(found.read_delay for found in lookups),
        "tiers": store.stats_by_tier(),
    }
    return ops, block


def measure_routing_ops(
    config: "ProfileConfig", rng: np.random.Generator
) -> tuple[dict[str, dict[str, float | int]], dict[str, object]]:
    """Time fleet routing decisions over a warmed 4-replica fleet.

    The fleet is warmed by routing (and placing) a Zipf-popular request
    stream through each policy's own router, so every replica's private
    store holds the resident/hotness state a steady-state fleet would.  One
    ``routing_decision`` sample then routes a fresh batch of requests
    *without* placing them — pure decisions on frozen fleet state, so timed
    repeats are identical work.  The gated op is the ``affinity`` policy
    (the most expensive: it scans every replica's resident set per
    decision); the ``fleet`` block reports all three policies side by side.
    """
    from repro.kvstore.store import ChunkUsageTracker
    from repro.serving.request import GenerationRequest
    from repro.serving.router import ROUTING_POLICIES, Replica, build_router

    n_replicas = 4
    n_unique_chunks = 128
    n_warm = 128
    n_decisions = 64
    store_capacity = 48
    ranks = np.arange(1, n_unique_chunks + 1, dtype=np.float64)
    popularity = ranks ** -1.0
    popularity /= popularity.sum()

    def draw_chunks() -> list[int]:
        n_chunks = int(rng.integers(3, 7))
        return [
            int(chunk)
            for chunk in rng.choice(
                n_unique_chunks, size=n_chunks, replace=False, p=popularity
            )
        ]

    warm_sets = [draw_chunks() for _ in range(n_warm)]
    decision_sets = [draw_chunks() for _ in range(n_decisions)]
    warm_requests = [
        GenerationRequest(request_id=i, arrival_time=float(i)) for i in range(n_warm)
    ]
    decision_requests = [
        GenerationRequest(request_id=n_warm + i, arrival_time=float(n_warm + i))
        for i in range(n_decisions)
    ]

    ops: dict[str, dict[str, float | int]] = {}
    per_policy: dict[str, object] = {}
    for policy in ROUTING_POLICIES:
        router = build_router(policy, n_replicas)
        replicas = [
            Replica(
                replica_id=r,
                store=ChunkUsageTracker(capacity_entries=store_capacity),
            )
            for r in range(n_replicas)
        ]
        for request, chunks in zip(warm_requests, warm_sets):
            home = router.route(request, chunks, replicas)
            replicas[home].place(request.request_id, request, chunks)

        placements = [0] * n_replicas

        def run_decisions() -> None:
            for request, chunks in zip(decision_requests, decision_sets):
                placements[router.route(request, chunks, replicas)] += 1

        timing = _time_op(run_decisions, config.repeats, config.warmup)
        per_policy[policy] = {
            "decision_s": float(timing["min_s"]) / n_decisions,
            "min_s": timing["min_s"],
            # Placement spread of the timed decisions (identical every
            # repeat; counts cover warmup + timed runs).
            "placement_counts": list(placements),
        }
        if policy == "affinity":
            ops["routing_decision"] = timing

    block: dict[str, object] = {
        "n_replicas": n_replicas,
        "n_warm_requests": n_warm,
        "n_decisions": n_decisions,
        "n_unique_chunks": n_unique_chunks,
        "store_capacity_chunks": store_capacity,
        "gated_policy": "affinity",
        "policies": per_policy,
    }
    return ops, block


def measure_decode_scaling(
    model: TransformerModel,
    prompt_tokens: int = 16,
    n_tokens: int = 256,
    window: int = 64,
    seed: int = 0,
) -> dict[str, float | int]:
    """Per-token decode cost at the start vs the end of a long generation.

    On the preallocated cache, appending is O(1) and only attention's reads
    grow with the context, so the mean per-token cost of the last *window*
    tokens stays within a small factor of the first *window*'s — whereas the
    legacy concatenate-per-token path re-copied every layer's full K/V each
    step and grew linearly (O(T²) for the generation).  The profile commits
    the measured growth ratio so the regression test can assert the decode
    path stays out of the quadratic regime.
    """
    if n_tokens < 2 * window:
        raise ValueError("n_tokens must cover two measurement windows")
    rng = np.random.default_rng(seed)
    prompt = _random_token_ids(model, prompt_tokens, rng)
    tokens = _random_token_ids(model, n_tokens, rng)
    cache = GrowableKVCache.from_kv_cache(
        model.full_prefill(prompt).kv_cache, reserve=n_tokens
    )
    per_token = np.zeros(n_tokens)
    for step in range(n_tokens):
        start = time.perf_counter()
        model.decode_step(cache, int(tokens[step]))
        per_token[step] = time.perf_counter() - start
    first = float(np.median(per_token[:window]))
    last = float(np.median(per_token[-window:]))
    return {
        "n_tokens": n_tokens,
        "window": window,
        "per_token_first_s": first,
        "per_token_last_s": last,
        "per_token_growth": last / first if first > 0 else float("inf"),
    }


def run_profile(config: ProfileConfig | None = None) -> dict[str, object]:
    """Run the profile workload and return the report document."""
    config = config or ProfileConfig()
    model = TransformerModel(get_config(config.model), seed=config.seed)
    rng = np.random.default_rng(config.seed)
    chunk_ids = [
        _random_token_ids(model, config.chunk_tokens, rng)
        for _ in range(config.n_chunks)
    ]
    suffix_ids = _random_token_ids(model, config.suffix_tokens, rng)
    chunk_caches = [model.chunk_prefill(ids) for ids in chunk_ids]
    fusor_config = FusorConfig(recompute_ratio=config.recompute_ratio)
    fusor = KVFusor(model, fusor_config)
    fused = fusor.fuse(chunk_caches, suffix_ids)
    payload = serialize_kv(fused.kv_cache)

    ops: dict[str, dict[str, float | int]] = {}
    ops["chunk_prefill"] = _time_op(
        lambda: model.chunk_prefill(chunk_ids[0]), config.repeats, config.warmup
    )
    ops["serialize_kv"] = _time_op(
        lambda: serialize_kv(fused.kv_cache), config.repeats, config.warmup
    )
    ops["deserialize_kv"] = _time_op(
        lambda: deserialize_kv(payload), config.repeats, config.warmup
    )
    int8_payload = serialize_kv(fused.kv_cache, kv_dtype="int8")
    ops["dequant_int8"] = _time_op(
        lambda: deserialize_kv(int8_payload), config.repeats, config.warmup
    )

    # ---- calibrated pipelined-vs-sequential comparison -------------------
    measurement = measure_pipeline_speedup(
        model,
        fusor_config,
        chunk_caches,
        suffix_ids,
        repeats=config.repeats,
        recompute_ratio=config.recompute_ratio,
    )
    ops["fuse_sequential"] = _stats([r.total_time for r in measurement.sequential_runs])
    ops["fuse_pipelined"] = _stats([r.total_time for r in measurement.pipelined_runs])

    # ---- measured serving TTFT (workload -> engine -> executor) ----------
    ops["serve_pipelined"] = _stats(_measure_served_ttfts(model, config))

    # ---- tiered trie store lookups ---------------------------------------
    store_ops, store_block = measure_store_ops(model, config, rng)
    ops.update(store_ops)

    # ---- fleet routing decisions -----------------------------------------
    routing_ops, fleet_block = measure_routing_ops(config, rng)
    ops.update(routing_ops)

    # ---- session vs batched vs sequential decode + scaling ---------------
    decode_ops, decode_block = measure_decode_ops(model, config, rng)
    ops.update(decode_ops)
    decode_block["scaling"] = measure_decode_scaling(
        model,
        n_tokens=max(2 * config.decode_tokens, 128),
        window=min(config.decode_tokens, 32),
        seed=config.seed,
    )
    decode_block["width_scaling"] = measure_decode_width_scaling(model, config, rng)

    return {
        "schema_version": PROFILE_SCHEMA_VERSION,
        "kind": "profile",
        "created": datetime.now(timezone.utc).isoformat(),
        "config": asdict(config),
        "ops": ops,
        "decode": decode_block,
        "store": store_block,
        "fleet": fleet_block,
        "pipeline": {
            "n_layers": model.config.n_layers,
            "n_tokens": int(fused.n_tokens),
            "mean_compute_per_layer_s": measurement.layer_load_time,
            **measurement.as_dict(),
            "mean_recompute_fraction": float(
                measurement.best_pipelined.fusion.mean_recompute_fraction
            ),
        },
        "environment": {
            "python": sys.version.split()[0],
            "numpy": np.__version__,
            "platform": platform.platform(),
        },
    }


# ----------------------------------------------------------------------
# Validation, persistence, regression gate
# ----------------------------------------------------------------------
def validate_profile_report(document: dict[str, object]) -> None:
    """Raise ``ValueError`` when *document* does not match the profile schema."""
    for key in (
        "schema_version",
        "kind",
        "created",
        "config",
        "ops",
        "decode",
        "store",
        "fleet",
        "pipeline",
    ):
        if key not in document:
            raise ValueError(f"profile report is missing top-level key {key!r}")
    if document["kind"] != "profile":
        raise ValueError(f"unexpected report kind {document['kind']!r}")
    if document["schema_version"] != PROFILE_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported profile schema_version {document['schema_version']!r}"
        )
    ops = document["ops"]
    for op in _REQUIRED_OPS:
        if op not in ops:
            raise ValueError(f"profile report is missing op {op!r}")
        for metric in ("mean_s", "min_s", "max_s"):
            if ops[op][metric] < 0:
                raise ValueError(f"op {op!r} has a negative {metric}")
    pipeline = document["pipeline"]
    if pipeline["measured_speedup"] <= 0:
        raise ValueError("measured_speedup must be positive")
    decode = document["decode"]
    for key in (
        "batch_size",
        "n_tokens",
        "batched_speedup",
        "session_total_s",
        "session_speedup_vs_sequential",
        "session_vs_batched",
        "preempt_resume_s",
        "scaling",
        "width_scaling",
    ):
        if key not in decode:
            raise ValueError(f"decode block is missing key {key!r}")
    if decode["preempt_resume_s"] < 0:
        raise ValueError("preempt_resume_s must be non-negative")
    if decode["batched_speedup"] <= 0:
        raise ValueError("batched_speedup must be positive")
    if decode["session_speedup_vs_sequential"] <= 0:
        raise ValueError("session_speedup_vs_sequential must be positive")
    if "per_token_growth" not in decode["scaling"]:
        raise ValueError("decode scaling block is missing key 'per_token_growth'")
    if decode["scaling"]["per_token_growth"] <= 0:
        raise ValueError("per_token_growth must be positive")
    width_scaling = decode["width_scaling"]
    for key in (
        "widths",
        "session_s_per_step",
        "batched_s_per_step",
        "amortisation_vs_sequential",
    ):
        if key not in width_scaling:
            raise ValueError(f"decode width_scaling block is missing key {key!r}")
        if key != "widths" and len(width_scaling[key]) != len(width_scaling["widths"]):
            raise ValueError(f"width_scaling {key!r} length differs from widths")
    if any(s <= 0 for s in width_scaling["session_s_per_step"]):
        raise ValueError("width_scaling per-step timings must be positive")
    store = document["store"]
    for key in ("bytes_stored", "logical_bytes", "dedup_ratio", "tiers"):
        if key not in store:
            raise ValueError(f"store block is missing key {key!r}")
    if store["bytes_stored"] <= 0:
        raise ValueError("store bytes_stored must be positive")
    if store["dedup_ratio"] < 1.0:
        raise ValueError("store dedup_ratio must be >= 1 (trie never inflates)")
    fleet = document["fleet"]
    for key in ("n_replicas", "n_decisions", "gated_policy", "policies"):
        if key not in fleet:
            raise ValueError(f"fleet block is missing key {key!r}")
    if fleet["n_replicas"] < 1:
        raise ValueError("fleet n_replicas must be >= 1")
    policies = fleet["policies"]
    if fleet["gated_policy"] not in policies:
        raise ValueError("fleet gated_policy must appear in the policies block")
    for policy, stats in policies.items():
        if stats["decision_s"] < 0:
            raise ValueError(f"fleet policy {policy!r} has a negative decision time")
        counts = stats["placement_counts"]
        if len(counts) != fleet["n_replicas"]:
            raise ValueError(
                f"fleet policy {policy!r} needs one placement count per replica"
            )


def profile_filename(tag: str = "") -> str:
    stamp = datetime.now(timezone.utc).strftime("%Y%m%dT%H%M%SZ")
    middle = f"{tag}_" if tag else ""
    return f"BENCH_profile_{middle}{stamp}.json"


def save_profile_report(
    document: dict[str, object], out_dir: str | Path = ".", tag: str = ""
) -> Path:
    """Validate and write the profile report; returns the written path."""
    validate_profile_report(document)
    out_path = Path(out_dir) / profile_filename(tag)
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return out_path


def check_against_baseline(
    document: dict[str, object],
    baseline: dict[str, object],
    max_regression: float = 2.0,
    ops: tuple[str, ...] = (
        "fuse_sequential",
        "fuse_pipelined",
        "serve_pipelined",
        "decode_batched",
        "decode_session",
        "preempt_resume",
        "store_lookup",
        "routing_decision",
        "dequant_int8",
    ),
) -> list[str]:
    """Compare *document* against a checked-in *baseline*; returns failures.

    An op fails when its best (min) wall-clock exceeds ``max_regression``
    times the baseline's.  Minimums are compared so scheduler noise on shared
    CI runners doesn't trip the gate; ``max_regression`` absorbs hardware
    differences between the baseline machine and the runner.  Gated ops are
    the fuse wall-clocks, the measured end-to-end serving TTFT
    (``serve_pipelined``), the batched decode wall-clock (``decode_batched``),
    the session decode wall-clock (``decode_session``, the serving loop's
    steady-state path), the preemption round-trip (``preempt_resume``, the
    SLO scheduler's per-preemption overhead) *and* the tiered trie lookup
    (``store_lookup``, the gather path's store work) and the fleet routing
    decision (``routing_decision``, the router tier's per-request overhead
    under the affinity policy); ops absent from an older baseline are
    skipped.
    """
    failures: list[str] = []
    base_ops = baseline.get("ops", {})
    for op in ops:
        if op not in base_ops:
            continue
        base = float(base_ops[op]["min_s"])
        current = float(document["ops"][op]["min_s"])
        if base > 0 and current > base * max_regression:
            failures.append(
                f"{op}: {current * 1e3:.2f} ms vs baseline {base * 1e3:.2f} ms "
                f"(> {max_regression:.1f}x)"
            )
    return failures


def format_profile_summary(document: dict[str, object]) -> str:
    """Human-readable profile table, for CLI output."""
    cfg = document["config"]
    pipe = document["pipeline"]
    lines = [
        f"profile report (model={cfg['model']}, "
        f"{cfg['n_chunks']}x{cfg['chunk_tokens']} chunk tokens + "
        f"{cfg['suffix_tokens']} suffix, ratio={cfg['recompute_ratio']})",
        f"{'op':<18} {'mean':>10} {'min':>10} {'max':>10}",
    ]
    for op, stats in document["ops"].items():
        lines.append(
            f"{op:<18} {stats['mean_s'] * 1e3:>8.2f}ms {stats['min_s'] * 1e3:>8.2f}ms "
            f"{stats['max_s'] * 1e3:>8.2f}ms"
        )
    lines.append(
        f"pipelined vs sequential fuse: {pipe['measured_speedup']:.2f}x "
        f"(seq {pipe['sequential_total_s'] * 1e3:.1f} ms, "
        f"pipe {pipe['pipelined_total_s'] * 1e3:.1f} ms, "
        f"stall {pipe['pipelined_stall_s'] * 1e3:.1f} ms, "
        f"load/layer {pipe['layer_load_time_s'] * 1e3:.2f} ms)"
    )
    decode = document["decode"]
    scaling = decode["scaling"]
    lines.append(
        f"batched vs sequential decode ({decode['batch_size']}x"
        f"{decode['n_tokens']} tokens): {decode['batched_speedup']:.2f}x "
        f"(seq {decode['sequential_total_s'] * 1e3:.1f} ms, "
        f"batched {decode['batched_total_s'] * 1e3:.1f} ms); "
        f"per-token growth over {scaling['n_tokens']} tokens: "
        f"{scaling['per_token_growth']:.2f}x"
    )
    lines.append(
        f"decode session (persistent pad, same workload): "
        f"{decode['session_total_s'] * 1e3:.1f} ms "
        f"({decode['session_speedup_vs_sequential']:.2f}x vs sequential, "
        f"{decode['session_vs_batched']:.2f}x vs per-call batched); "
        f"preempt/resume round-trip {decode['preempt_resume_s'] * 1e3:.2f} ms"
    )
    store = document["store"]
    lines.append(
        f"tiered trie store ({store['n_chunks']} chunks, "
        f"{store['shared_prefix_tokens']}-token shared prefix): "
        f"{store['bytes_stored'] / 1e6:.2f} MB stored vs "
        f"{store['logical_bytes'] / 1e6:.2f} MB logical "
        f"({store['dedup_ratio']:.2f}x dedup, "
        f"{store['slow_tier_hits']} slow-tier hits)"
    )
    fleet = document["fleet"]
    lines.append(
        f"fleet routing ({fleet['n_replicas']} replicas, "
        f"{fleet['n_decisions']} decisions): "
        + ", ".join(
            f"{policy}: {stats['decision_s'] * 1e6:.1f} us/decision"
            for policy, stats in fleet["policies"].items()
        )
    )
    width = decode["width_scaling"]
    lines.append(
        "session step by batch width: "
        + ", ".join(
            f"w={w}: {s * 1e3:.2f} ms/step ({a:.2f}x amortised)"
            for w, s, a in zip(
                width["widths"],
                width["session_s_per_step"],
                width["amortisation_vs_sequential"],
            )
        )
    )
    return "\n".join(lines)
