"""Paper-style RAG workload synthesis.

The paper's serving experiments (§6.1) replay multi-chunk RAG queries from
four datasets — 2WikiMQA, Musique, SAMSum and MultiNews — whose requests
differ in how many chunks they retrieve, how long the chunks are and how long
the user suffix/answer are.  :class:`WorkloadGenerator` reproduces that shape
synthetically:

* arrivals follow a Poisson process at a configurable request rate — or one
  of two overload-inducing presets: ``bursty`` (on/off bursts several times
  the nominal rate followed by idle gaps) and ``diurnal`` (a sinusoidally
  modulated rate), both preserving the long-run average rate;
* per-request chunk count, chunk length, suffix length and output length are
  sampled from per-dataset distributions (:class:`DatasetSpec` presets);
* chunk *identity* is sampled from a Zipf popularity law over a corpus of
  unique chunks, and a key-only LRU model of the chunk KV store
  (:class:`~repro.kvstore.store.ChunkUsageTracker`) converts the resulting
  reuse into per-request ``cached_chunk_fraction`` / ``prefix_cached_fraction``
  values, so prefix-caching and full-reuse hit rates vary realistically with
  popularity skew and cache capacity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.kvstore.hierarchy import TieredChunkTracker
from repro.kvstore.store import CacheStats, ChunkUsageTracker
from repro.serving.request import GenerationRequest


@dataclass(frozen=True)
class DatasetSpec:
    """Request-shape distributions of one evaluation dataset.

    Chunk/suffix/output token counts are sampled from normal distributions
    clipped to sensible minima; the chunk count is uniform over
    ``[min_chunks, max_chunks]``.
    """

    name: str
    min_chunks: int
    max_chunks: int
    chunk_tokens_mean: float
    chunk_tokens_std: float
    suffix_tokens_mean: float
    suffix_tokens_std: float
    output_tokens_mean: float
    output_tokens_std: float

    def __post_init__(self) -> None:
        if not 1 <= self.min_chunks <= self.max_chunks:
            raise ValueError("need 1 <= min_chunks <= max_chunks")
        if self.chunk_tokens_mean < 1:
            raise ValueError("chunk_tokens_mean must be >= 1")


#: Dataset presets mirroring the paper's four workloads (§6.1): multi-hop QA
#: datasets retrieve several mid-size passages with short answers, SAMSum has
#: short dialogue chunks, MultiNews has long articles and long summaries.
DATASET_PRESETS: dict[str, DatasetSpec] = {
    "2wikimqa": DatasetSpec(
        name="2wikimqa", min_chunks=4, max_chunks=8,
        chunk_tokens_mean=512.0, chunk_tokens_std=96.0,
        suffix_tokens_mean=32.0, suffix_tokens_std=8.0,
        output_tokens_mean=32.0, output_tokens_std=8.0,
    ),
    "musique": DatasetSpec(
        name="musique", min_chunks=4, max_chunks=10,
        chunk_tokens_mean=400.0, chunk_tokens_std=80.0,
        suffix_tokens_mean=40.0, suffix_tokens_std=10.0,
        output_tokens_mean=24.0, output_tokens_std=6.0,
    ),
    "samsum": DatasetSpec(
        name="samsum", min_chunks=2, max_chunks=6,
        chunk_tokens_mean=220.0, chunk_tokens_std=60.0,
        suffix_tokens_mean=24.0, suffix_tokens_std=6.0,
        output_tokens_mean=48.0, output_tokens_std=12.0,
    ),
    "multinews": DatasetSpec(
        name="multinews", min_chunks=3, max_chunks=8,
        chunk_tokens_mean=700.0, chunk_tokens_std=160.0,
        suffix_tokens_mean=48.0, suffix_tokens_std=12.0,
        output_tokens_mean=128.0, output_tokens_std=32.0,
    ),
}


#: Supported arrival-process presets.  ``poisson`` is the plain open-loop
#: process; ``bursty`` alternates short bursts at ``BURST_FACTOR`` times the
#: nominal rate with idle gaps sized to keep the long-run average; ``diurnal``
#: modulates the instantaneous rate sinusoidally over the stream.  The two
#: non-Poisson presets create transient overload windows (arrival rate above
#: service capacity) without changing the mean load, which is exactly the
#: regime SLO admission control and decode preemption are measured under.
ARRIVAL_PATTERNS = ("poisson", "bursty", "diurnal")

#: Bursty preset shape: requests per burst and the in-burst rate multiplier.
BURST_LENGTH = 8
BURST_FACTOR = 4.0

#: Diurnal preset shape: rate swing amplitude (±80 % of nominal) and cycles
#: over the generated stream.
DIURNAL_AMPLITUDE = 0.8
DIURNAL_CYCLES = 2.0


def get_dataset(name: str) -> DatasetSpec:
    """Return a dataset preset by name with a helpful error on typos."""
    try:
        return DATASET_PRESETS[name]
    except KeyError:
        known = ", ".join(sorted(DATASET_PRESETS))
        raise KeyError(f"unknown dataset {name!r}; known datasets: {known}") from None


@dataclass
class WorkloadStats:
    """Aggregate reuse statistics of one generated request stream."""

    n_requests: int = 0
    n_chunk_accesses: int = 0
    chunk_hit_rate: float = 0.0
    mean_cached_chunk_fraction: float = 0.0
    mean_prefix_cached_fraction: float = 0.0
    mean_context_tokens: float = 0.0
    cache: dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> dict[str, object]:
        return {
            "n_requests": self.n_requests,
            "n_chunk_accesses": self.n_chunk_accesses,
            "chunk_hit_rate": self.chunk_hit_rate,
            "mean_cached_chunk_fraction": self.mean_cached_chunk_fraction,
            "mean_prefix_cached_fraction": self.mean_prefix_cached_fraction,
            "mean_context_tokens": self.mean_context_tokens,
            "cache": dict(self.cache),
        }


@dataclass
class WorkloadGenerator:
    """Synthesizes paper-style RAG request streams.

    Parameters
    ----------
    dataset:
        A :class:`DatasetSpec` or the name of a preset.
    request_rate:
        Long-run average arrival rate in requests per second.
    arrival_pattern:
        One of :data:`ARRIVAL_PATTERNS`.  ``poisson`` (default) keeps the
        plain open-loop process; ``bursty`` and ``diurnal`` concentrate the
        same average load into transient overload windows.
    ttft_slo_s:
        When set, every generated request carries this TTFT deadline
        (:attr:`~repro.serving.request.GenerationRequest.deadline_s`), so
        SLO admission control and goodput accounting apply downstream.
    n_unique_chunks:
        Size of the chunk corpus requests draw from.
    zipf_alpha:
        Popularity skew of chunk accesses (``p(rank) ∝ rank**-alpha``).
        Higher values concentrate traffic on few hot chunks and raise hit
        rates; ``0`` is uniform.
    cache_chunk_capacity:
        Capacity (in chunks) of the simulated chunk KV store used to derive
        per-request cached fractions.
    seed:
        RNG seed; streams are fully deterministic given the configuration.
    """

    dataset: DatasetSpec | str = "2wikimqa"
    request_rate: float = 1.0
    arrival_pattern: str = "poisson"
    ttft_slo_s: float | None = None
    n_unique_chunks: int = 400
    zipf_alpha: float = 1.0
    cache_chunk_capacity: int = 160
    seed: int = 0

    def __post_init__(self) -> None:
        if isinstance(self.dataset, str):
            self.dataset = get_dataset(self.dataset)
        if self.request_rate <= 0:
            raise ValueError("request_rate must be positive")
        if self.arrival_pattern not in ARRIVAL_PATTERNS:
            raise ValueError(
                f"unknown arrival_pattern {self.arrival_pattern!r}; "
                f"expected one of {ARRIVAL_PATTERNS}"
            )
        if self.ttft_slo_s is not None and self.ttft_slo_s <= 0:
            raise ValueError("ttft_slo_s must be positive when set")
        if self.n_unique_chunks < 1:
            raise ValueError("n_unique_chunks must be >= 1")
        if self.zipf_alpha < 0:
            raise ValueError("zipf_alpha must be >= 0")
        self.stats = WorkloadStats()
        #: Per-request ``(chunk_ids, chunk_tokens)`` of the last
        #: :meth:`generate` call — the raw access trace
        #: :meth:`simulate_tiered_store` replays under other capacities.
        self.last_chunk_accesses: list[tuple[list[int], int]] = []

    # ------------------------------------------------------------------
    def _popularity(self) -> np.ndarray:
        ranks = np.arange(1, self.n_unique_chunks + 1, dtype=np.float64)
        weights = ranks ** (-self.zipf_alpha)
        return weights / weights.sum()

    @staticmethod
    def _clipped_int(rng: np.random.Generator, mean: float, std: float, low: int) -> int:
        return max(low, int(round(rng.normal(mean, std))))

    def _arrivals(self, rng: np.random.Generator, n_requests: int) -> np.ndarray:
        """Sample arrival times under the configured arrival pattern.

        All three presets share the same long-run average rate; the bursty
        and diurnal ones redistribute the arrivals in time so the stream
        alternates between overload (arrivals faster than service) and slack.
        """
        if self.arrival_pattern == "poisson":
            gaps = rng.exponential(1.0 / self.request_rate, size=n_requests)
        elif self.arrival_pattern == "bursty":
            # On/off process: bursts of BURST_LENGTH requests arrive at
            # BURST_FACTOR× the nominal rate; each burst boundary inserts an
            # idle gap whose mean restores the long-run average, so the
            # in-burst windows are genuine transient overload.
            gaps = rng.exponential(
                1.0 / (BURST_FACTOR * self.request_rate), size=n_requests
            )
            positions = np.arange(n_requests)
            boundary = (positions > 0) & (positions % BURST_LENGTH == 0)
            mean_idle = BURST_LENGTH * (1.0 - 1.0 / BURST_FACTOR) / self.request_rate
            gaps = gaps + np.where(
                boundary, rng.exponential(mean_idle, size=n_requests), 0.0
            )
        else:  # diurnal
            # Inhomogeneous Poisson process: each gap is drawn at the
            # instantaneous rate of a sinusoid over the nominal stream span
            # (DIURNAL_CYCLES full cycles), floored away from zero.
            span = n_requests / self.request_rate
            gaps = np.empty(n_requests)
            now = 0.0
            for i in range(n_requests):
                phase = 2.0 * np.pi * DIURNAL_CYCLES * now / span
                rate = self.request_rate * (1.0 + DIURNAL_AMPLITUDE * np.sin(phase))
                rate = max(rate, 0.05 * self.request_rate)
                gaps[i] = rng.exponential(1.0 / rate)
                now += gaps[i]
        return np.cumsum(gaps)

    # ------------------------------------------------------------------
    def generate(self, n_requests: int) -> list[GenerationRequest]:
        """Sample *n_requests* requests; updates :attr:`stats` as a side effect."""
        if n_requests < 1:
            raise ValueError("n_requests must be >= 1")
        spec = self.dataset
        if spec.max_chunks > self.n_unique_chunks:
            raise ValueError(
                f"n_unique_chunks ({self.n_unique_chunks}) must be >= the "
                f"dataset's max_chunks ({spec.max_chunks})"
            )
        rng = np.random.default_rng(self.seed)
        arrivals = self._arrivals(rng, n_requests)
        popularity = self._popularity()
        tracker = ChunkUsageTracker(
            capacity_entries=self.cache_chunk_capacity, stats=CacheStats()
        )

        requests: list[GenerationRequest] = []
        cached_fractions: list[float] = []
        prefix_fractions: list[float] = []
        self.last_chunk_accesses = []
        for i in range(n_requests):
            n_chunks = int(rng.integers(spec.min_chunks, spec.max_chunks + 1))
            chunk_tokens = self._clipped_int(
                rng, spec.chunk_tokens_mean, spec.chunk_tokens_std, 16
            )
            n_suffix = self._clipped_int(
                rng, spec.suffix_tokens_mean, spec.suffix_tokens_std, 4
            )
            n_output = self._clipped_int(
                rng, spec.output_tokens_mean, spec.output_tokens_std, 1
            )
            chunk_ids = rng.choice(
                self.n_unique_chunks, size=n_chunks, replace=False, p=popularity
            )
            self.last_chunk_accesses.append(
                ([int(chunk) for chunk in chunk_ids], chunk_tokens)
            )
            hits = [tracker.access(int(chunk)) for chunk in chunk_ids]
            cached_fraction = sum(hits) / n_chunks
            prefix_hits = 0
            for hit in hits:
                if not hit:
                    break
                prefix_hits += 1
            prefix_fraction = prefix_hits / n_chunks
            cached_fractions.append(cached_fraction)
            prefix_fractions.append(prefix_fraction)
            requests.append(
                GenerationRequest(
                    request_id=i,
                    n_chunks=n_chunks,
                    chunk_tokens=chunk_tokens,
                    n_suffix_tokens=n_suffix,
                    n_output_tokens=n_output,
                    arrival_time=float(arrivals[i]),
                    cached_chunk_fraction=cached_fraction,
                    prefix_cached_fraction=prefix_fraction,
                    deadline_s=self.ttft_slo_s,
                )
            )

        self.stats = WorkloadStats(
            n_requests=n_requests,
            n_chunk_accesses=tracker.stats.lookups,
            chunk_hit_rate=tracker.stats.hit_rate,
            mean_cached_chunk_fraction=float(np.mean(cached_fractions)),
            mean_prefix_cached_fraction=float(np.mean(prefix_fractions)),
            mean_context_tokens=float(
                np.mean([r.n_context_tokens for r in requests])
            ),
            cache=tracker.stats.as_dict(),
        )
        return requests

    # ------------------------------------------------------------------
    def simulate_tiered_store(
        self, ram_capacity_chunks: int, slow_capacity_chunks: int
    ) -> "TieredStoreSimulation":
        """Replay the recorded access trace through a RAM→slow tiered store.

        Uses the ``(chunk_ids, chunk_tokens)`` trace of the last
        :meth:`generate` call, so every store capacity sees the *same*
        request stream.  Hits promote to the RAM tier; RAM eviction victims
        demote to the slow tier; slow-tier victims fall out of the store.
        Returns per-request cached/prefix/slow-tier fractions plus the
        aggregate hit/residency statistics a sweep cell reports.
        """
        if not self.last_chunk_accesses:
            raise RuntimeError("generate() must run before simulate_tiered_store()")
        tracker = TieredChunkTracker(
            tier_capacities=(ram_capacity_chunks, slow_capacity_chunks)
        )
        chunk_tokens_by_id: dict[int, int] = {}
        per_request: list[tuple[float, float, float]] = []
        for chunk_ids, chunk_tokens in self.last_chunk_accesses:
            tiers = [tracker.access(chunk) for chunk in chunk_ids]
            for chunk in chunk_ids:
                chunk_tokens_by_id[chunk] = chunk_tokens
            n_chunks = len(chunk_ids)
            hits = [tier is not None for tier in tiers]
            n_hits = sum(hits)
            prefix_hits = 0
            for hit in hits:
                if not hit:
                    break
                prefix_hits += 1
            slow_hits = sum(1 for tier in tiers if tier is not None and tier > 0)
            per_request.append(
                (
                    n_hits / n_chunks,
                    prefix_hits / n_chunks,
                    slow_hits / n_hits if n_hits else 0.0,
                )
            )
        resident = tracker.resident_keys_by_tier()
        resident_tokens = [
            sum(chunk_tokens_by_id.get(key, 0) for key in keys) for keys in resident
        ]
        return TieredStoreSimulation(
            per_request=per_request,
            hit_rate=tracker.stats.hit_rate,
            tier_hits=list(tracker.tier_hits),
            evictions=tracker.stats.evictions,
            resident_chunks=[len(keys) for keys in resident],
            resident_tokens=resident_tokens,
        )


@dataclass
class TieredStoreSimulation:
    """Outcome of replaying one access trace through a tiered chunk store."""

    #: Per request: ``(cached_fraction, prefix_fraction, slow_tier_fraction)``
    #: where the slow fraction is of the *cached* chunks, matching
    #: :attr:`~repro.serving.request.GenerationRequest.slow_tier_fraction`.
    per_request: list[tuple[float, float, float]]
    hit_rate: float
    tier_hits: list[int]
    evictions: int
    resident_chunks: list[int]
    resident_tokens: list[int]

    @property
    def slow_tier_hit_share(self) -> float:
        total = sum(self.tier_hits)
        return self.tier_hits[-1] / total if total else 0.0

    def as_dict(self) -> dict[str, object]:
        return {
            "hit_rate": self.hit_rate,
            "tier_hits": list(self.tier_hits),
            "slow_tier_hit_share": self.slow_tier_hit_share,
            "evictions": self.evictions,
            "resident_chunks": list(self.resident_chunks),
            "resident_tokens": list(self.resident_tokens),
        }
