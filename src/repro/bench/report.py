"""Machine-readable bench reports (``BENCH_*.json``).

One report is a single JSON document with a versioned schema:

.. code-block:: text

    {
      "schema_version": 4,
      "created": "<ISO-8601 UTC timestamp>",
      "tag": "<free-form label, e.g. 'smoke'>",
      "config": { ...ExperimentConfig fields... },
      "workload": { ...WorkloadStats fields... },
      "cells": [ { model, device, scheme, recompute_ratio, metrics... } ],
      "comparisons": [ { model, device, cacheblend vs baselines... } ],
      "proxy": { ...optional BlendEngine probe... } | null
    }

:func:`validate_report` checks structural invariants so CI (and tests) can
fail fast when the schema drifts.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from datetime import datetime, timezone
from pathlib import Path

from repro.bench.experiment import ExperimentReport

#: v2 added the per-cell ``mean_decode_tokens_per_s`` decode-throughput
#: column; v3 adds the store-capacity axis columns (``store_capacity_chunks``,
#: ``store_hit_rate``, ``store_bytes_stored``, ``store_slow_tier_hit_share``
#: — null when the sweep runs without the axis); v4 adds the robustness
#: columns: ``admission_policy``, ``goodput``, ``slo_attainment``,
#: ``rejection_rate``, ``preemption_count`` and the fault axis
#: (``fault_rate``, ``fault_recovered_chunks``, ``fault_ttft_inflation`` —
#: the inflation is null when faults are off); v5 adds the fleet axis
#: columns (``routing_policy``, ``n_replicas``, ``aggregate_throughput``,
#: ``per_replica_hit_rates``, ``fleet_hit_rate``, ``utilisation_skew`` —
#: null when the sweep runs without ``fleet_sizes``); v6 adds the KV
#: precision axis columns (``kv_dtype``, ``mean_kv_deviation``,
#: ``mean_attention_deviation`` — null when the sweep runs without
#: ``kv_dtypes``) and the ``dtype_*_vs_float16`` comparison rows.
SCHEMA_VERSION = 6

_REQUIRED_TOP_LEVEL = ("schema_version", "created", "tag", "config", "workload", "cells")
_REQUIRED_CELL_FIELDS = (
    "model",
    "device",
    "scheme",
    "recompute_ratio",
    "mean_ttft",
    "p50_ttft",
    "p90_ttft",
    "p99_ttft",
    "throughput",
    "mean_recomputed_fraction",
    "quality",
    "quality_adjusted_ttft",
    "mean_decode_tokens_per_s",
    "store_capacity_chunks",
    "store_hit_rate",
    "store_bytes_stored",
    "store_slow_tier_hit_share",
    "kv_dtype",
    "mean_kv_deviation",
    "mean_attention_deviation",
    "admission_policy",
    "goodput",
    "slo_attainment",
    "rejection_rate",
    "preemption_count",
    "fault_rate",
    "fault_recovered_chunks",
    "fault_ttft_inflation",
    "routing_policy",
    "n_replicas",
    "aggregate_throughput",
    "per_replica_hit_rates",
    "fleet_hit_rate",
    "utilisation_skew",
)


def report_to_dict(report: ExperimentReport, tag: str = "") -> dict[str, object]:
    """Serialise an :class:`ExperimentReport` into the schema above."""
    return {
        "schema_version": SCHEMA_VERSION,
        "created": datetime.now(timezone.utc).isoformat(),
        "tag": tag,
        "config": asdict(report.config),
        "workload": report.workload,
        "cells": [cell.as_dict() for cell in report.cells],
        "comparisons": report.comparisons,
        "proxy": report.proxy,
    }


def validate_report(document: dict[str, object]) -> None:
    """Raise ``ValueError`` when *document* does not match the schema."""
    for key in _REQUIRED_TOP_LEVEL:
        if key not in document:
            raise ValueError(f"report is missing top-level key {key!r}")
    if document["schema_version"] != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported schema_version {document['schema_version']!r}; "
            f"expected {SCHEMA_VERSION}"
        )
    cells = document["cells"]
    if not isinstance(cells, list) or not cells:
        raise ValueError("report must contain a non-empty 'cells' list")
    for i, cell in enumerate(cells):
        for key in _REQUIRED_CELL_FIELDS:
            if key not in cell:
                raise ValueError(f"cell {i} is missing field {key!r}")
        if not 0.0 <= cell["mean_recomputed_fraction"] <= 1.0:
            raise ValueError(f"cell {i} has an out-of-range recompute fraction")
        if cell["mean_ttft"] < 0.0:
            raise ValueError(f"cell {i} has a negative mean TTFT")
        if cell["mean_decode_tokens_per_s"] < 0.0:
            raise ValueError(f"cell {i} has a negative decode throughput")
        hit_rate = cell["store_hit_rate"]
        if hit_rate is not None and not 0.0 <= hit_rate <= 1.0:
            raise ValueError(f"cell {i} has an out-of-range store hit rate")
        kv_dtype = cell["kv_dtype"]
        if kv_dtype is not None:
            if cell["store_bytes_stored"] is None or cell["store_bytes_stored"] < 0:
                raise ValueError(
                    f"precision cell {i} needs non-negative store_bytes_stored"
                )
            deviation = cell["mean_kv_deviation"]
            if deviation is None or deviation < 0.0:
                raise ValueError(
                    f"precision cell {i} has an invalid mean KV deviation"
                )
        for fraction_key in ("slo_attainment", "rejection_rate"):
            if not 0.0 <= cell[fraction_key] <= 1.0:
                raise ValueError(f"cell {i} has an out-of-range {fraction_key}")
        if cell["goodput"] < 0.0:
            raise ValueError(f"cell {i} has a negative goodput")
        if cell["preemption_count"] < 0:
            raise ValueError(f"cell {i} has a negative preemption count")
        if not 0.0 <= cell["fault_rate"] <= 1.0:
            raise ValueError(f"cell {i} has an out-of-range fault rate")
        inflation = cell["fault_ttft_inflation"]
        if inflation is not None and inflation <= 0.0:
            raise ValueError(f"cell {i} has a non-positive fault TTFT inflation")
        routing = cell["routing_policy"]
        if routing is not None:
            n_replicas = cell["n_replicas"]
            if not isinstance(n_replicas, int) or n_replicas < 1:
                raise ValueError(f"fleet cell {i} needs n_replicas >= 1")
            per_replica = cell["per_replica_hit_rates"]
            if not isinstance(per_replica, list) or len(per_replica) != n_replicas:
                raise ValueError(
                    f"fleet cell {i} needs one per_replica_hit_rates entry per replica"
                )
            for rate in per_replica:
                if not 0.0 <= rate <= 1.0:
                    raise ValueError(
                        f"fleet cell {i} has an out-of-range per-replica hit rate"
                    )
            fleet_hit_rate = cell["fleet_hit_rate"]
            if fleet_hit_rate is None or not 0.0 <= fleet_hit_rate <= 1.0:
                raise ValueError(f"fleet cell {i} has an out-of-range fleet hit rate")
            skew = cell["utilisation_skew"]
            if skew is None or skew < 1.0 - 1e-9:
                raise ValueError(f"fleet cell {i} has a utilisation skew below 1")
            throughput = cell["aggregate_throughput"]
            if throughput is None or throughput < 0.0:
                raise ValueError(f"fleet cell {i} has a negative aggregate throughput")
    comparisons = document.get("comparisons", [])
    if not isinstance(comparisons, list):
        raise ValueError("'comparisons' must be a list")


def report_filename(tag: str = "") -> str:
    """``BENCH_<tag>_<UTC timestamp>.json`` (tag omitted when empty)."""
    stamp = datetime.now(timezone.utc).strftime("%Y%m%dT%H%M%SZ")
    middle = f"{tag}_" if tag else ""
    return f"BENCH_{middle}{stamp}.json"


def save_report(
    report: ExperimentReport, out_dir: str | Path = ".", tag: str = ""
) -> Path:
    """Serialise, validate and write the report; returns the written path."""
    document = report_to_dict(report, tag=tag)
    validate_report(document)
    out_path = Path(out_dir) / report_filename(tag)
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return out_path


def format_summary(document: dict[str, object]) -> str:
    """Human-readable table of the comparisons, for CLI output."""
    lines = [
        f"bench report (tag={document['tag'] or '-'}, "
        f"{len(document['cells'])} cells, dataset={document['config']['dataset']}, "
        f"scheduler={document['config']['scheduler']})",
        f"{'model':<12} {'device':<10} {'blend ttft':>11} {'recomp ttft':>12} "
        f"{'reuse qa-ttft':>14} {'speedup':>8}",
    ]
    admission_rows = []
    routing_rows = []
    dtype_rows = []
    for row in document.get("comparisons", []):
        if row.get("comparison") == "admission_vs_none":
            admission_rows.append(row)
            continue
        if str(row.get("comparison", "")).startswith("routing_"):
            routing_rows.append(row)
            continue
        if str(row.get("comparison", "")).startswith("dtype_"):
            dtype_rows.append(row)
            continue
        lines.append(
            f"{row['model']:<12} {row['device']:<10} "
            f"{row['cacheblend_mean_ttft']:>11.3f} "
            f"{row.get('full_recompute_mean_ttft', float('nan')):>12.3f} "
            f"{row.get('full_reuse_quality_adjusted_ttft', float('nan')):>14.3f} "
            f"{row.get('speedup_vs_full_recompute', float('nan')):>7.2f}x"
        )
    for row in admission_rows:
        if row["scheme"] != "cacheblend":
            continue
        lines.append(
            f"admission ({row['model']}/{row['device']}): goodput "
            f"{row['goodput_none']:.3f} -> {row['goodput_slo']:.3f} req/s "
            f"({row['goodput_gain']:.2f}x), rejected "
            f"{row['rejection_rate'] * 100:.0f}%, "
            f"{row['preemption_count']} preemptions"
        )
    for row in routing_rows:
        if row["scheme"] != "cacheblend":
            continue
        routing = str(row["comparison"]).removeprefix("routing_").removesuffix(
            "_vs_least_loaded"
        )
        lines.append(
            f"fleet x{row['n_replicas']} ({row['model']}/{row['device']}): "
            f"{routing} hit rate {row[f'fleet_hit_rate_{routing}']:.3f} vs "
            f"least_loaded {row['fleet_hit_rate_least_loaded']:.3f} "
            f"(gain {row['hit_rate_gain']:+.3f}), skew "
            f"{row[f'utilisation_skew_{routing}']:.2f} vs "
            f"{row['utilisation_skew_least_loaded']:.2f}, p99 TTFT "
            f"{row[f'p99_ttft_{routing}']:.3f}s vs "
            f"{row['p99_ttft_least_loaded']:.3f}s"
        )
    for row in dtype_rows:
        if row["scheme"] != "cacheblend":
            continue
        dtype = (
            str(row["comparison"]).removeprefix("dtype_").removesuffix("_vs_float16")
        )
        lines.append(
            f"precision ({row['model']}/{row['device']}): {dtype} stores "
            f"{row['bytes_density_gain']:.2f}x denser than float16 "
            f"({row[f'store_bytes_{dtype}'] / 1e9:.2f} vs "
            f"{row['store_bytes_float16'] / 1e9:.2f} GB), TTFT "
            f"{row[f'mean_ttft_{dtype}']:.3f}s vs {row['mean_ttft_float16']:.3f}s, "
            f"KV deviation {row[f'mean_kv_deviation_{dtype}']:.4f} vs "
            f"{row['mean_kv_deviation_float16']:.4f}"
        )
    proxy = document.get("proxy")
    if proxy and proxy.get("measured_ttfts"):
        measured = proxy["measured_ttfts"]
        estimated = proxy.get("estimated_ttfts", [])
        lines.append(
            "proxy (pipelined executor, measured): "
            f"TTFT {', '.join(f'{t * 1e3:.1f}' for t in measured)} ms "
            f"vs analytic estimate {', '.join(f'{t * 1e3:.1f}' for t in estimated)} ms"
        )
        batch = proxy.get("batch")
        if batch:
            lines.append(
                f"cross-request pipelining ({batch['n_requests']} requests): "
                f"makespan {batch['pipelined_makespan_s'] * 1e3:.1f} ms vs "
                f"{batch['sequential_makespan_s'] * 1e3:.1f} ms sequential "
                f"({batch['cross_request_speedup']:.2f}x)"
            )
    return "\n".join(lines)
