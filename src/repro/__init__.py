"""CacheBlend reproduction: fast LLM serving for RAG with cached knowledge fusion.

This package reimplements, in pure Python/NumPy, the system described in
*CacheBlend: Fast Large Language Model Serving for RAG with Cached Knowledge
Fusion* (EuroSys 2025).  It contains the CacheBlend core (selective KV
recompute, HKVD token selection, loading controller, load/compute pipeline),
every substrate the paper depends on (a transformer model, a tokenizer, a
retrieval stack, a KV cache store with storage-device models, a serving
simulator), the baselines the paper compares against, synthetic stand-ins for
the evaluation datasets, and an experiment harness that regenerates every
figure of the paper's evaluation.

The public, stable entry points are re-exported here.
"""

from repro.core.blend_engine import BlendEngine, BlendResult
from repro.core.controller import LoadingController, ControllerDecision
from repro.core.fusor import KVFusor, FusorConfig
from repro.model.config import ModelConfig
from repro.model.transformer import TransformerModel
from repro.kvstore.store import KVCacheStore
from repro.kvstore.device import StorageDevice, DEVICE_PRESETS
from repro.tokenizer.tokenizer import Tokenizer
from repro.retrieval.retriever import Retriever
from repro.serving.costmodel import ServingCostModel

__version__ = "1.0.0"

__all__ = [
    "BlendEngine",
    "BlendResult",
    "LoadingController",
    "ControllerDecision",
    "KVFusor",
    "FusorConfig",
    "ModelConfig",
    "TransformerModel",
    "KVCacheStore",
    "StorageDevice",
    "DEVICE_PRESETS",
    "Tokenizer",
    "Retriever",
    "ServingCostModel",
    "__version__",
]
