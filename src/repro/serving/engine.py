"""Inference engine: per-request service-time estimates per serving scheme.

The engine turns a :class:`~repro.serving.request.GenerationRequest` into the
delays that matter for end-to-end serving:

* ``gpu_time`` — how long the GPU is busy on the request's prefill (this is
  what limits throughput; KV loading from RAM/SSD overlaps and does not
  occupy the GPU);
* ``ttft_service`` — the service part of TTFT (prefill or pipelined
  load+recompute, plus the first decode step);
* ``decode_time`` — the remaining decoding after the first token.

Supported schemes mirror the paper's baselines: ``full_recompute``,
``prefix_caching``, ``full_reuse`` and ``cacheblend``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kvstore.device import StorageDevice
from repro.serving.costmodel import ServingCostModel
from repro.serving.request import GenerationRequest

SCHEMES = ("full_recompute", "prefix_caching", "full_reuse", "cacheblend")


@dataclass(frozen=True)
class EngineResult:
    """Service-time breakdown of one request.

    ``recomputed_fraction`` is the fraction of the input tokens whose KV was
    (re)computed on the GPU rather than loaded from the cache — 1.0 for full
    recompute, the suffix share for full reuse, and roughly the recompute
    ratio for CacheBlend.  The experiment runner aggregates it to report how
    much prefill compute each scheme actually spends.

    ``stall_time`` is the part of ``ttft_service`` the GPU spends *waiting*
    on KV loads rather than computing (zero for compute-only schemes).  A
    cross-request-pipelining scheduler can hide it behind other requests'
    compute — see ``ContinuousBatchingScheduler(overlap_loads=True)``.

    ``ttft_service_measured`` is the trace-calibrated pipeline delay from
    :meth:`~repro.serving.costmodel.ServingCostModel.ttft_cacheblend_measured`
    *plus the first decode step*, attached (CacheBlend only) when the cost
    model carries a ready
    :class:`~repro.serving.costmodel.OnlineCostCalibration`; ``None``
    otherwise.  The decode step is the calibration's *measured* per-step
    delay whenever pipelined serving has observed one (the serving loop
    measures every co-batched :class:`~repro.model.tensors.DecodeSession`
    step, width-tagged; the first step of every pipelined batch seeds it),
    falling back to the analytic per-token delay until then.  It sits beside
    the analytic ``ttft_service`` so sweeps can report measured vs analytic
    TTFT side by side.
    """

    scheme: str
    gpu_time: float
    ttft_service: float
    decode_time: float
    recomputed_fraction: float = 1.0
    stall_time: float = 0.0
    ttft_service_measured: float | None = None

    @property
    def total_service_time(self) -> float:
        return self.ttft_service + self.decode_time


@dataclass
class InferenceEngine:
    """Service-time estimator for one scheme on one model/device pair.

    ``fast_device`` models a tiered KV store: requests carrying a
    ``slow_tier_fraction`` split their cached-context loads between this
    (RAM) tier and ``device`` (the slow tier).  Without it — or for requests
    with ``slow_tier_fraction=None`` — all cached loads are priced at
    ``device``, the historical single-store behaviour.
    """

    cost_model: ServingCostModel
    scheme: str = "cacheblend"
    device: StorageDevice | None = None
    recompute_ratio: float = 0.15
    fast_device: StorageDevice | None = None

    def __post_init__(self) -> None:
        if self.scheme not in SCHEMES:
            raise ValueError(f"unknown scheme {self.scheme!r}; expected one of {SCHEMES}")
        if self.scheme in ("full_reuse", "cacheblend") and self.device is None:
            raise ValueError(f"scheme {self.scheme!r} requires a storage device")
        if not 0.0 <= self.recompute_ratio <= 1.0:
            raise ValueError("recompute_ratio must be in [0, 1]")

    # ------------------------------------------------------------------
    def serve(self, request: GenerationRequest) -> EngineResult:
        """Estimate the service times of *request* under this engine's scheme."""
        n_total = request.n_total_tokens
        n_suffix = request.n_suffix_tokens
        cached_context = int(round(request.cached_chunk_fraction * request.n_context_tokens))
        cold_context = request.n_context_tokens - cached_context
        # Tiered store split of the cached context: fast-tier tokens read at
        # the RAM tier's rate, the rest at `device` (the slow tier).
        slow_context = 0
        fast_context = 0
        if request.slow_tier_fraction is not None and self.fast_device is not None:
            slow_context = min(
                cached_context, int(round(request.slow_tier_fraction * cached_context))
            )
            fast_context = cached_context - slow_context

        if self.scheme == "full_recompute":
            prefill = self.cost_model.prefill_time(n_total)
            gpu_time = prefill
            ttft_service = prefill
            recomputed = float(n_total)
        elif self.scheme == "prefix_caching":
            n_prefix = int(round(request.prefix_cached_fraction * request.n_context_tokens))
            prefill = self.cost_model.prefill_time_with_prefix(n_total, n_prefix)
            gpu_time = prefill
            ttft_service = prefill
            recomputed = float(n_total - n_prefix)
        elif self.scheme == "full_reuse":
            ttft_service = self.cost_model.ttft_full_reuse(
                cached_context + n_suffix,
                n_suffix,
                self.device,
                n_fast_tokens=fast_context,
                fast_device=self.fast_device,
            )
            gpu_time = self.cost_model.recompute_time(
                cached_context + n_suffix, n_suffix / max(1, cached_context + n_suffix)
            )
            recomputed = float(n_suffix + cold_context)
            if cold_context:
                cold = self.cost_model.prefill_time(cold_context)
                ttft_service += cold
                gpu_time += cold
        else:  # cacheblend
            ttft_service = self.cost_model.ttft_cacheblend(
                cached_context + n_suffix,
                n_suffix,
                self.recompute_ratio,
                self.device,
                n_fast_tokens=fast_context,
                fast_device=self.fast_device,
            )
            recomputed_fraction = (
                self.recompute_ratio * cached_context + n_suffix
            ) / max(1, cached_context + n_suffix)
            # Selective recompute on layers 1..L-1; layer 0 is a full prefill
            # (matching the per-layer schedule priced by ttft_cacheblend).
            n_layers = self.cost_model.model.n_layers
            gpu_time = self.cost_model.recompute_layer_time(
                cached_context + n_suffix, recomputed_fraction
            ) * (n_layers - 1)
            gpu_time += self.cost_model.prefill_layer_time(cached_context + n_suffix)
            recomputed = self.recompute_ratio * cached_context + n_suffix + cold_context
            if cold_context:
                cold = self.cost_model.prefill_time(cold_context)
                ttft_service += cold
                gpu_time += cold

        first_token = self.cost_model.decode_time_per_token(context_tokens=n_total)
        # The first token's KV is already appended when the remaining tokens
        # decode, so their growing-context integration starts at n_total + 1.
        remaining_decode = self.cost_model.decode_time(
            max(0, request.n_output_tokens - 1), context_tokens=n_total + 1
        )
        measured: float | None = None
        calibration = self.cost_model.calibration
        if (
            self.scheme == "cacheblend"
            and calibration is not None
            and calibration.ready
        ):
            measured = self.cost_model.ttft_cacheblend_measured(
                cached_context + n_suffix, n_suffix, self.recompute_ratio
            )
            # TTFT runs to the first emitted token: add the measured first
            # decode step when one has been observed, the analytic one until
            # then (mirroring the `+ first_token` on the analytic estimate).
            measured += (
                calibration.decode_step_time()
                if calibration.decode_ready
                else first_token
            )
            if slow_context > 0 and self.fast_device is not None:
                # The calibrated per-layer load rate reflects fast-tier
                # reads; KV spilled to the slow tier adds its read excess
                # on top (per-tier delay in the measured column).
                measured += max(
                    0.0,
                    self.cost_model.kv_load_time(slow_context, self.device)
                    - self.cost_model.kv_load_time(slow_context, self.fast_device),
                )
        # Pure device-wait share of the service time: what remains after the
        # GPU work *and* the per-request launch overhead (overhead is GPU-side
        # and cannot be hidden behind another request's compute).
        stall = max(0.0, ttft_service - gpu_time - self.cost_model.gpu.overhead_s)
        return EngineResult(
            scheme=self.scheme,
            gpu_time=gpu_time + first_token,
            ttft_service=ttft_service + first_token,
            decode_time=remaining_decode,
            recomputed_fraction=min(1.0, recomputed / max(1, n_total)),
            stall_time=stall,
            ttft_service_measured=measured,
        )

    def serve_batch(self, requests: list[GenerationRequest]) -> list[EngineResult]:
        """Estimate service times for a batch of requests, in order."""
        return [self.serve(request) for request in requests]
