"""Request schedulers: FCFS and iteration-level continuous batching.

Both schedulers map ``(requests, results)`` pairs onto ``n_servers`` identical
GPU servers and return per-request :class:`~repro.serving.request.RequestTiming`
records.  They share the :class:`Scheduler` protocol so the simulator and the
experiment runner can swap them freely.

* :class:`FCFSScheduler` runs one request at a time per server, holding the
  GPU for the request's whole prefill *and* decode (vLLM without continuous
  batching, the paper's serving baseline).
* :class:`ContinuousBatchingScheduler` admits requests at iteration
  granularity under a per-server token budget, splits prefills into chunks
  and interleaves one decode step per running request per iteration (Orca- /
  vLLM-style continuous batching).  Short prefills no longer wait behind the
  long decodes of earlier requests.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from repro.serving.costmodel import OnlineCostCalibration, predict_first_token_time
from repro.serving.engine import EngineResult
from repro.serving.request import GenerationRequest, RequestTiming


@runtime_checkable
class Scheduler(Protocol):
    """Anything that can place engine results on servers over time."""

    n_servers: int

    def schedule(
        self,
        requests: list[GenerationRequest],
        results: list[EngineResult],
    ) -> list[RequestTiming]:
        """Assign start/first-token/completion times to every request."""
        ...


def _check_lengths(
    requests: list[GenerationRequest], results: list[EngineResult]
) -> None:
    if len(requests) != len(results):
        raise ValueError("requests and results must have the same length")


@dataclass
class FCFSScheduler:
    """FCFS scheduler over ``n_servers`` identical GPU servers.

    The GPU is occupied for ``gpu_time + decode_time`` of each request; the
    first token is emitted ``ttft_service`` after the request starts (KV
    loading from storage overlaps with GPU work of the same request but the
    GPU is not free for other requests during its own compute).
    """

    n_servers: int = 1

    def __post_init__(self) -> None:
        if self.n_servers < 1:
            raise ValueError("n_servers must be >= 1")

    def schedule(
        self,
        requests: list[GenerationRequest],
        results: list[EngineResult],
    ) -> list[RequestTiming]:
        """Assign start times in arrival order; returns per-request timings."""
        _check_lengths(requests, results)
        order = sorted(range(len(requests)), key=lambda i: requests[i].arrival_time)
        server_free = [0.0] * self.n_servers
        timing_by_index: dict[int, RequestTiming] = {}
        for index in order:
            request = requests[index]
            result = results[index]
            server = min(range(self.n_servers), key=lambda s: server_free[s])
            start = max(request.arrival_time, server_free[server])
            occupancy = max(result.ttft_service, result.gpu_time) + result.decode_time
            first_token = start + result.ttft_service
            completion = start + occupancy
            server_free[server] = completion
            timing_by_index[index] = RequestTiming(
                request_id=request.request_id,
                arrival_time=request.arrival_time,
                start_time=start,
                first_token_time=first_token,
                completion_time=completion,
                gpu_time=result.gpu_time,
                deadline_s=request.deadline_s,
            )
        return [timing_by_index[i] for i in range(len(requests))]


@dataclass
class _RunningRequest:
    """Book-keeping of one admitted request inside the batching loop."""

    index: int
    request: GenerationRequest
    result: EngineResult
    start_time: float
    remaining_prefill: float
    prefill_slice: float
    decode_step: float
    decode_steps_left: int
    #: Fraction of every prefill slice that is GPU compute (the rest is KV
    #: loading stall, hideable behind co-batched requests' compute).
    gpu_fraction: float = 1.0
    first_token_time: float | None = None
    #: How often this request's decode was paused for an at-risk prefill.
    n_preemptions: int = 0


@dataclass
class ContinuousBatchingScheduler:
    """Iteration-level continuous batching over ``n_servers`` servers.

    Parameters
    ----------
    n_servers:
        Number of identical GPU servers; each runs its own batching loop and
        pulls from a shared arrival queue.
    max_batch_tokens:
        Token budget of one server's running batch: the sum of the total
        (context + suffix) tokens of concurrently admitted requests may not
        exceed it.  A single oversized request is still admitted alone rather
        than starved.
    prefill_chunk_tokens:
        Chunked-prefill granularity.  A request's prefill service time is
        split into ``ceil(n_total_tokens / prefill_chunk_tokens)`` equal
        slices, one per iteration, so admission and decode steps interleave
        with long prefills.
    overlap_loads:
        Cross-request load/compute pipelining.  When enabled, an iteration
        with several working requests runs two serial streams concurrently —
        the storage device (the KV-loading stall shares of the prefill
        slices, ``EngineResult.stall_time``) and the GPU (everything else) —
        and lasts the *maximum* of the two instead of their sum: while
        request A stalls on its next layer's KV, the GPU runs request B's
        slice, exactly the overlap the executed
        :meth:`~repro.core.executor.PipelinedExecutor.execute_batch` performs
        with its loader/compute thread pair.  Loads still serialise on the
        device, so a batch of stall-dominated requests stays device-bound;
        a request alone in its batch pays its stalls in full.
    decode_calibration:
        Optional :class:`~repro.serving.costmodel.OnlineCostCalibration`.
        When it carries measured decode observations (the serving loop
        measures every co-batched :class:`~repro.model.tensors.DecodeSession`
        step, tagged with its batch width), an iteration's decode work is
        priced as **one batched step at the iteration's width**:
        ``decode_step_time(W)`` for W concurrently decoding requests,
        instead of the sum of W per-request slices.  That is exactly what
        the engine executes — one ``DecodeSession.step()`` per scheduler
        iteration — so the measured decode amortisation (a step costs far
        less than W × a single-request step) shows up in sweep-level TTFT
        and throughput.  Without a decode-ready calibration each request
        contributes its analytic ``decode_time / steps`` slice, serially.
        Apply the same calibration across all sweep cells so scheme
        comparisons stay apples-to-apples.
    admission_control:
        SLO-aware admission.  A deadline-carrying request whose predicted
        first-token time (:func:`~repro.serving.costmodel.
        predict_first_token_time`: queue wait already accrued + the running
        batch's prefill backlog + its own chunked prefill, each iteration
        paying one co-batched decode step) already misses its ``deadline_s``
        is *rejected* at admission instead of burning GPU time on a
        guaranteed SLO miss — its timing record carries ``rejected=True``
        and occupies no server time.  Best-effort requests (no deadline)
        are never rejected.
    preemption:
        Iteration-level decode preemption.  When a deadline-carrying
        prefill does not fit the token budget, decode-phase requests of
        equal or lower priority are *paused* (their batch slots freed, the
        decode state kept — the engine analogue is
        :meth:`~repro.model.tensors.DecodeSession.extract` then ``leave``,
        re-``join`` on resume) to make room.  Paused requests re-join FIFO
        ahead of new admissions as soon as the budget allows, so they are
        never starved; ``max_preemptions`` bounds how often any one request
        may be paused, beyond which it is immune.
    """

    n_servers: int = 1
    max_batch_tokens: int = 16_384
    prefill_chunk_tokens: int = 512
    overlap_loads: bool = False
    decode_calibration: OnlineCostCalibration | None = None
    admission_control: bool = False
    preemption: bool = False
    max_preemptions: int = 2

    def __post_init__(self) -> None:
        if self.n_servers < 1:
            raise ValueError("n_servers must be >= 1")
        if self.max_batch_tokens < 1:
            raise ValueError("max_batch_tokens must be >= 1")
        if self.prefill_chunk_tokens < 1:
            raise ValueError("prefill_chunk_tokens must be >= 1")
        if self.max_preemptions < 0:
            raise ValueError("max_preemptions must be >= 0")

    # ------------------------------------------------------------------
    def schedule(
        self,
        requests: list[GenerationRequest],
        results: list[EngineResult],
    ) -> list[RequestTiming]:
        _check_lengths(requests, results)
        order = sorted(range(len(requests)), key=lambda i: requests[i].arrival_time)
        pending: deque[int] = deque(order)
        clocks = [0.0] * self.n_servers
        active: list[list[_RunningRequest]] = [[] for _ in range(self.n_servers)]
        paused: list[deque[_RunningRequest]] = [deque() for _ in range(self.n_servers)]
        timing_by_index: dict[int, RequestTiming] = {}

        while pending or any(active) or any(paused):
            server = self._next_server(pending, requests, clocks, active, paused)
            clock = clocks[server]
            batch = active[server]

            self._admit(
                server, pending, requests, results, clocks, active, paused,
                timing_by_index,
            )
            if not batch:
                # Nothing admitted: fast-forward to the next arrival (the
                # whole queue may have been rejected, leaving no arrival).
                if pending:
                    clocks[server] = max(clock, requests[pending[0]].arrival_time)
                continue

            clocks[server] = self._run_iteration(batch, clock, timing_by_index)

        return [timing_by_index[i] for i in range(len(requests))]

    # ------------------------------------------------------------------
    def _next_server(
        self,
        pending: deque[int],
        requests: list[GenerationRequest],
        clocks: list[float],
        active: list[list[_RunningRequest]],
        paused: list[deque[_RunningRequest]],
    ) -> int:
        """Server whose next iteration would start earliest."""
        next_arrival = (
            requests[pending[0]].arrival_time if pending else float("inf")
        )

        def next_event(server: int) -> float:
            if active[server] or paused[server]:
                return clocks[server]
            return max(clocks[server], next_arrival)

        return min(range(self.n_servers), key=next_event)

    def _admit(
        self,
        server: int,
        pending: deque[int],
        requests: list[GenerationRequest],
        results: list[EngineResult],
        clocks: list[float],
        active: list[list[_RunningRequest]],
        paused: list[deque[_RunningRequest]],
        timing_by_index: dict[int, RequestTiming],
    ) -> None:
        """Admit arrived requests into *server*'s batch within the budget.

        Preempted decodes resume first (FIFO, ahead of any new admission) so
        they cannot be starved; new arrivals then pass the optional
        SLO-admission check and may, when they carry a deadline and do not
        fit, preempt decode-phase requests to claim their tokens.
        """
        clock = clocks[server]
        batch = active[server]
        waiting = paused[server]
        batch_tokens = sum(r.request.n_total_tokens for r in batch)
        while waiting and (
            not batch
            or batch_tokens + waiting[0].request.n_total_tokens
            <= self.max_batch_tokens
        ):
            resumed = waiting.popleft()
            batch.append(resumed)
            batch_tokens += resumed.request.n_total_tokens
        while pending and requests[pending[0]].arrival_time <= clock:
            candidate = requests[pending[0]]
            result = results[pending[0]]
            if (
                self.admission_control
                and candidate.deadline_s is not None
                and not self._admission_check(candidate, result, clock, batch, waiting)
            ):
                index = pending.popleft()
                timing_by_index[index] = RequestTiming(
                    request_id=candidate.request_id,
                    arrival_time=candidate.arrival_time,
                    start_time=clock,
                    first_token_time=clock,
                    completion_time=clock,
                    rejected=True,
                    deadline_s=candidate.deadline_s,
                )
                continue
            fits = batch_tokens + candidate.n_total_tokens <= self.max_batch_tokens
            if not fits and self.preemption and candidate.deadline_s is not None:
                batch_tokens -= self._preempt_for(candidate, batch, waiting, batch_tokens)
                fits = batch_tokens + candidate.n_total_tokens <= self.max_batch_tokens
            if not fits and batch:
                break
            index = pending.popleft()
            batch.append(self._make_running(index, candidate, result, clock))
            batch_tokens += candidate.n_total_tokens

    def _admission_check(
        self,
        candidate: GenerationRequest,
        result: EngineResult,
        clock: float,
        batch: list[_RunningRequest],
        waiting: deque[_RunningRequest] | None = None,
    ) -> bool:
        """Would *candidate*'s first token plausibly arrive within its SLO?

        *waiting* is the server's paused deque.  Preempted decodes resume
        FIFO **ahead of** new admissions, so their remaining decode backlog
        delays the candidate exactly like the active batch's does — ignoring
        them (the pre-fix behaviour) made predictions optimistic whenever a
        preemption had just happened, admitting requests that were already
        guaranteed to miss their SLO.
        """
        paused = list(waiting) if waiting else []
        decoding = [
            r
            for r in [*batch, *paused]
            if r.remaining_prefill <= 0.0 and r.decode_steps_left > 0
        ]
        n_prefill_iters = max(
            1, -(-candidate.n_total_tokens // self.prefill_chunk_tokens)
        )
        analytic_step = (
            sum(r.decode_step for r in decoding) / len(decoding) if decoding else 0.0
        )
        predicted = predict_first_token_time(
            ttft_service=result.ttft_service,
            n_prefill_iters=n_prefill_iters,
            prefill_backlog_s=sum(r.remaining_prefill for r in [*batch, *paused]),
            n_decoding=len(decoding),
            calibration=self.decode_calibration,
            analytic_decode_step_s=analytic_step,
        )
        waited = clock - candidate.arrival_time
        return waited + predicted <= candidate.deadline_s

    def _preempt_for(
        self,
        candidate: GenerationRequest,
        batch: list[_RunningRequest],
        waiting: deque[_RunningRequest],
        batch_tokens: int,
    ) -> int:
        """Pause decode-phase victims to fit *candidate*; returns freed tokens.

        Victims must be decode-phase (their prefill — and first token — is
        done, so pausing them costs throughput, never a TTFT SLO), of equal
        or lower priority, and under the ``max_preemptions`` cap.  Lowest
        priority is paused first; no more victims are taken once the
        candidate fits.
        """
        needed = batch_tokens + candidate.n_total_tokens - self.max_batch_tokens
        victims = sorted(
            (
                r
                for r in batch
                if r.remaining_prefill <= 0.0
                and r.decode_steps_left > 0
                and r.request.priority <= candidate.priority
                and r.n_preemptions < self.max_preemptions
            ),
            key=lambda r: (r.request.priority, -r.start_time),
        )
        freed = 0
        for victim in victims:
            if freed >= needed:
                break
            batch.remove(victim)
            victim.n_preemptions += 1
            waiting.append(victim)
            freed += victim.request.n_total_tokens
        return freed

    def _make_running(
        self,
        index: int,
        request: GenerationRequest,
        result: EngineResult,
        clock: float,
    ) -> _RunningRequest:
        n_tokens = request.n_total_tokens
        n_prefill_iters = max(1, -(-n_tokens // self.prefill_chunk_tokens))
        decode_steps = max(0, request.n_output_tokens - 1)
        # The analytic per-request slice; a decode-ready calibration instead
        # prices the whole iteration width-aware in _run_iteration.
        decode_step = result.decode_time / decode_steps if decode_steps else 0.0
        gpu_fraction = 1.0
        if result.ttft_service > 0.0:
            gpu_fraction = 1.0 - min(result.stall_time, result.ttft_service) / result.ttft_service
        return _RunningRequest(
            index=index,
            request=request,
            result=result,
            start_time=clock,
            remaining_prefill=result.ttft_service,
            prefill_slice=result.ttft_service / n_prefill_iters,
            decode_step=decode_step,
            decode_steps_left=decode_steps,
            gpu_fraction=gpu_fraction,
        )

    def _run_iteration(
        self,
        batch: list[_RunningRequest],
        clock: float,
        timing_by_index: dict[int, RequestTiming],
    ) -> float:
        """Run one batched iteration; returns the server clock afterwards.

        The GPU is serial within an iteration: every running request gets one
        work slice (a prefill chunk or one decode step) and the iteration
        lasts the sum of the slices.  Completions are recorded at iteration
        end, which keeps ``first_token_time >= start_time >= arrival_time``.

        With ``overlap_loads`` and at least two working requests, the
        iteration's KV-loading stalls (serial on the storage device) run
        concurrently with its GPU slices (serial on the GPU) and the
        iteration lasts ``max(gpu_work, load_work)`` — shorter than their
        sum whenever both streams have work, but never below the pure-GPU
        (or pure-device) lower bound.

        The W decoding requests of an iteration are co-batched: with a
        decode-ready calibration their joint slice is one measured batched
        step at width W (``decode_step_time(W)``), mirroring the engine's
        one ``DecodeSession.step()`` per iteration; without one, each
        contributes its analytic per-request slice serially.
        """
        gpu_work = 0.0
        load_work = 0.0
        n_working = 0
        decode_work = 0.0
        n_decoding = 0
        for running in batch:
            if running.remaining_prefill > 0.0:
                slice_ = min(running.remaining_prefill, running.prefill_slice)
                gpu_work += slice_ * running.gpu_fraction
                load_work += slice_ * (1.0 - running.gpu_fraction)
                n_working += 1
            elif running.decode_steps_left > 0:
                decode_work += running.decode_step
                n_decoding += 1
                n_working += 1
        if n_decoding:
            if self.decode_calibration is not None and self.decode_calibration.decode_ready:
                decode_work = self.decode_calibration.decode_step_time(n_decoding)
            gpu_work += decode_work
        if self.overlap_loads and n_working > 1:
            duration = max(gpu_work, load_work)
        else:
            duration = gpu_work + load_work
        iteration_end = clock + duration

        finished: list[_RunningRequest] = []
        for running in batch:
            if running.remaining_prefill > 0.0:
                slice_ = min(running.remaining_prefill, running.prefill_slice)
                running.remaining_prefill -= slice_
                if running.remaining_prefill <= 1e-12:
                    running.remaining_prefill = 0.0
                    running.first_token_time = iteration_end
                    if running.decode_steps_left == 0:
                        finished.append(running)
            elif running.decode_steps_left > 0:
                running.decode_steps_left -= 1
                if running.decode_steps_left == 0:
                    finished.append(running)

        for running in finished:
            batch.remove(running)
            first_token = (
                running.first_token_time
                if running.first_token_time is not None
                else iteration_end
            )
            timing_by_index[running.index] = RequestTiming(
                request_id=running.request.request_id,
                arrival_time=running.request.arrival_time,
                start_time=running.start_time,
                first_token_time=first_token,
                completion_time=iteration_end,
                gpu_time=running.result.gpu_time,
                n_preemptions=running.n_preemptions,
                deadline_s=running.request.deadline_s,
            )
        return iteration_end
