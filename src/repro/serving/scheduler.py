"""First-come-first-served scheduling of requests onto GPU servers."""

from __future__ import annotations

from dataclasses import dataclass

from repro.serving.engine import EngineResult
from repro.serving.request import GenerationRequest, RequestTiming


@dataclass
class FCFSScheduler:
    """FCFS scheduler over ``n_servers`` identical GPU servers.

    The GPU is occupied for ``gpu_time + decode_time`` of each request; the
    first token is emitted ``ttft_service`` after the request starts (KV
    loading from storage overlaps with GPU work of the same request but the
    GPU is not free for other requests during its own compute).
    """

    n_servers: int = 1

    def __post_init__(self) -> None:
        if self.n_servers < 1:
            raise ValueError("n_servers must be >= 1")

    def schedule(
        self,
        requests: list[GenerationRequest],
        results: list[EngineResult],
    ) -> list[RequestTiming]:
        """Assign start times in arrival order; returns per-request timings."""
        if len(requests) != len(results):
            raise ValueError("requests and results must have the same length")
        order = sorted(range(len(requests)), key=lambda i: requests[i].arrival_time)
        server_free = [0.0] * self.n_servers
        timings: list[RequestTiming] = [None] * len(requests)  # type: ignore[list-item]
        for index in order:
            request = requests[index]
            result = results[index]
            server = min(range(self.n_servers), key=lambda s: server_free[s])
            start = max(request.arrival_time, server_free[server])
            occupancy = max(result.ttft_service, result.gpu_time) + result.decode_time
            first_token = start + result.ttft_service
            completion = start + occupancy
            server_free[server] = completion
            timings[index] = RequestTiming(
                request_id=request.request_id,
                arrival_time=request.arrival_time,
                start_time=start,
                first_token_time=first_token,
                completion_time=completion,
                gpu_time=result.gpu_time,
            )
        return timings
