"""Request abstractions used by the serving simulator."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class GenerationRequest:
    """One RAG generation request, described by its token budget.

    Attributes
    ----------
    request_id:
        Unique identifier.
    n_chunks / chunk_tokens:
        The retrieved context layout (``n_chunks`` chunks of ``chunk_tokens``
        tokens each).
    n_suffix_tokens:
        Tokens of the user question appended after the chunks.
    n_output_tokens:
        Tokens to decode for the answer.
    arrival_time:
        Arrival timestamp in seconds (set by the load generator).
    cached_chunk_fraction:
        Fraction of the context chunks whose KV cache is already stored
        (cache hits).  Misses must be prefilled from scratch.
    prefix_cached_fraction:
        Fraction of the context usable by *prefix* caching (only the leading
        chunk(s) shared with previous requests).
    slow_tier_fraction:
        Of the *cached* context, the fraction resident in the slow tier of a
        tiered KV store (and read at that tier's rate) rather than the fast
        (RAM) tier.  ``None`` means the store is untiered and all cached KV
        reads are priced at the engine's single storage device, as before.
    deadline_s:
        TTFT service-level objective, in seconds *relative to arrival*: the
        request wants its first token within ``arrival_time + deadline_s``.
        ``None`` means best-effort (no SLO; never rejected by admission
        control and never the trigger of a preemption).
    priority:
        Scheduling priority; higher values matter more.  A deadline-carrying
        prefill may only preempt decodes of equal or lower priority.
    """

    request_id: int
    n_chunks: int = 6
    chunk_tokens: int = 512
    n_suffix_tokens: int = 32
    n_output_tokens: int = 32
    arrival_time: float = 0.0
    cached_chunk_fraction: float = 1.0
    prefix_cached_fraction: float = 0.17
    slow_tier_fraction: float | None = None
    deadline_s: float | None = None
    priority: int = 0

    def __post_init__(self) -> None:
        if self.n_chunks < 1 or self.chunk_tokens < 1:
            raise ValueError("requests need at least one chunk of at least one token")
        if not 0.0 <= self.cached_chunk_fraction <= 1.0:
            raise ValueError("cached_chunk_fraction must be in [0, 1]")
        if not 0.0 <= self.prefix_cached_fraction <= 1.0:
            raise ValueError("prefix_cached_fraction must be in [0, 1]")
        if self.slow_tier_fraction is not None and not 0.0 <= self.slow_tier_fraction <= 1.0:
            raise ValueError("slow_tier_fraction must be in [0, 1] when set")
        if self.deadline_s is not None and self.deadline_s <= 0.0:
            raise ValueError("deadline_s must be positive when set")

    @property
    def n_context_tokens(self) -> int:
        return self.n_chunks * self.chunk_tokens

    @property
    def n_total_tokens(self) -> int:
        return self.n_context_tokens + self.n_suffix_tokens


@dataclass
class RequestTiming:
    """Lifecycle timestamps of one request inside the simulator.

    ``rejected`` marks requests the admission controller turned away — they
    occupy no server time and their timestamps all equal the rejection
    instant.  ``n_preemptions`` counts how often the request's decode was
    paused to make room for an at-risk prefill.  ``deadline_s`` echoes the
    request's TTFT SLO so :attr:`met_slo` (and goodput aggregation) needs no
    join back to the request list.
    """

    request_id: int
    arrival_time: float
    start_time: float = 0.0
    first_token_time: float = 0.0
    completion_time: float = 0.0
    gpu_time: float = field(default=0.0)
    rejected: bool = False
    n_preemptions: int = 0
    deadline_s: float | None = None

    @property
    def queueing_delay(self) -> float:
        return self.start_time - self.arrival_time

    @property
    def ttft(self) -> float:
        """Time to first token, measured from arrival (includes queueing)."""
        return self.first_token_time - self.arrival_time

    @property
    def latency(self) -> float:
        return self.completion_time - self.arrival_time

    @property
    def met_slo(self) -> bool:
        """Served, and the first token arrived within the deadline (if any).

        Rejected requests never meet the SLO; best-effort requests (no
        deadline) count as meeting it whenever they were served.
        """
        if self.rejected:
            return False
        return self.deadline_s is None or self.ttft <= self.deadline_s
