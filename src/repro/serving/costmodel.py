"""Analytical serving cost model.

Estimates prefill, decode and KV-loading delays for the paper's model
architectures without executing them.  The model is calibrated against the
figures quoted in the paper:

* prefill of a ~4K-token context takes seconds on 34B/70B-class models
  (paper §2: ~3 s for a 34B model, ~6 s for 70B on one A40);
* recomputing 15 % of a 4K context on Llama-7B takes ~3 ms per layer while
  loading one layer's KV from an NVMe SSD takes ~16 ms (paper §5);
* KV cache size per token follows directly from the architecture
  (2 x layers x kv_heads x head_dim x dtype bytes).

Only *relative* behaviour matters for the reproduction (who wins, by what
factor, where the crossovers are); the calibration keeps absolute numbers in
the right ballpark so the figures read like the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.pipeline import PipelineTrace, pipelined_time, sequential_time
from repro.kvstore.device import StorageDevice
from repro.kvstore.precision import PrecisionPolicy
from repro.model.config import ModelConfig


@dataclass
class OnlineCostCalibration:
    """EWMA of *measured* per-layer load/compute rates from executor traces.

    Every pipelined :class:`~repro.core.executor.PipelinedExecutor` run emits
    a measured :class:`~repro.core.pipeline.PipelineTrace`; feeding those
    traces here turns the static analytic constants of
    :class:`ServingCostModel` into an online estimate grounded in observed
    wall-clock:

    * ``load_s_per_token`` — seconds one layer's KV load takes per context
      token (simulated transfer + decode + RoPE re-align, measured);
    * ``compute_s_per_token`` — seconds one layer's selective recompute takes
      per *recomputed* token (layer 0's full recompute is folded in at its
      own token count);
    * ``decode_s_per_step`` — seconds one measured decode iteration takes,
      averaged across all observed batch widths (fed by
      :meth:`observe_decode` from the serving loop's measured
      :class:`~repro.model.tensors.DecodeSession` steps);
    * ``decode_s_per_step_by_width`` — the same per-step delay bucketed by
      the *batch width* of the observed step (requests decoded per
      iteration).  One batched step costs far less than width × a
      single-request step — the point of co-batched decode — so the
      width-aware :meth:`decode_step_time` is what lets the scheduler pace
      an iteration of W decoding requests at the cost of *one* batched step
      instead of W independent ones.

    ``alpha`` is the EWMA weight of the newest observation; the first
    observation seeds the averages directly.
    """

    alpha: float = 0.25
    load_s_per_token: float | None = None
    compute_s_per_token: float | None = None
    n_observations: int = 0
    decode_s_per_step: float | None = None
    n_decode_observations: int = 0
    decode_s_per_step_by_width: dict[int, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")

    @property
    def ready(self) -> bool:
        """True once at least one trace has been observed."""
        return self.load_s_per_token is not None and self.compute_s_per_token is not None

    def observe(
        self,
        trace: PipelineTrace,
        n_context_tokens: int,
        recompute_counts: list[int],
    ) -> None:
        """Fold one measured trace into the running per-token averages."""
        if n_context_tokens <= 0 or trace.load_end.size == 0:
            return
        load_per_token = float(
            np.mean(trace.load_end - trace.load_start) / n_context_tokens
        )
        compute_durations = trace.compute_end - trace.compute_start
        counts = np.asarray(recompute_counts, dtype=np.float64)
        valid = counts > 0
        if not valid.any():
            return
        compute_per_token = float(
            np.mean(compute_durations[valid] / counts[valid])
        )
        self.load_s_per_token = self._ewma(self.load_s_per_token, load_per_token)
        self.compute_s_per_token = self._ewma(self.compute_s_per_token, compute_per_token)
        self.n_observations += 1

    @property
    def decode_ready(self) -> bool:
        """True once at least one measured decode step has been observed."""
        return self.decode_s_per_step is not None

    def observe_decode(self, step_seconds: float, batch_width: int = 1) -> None:
        """Fold one measured decode-step wall-clock into the running averages.

        One observation is the wall-clock of one decode *iteration* — a
        whole :meth:`~repro.model.tensors.DecodeSession` step costs roughly
        one step regardless of batch size (that is the point of batching),
        so batched steps are observed whole, never divided per request.
        ``batch_width`` is the number of requests that step decoded; the
        sample updates both the width-agnostic average and its per-width
        bucket.
        """
        if step_seconds < 0.0:
            raise ValueError("step_seconds must be non-negative")
        if batch_width < 1:
            raise ValueError("batch_width must be >= 1")
        self.decode_s_per_step = self._ewma(self.decode_s_per_step, step_seconds)
        self.decode_s_per_step_by_width[batch_width] = self._ewma(
            self.decode_s_per_step_by_width.get(batch_width), step_seconds
        )
        self.n_decode_observations += 1

    def decode_step_time(self, batch_width: int | None = None) -> float:
        """Measured decode-iteration delay (one token per request per step).

        With ``batch_width`` the estimate is width-aware: an exact bucket is
        returned as-is and a width between two observed buckets interpolates
        linearly.  Below the narrowest bucket the estimate clamps to it (a
        slight overestimate, the safe direction).  Beyond the widest bucket
        it *extrapolates* the slope of the two widest buckets (floored at
        flat): per-step cost grows with width — attention reads more rows —
        so clamping there would price a 30-wide scheduler iteration at the
        probe's 3-wide step cost and make measured pacing systematically
        optimistic.  Without ``batch_width`` the width-agnostic EWMA is
        returned (the pre-bucketing behaviour).
        """
        if self.decode_s_per_step is None:
            raise RuntimeError("calibration has no decode observations yet")
        if batch_width is None or not self.decode_s_per_step_by_width:
            return self.decode_s_per_step
        if batch_width < 1:
            raise ValueError("batch_width must be >= 1")
        buckets = self.decode_s_per_step_by_width
        if batch_width in buckets:
            return buckets[batch_width]
        widths = sorted(buckets)
        if batch_width <= widths[0]:
            return buckets[widths[0]]
        if batch_width >= widths[-1]:
            if len(widths) < 2:
                return buckets[widths[-1]]
            lo, hi = widths[-2], widths[-1]
            slope = (buckets[hi] - buckets[lo]) / (hi - lo)
            return buckets[hi] + max(0.0, slope) * (batch_width - hi)
        hi_index = next(i for i, w in enumerate(widths) if w > batch_width)
        lo, hi = widths[hi_index - 1], widths[hi_index]
        fraction = (batch_width - lo) / (hi - lo)
        return (1.0 - fraction) * buckets[lo] + fraction * buckets[hi]

    def _ewma(self, current: float | None, sample: float) -> float:
        if current is None:
            return sample
        return (1.0 - self.alpha) * current + self.alpha * sample

    def layer_load_time(self, n_context_tokens: int) -> float:
        """Measured per-layer KV load delay for *n_context_tokens*."""
        if self.load_s_per_token is None:
            raise RuntimeError("calibration has no observations yet")
        return self.load_s_per_token * max(0, n_context_tokens)

    def layer_compute_time(self, n_recomputed_tokens: float) -> float:
        """Measured per-layer recompute delay for *n_recomputed_tokens*."""
        if self.compute_s_per_token is None:
            raise RuntimeError("calibration has no observations yet")
        return self.compute_s_per_token * max(0.0, n_recomputed_tokens)

    def as_dict(self) -> dict[str, float | int | None]:
        """JSON-friendly snapshot for bench reports."""
        return {
            "alpha": self.alpha,
            "load_s_per_token": self.load_s_per_token,
            "compute_s_per_token": self.compute_s_per_token,
            "n_observations": self.n_observations,
            "decode_s_per_step": self.decode_s_per_step,
            "n_decode_observations": self.n_decode_observations,
            "decode_s_per_step_by_width": {
                str(width): value
                for width, value in sorted(self.decode_s_per_step_by_width.items())
            },
        }


def predict_first_token_time(
    ttft_service: float,
    n_prefill_iters: int = 1,
    prefill_backlog_s: float = 0.0,
    n_decoding: int = 0,
    calibration: OnlineCostCalibration | None = None,
    analytic_decode_step_s: float = 0.0,
) -> float:
    """Predicted service seconds until a newly admitted request's first token
    under iteration-level continuous batching.

    The newcomer's chunked prefill spans ``n_prefill_iters`` iterations, each
    of which also runs one co-batched decode step for the ``n_decoding``
    requests already generating — priced width-aware via
    :meth:`OnlineCostCalibration.decode_step_time` when *calibration* carries
    measured decode observations, else as ``n_decoding`` serial analytic
    slices of ``analytic_decode_step_s`` each.  The running batch's remaining
    prefill backlog (``prefill_backlog_s``) serialises on the GPU ahead of
    the newcomer's own slices.  The admission controller adds the time the
    request already waited in the arrival queue on top of this estimate and
    compares the sum against the request's deadline.
    """
    if n_prefill_iters < 1:
        raise ValueError("n_prefill_iters must be >= 1")
    step = 0.0
    if n_decoding > 0:
        if calibration is not None and calibration.decode_ready:
            step = calibration.decode_step_time(n_decoding)
        else:
            step = analytic_decode_step_s * n_decoding
    return prefill_backlog_s + ttft_service + n_prefill_iters * step


@dataclass(frozen=True)
class GPUSpec:
    """Compute/bandwidth characteristics of one GPU (A40-class by default)."""

    name: str = "a40"
    flops: float = 1.0e14            # sustained FP16 FLOP/s during prefill
    hbm_bandwidth: float = 0.6e12    # bytes/s, bounds memory-bound decode
    overhead_s: float = 0.01         # per-request fixed overhead (kernel launch etc.)


@dataclass
class ServingCostModel:
    """Delay estimators for one model served on ``n_gpus`` GPUs.

    When a :class:`OnlineCostCalibration` is attached (and has observed at
    least one measured executor trace), :meth:`ttft_cacheblend_measured`
    estimates CacheBlend's pipeline delay from the observed per-layer
    load/compute rates instead of the static analytic constants.

    ``precision`` (a :class:`~repro.kvstore.precision.PrecisionPolicy` or a
    preset name) overrides the architecture's ``dtype_bytes`` for every KV
    bandwidth term — loading delays and decode memory traffic are priced at
    the policy's mean bytes per element — so the cost model agrees with the
    store that actually holds the bytes.  ``None`` keeps the legacy
    behaviour (the model preset's scalar ``dtype_bytes``).
    """

    model: ModelConfig
    gpu: GPUSpec = field(default_factory=GPUSpec)
    n_gpus: int = 1
    calibration: OnlineCostCalibration | None = None
    precision: PrecisionPolicy | str | None = None

    def __post_init__(self) -> None:
        if self.n_gpus < 1:
            raise ValueError("n_gpus must be >= 1")
        if self.precision is not None:
            self.precision = PrecisionPolicy.get(self.precision)

    # ------------------------------------------------------------------
    # Prefill / recompute
    # ------------------------------------------------------------------
    @property
    def _effective_flops(self) -> float:
        return self.gpu.flops * self.n_gpus

    def prefill_time(self, n_tokens: int) -> float:
        """Full-prefill delay (the full-KV-recompute TTFT, minus decoding)."""
        if n_tokens <= 0:
            return 0.0
        return self.gpu.overhead_s + self.model.prefill_flops(n_tokens) / self._effective_flops

    def prefill_layer_time(self, n_tokens: int) -> float:
        """Per-layer share of the full prefill delay."""
        if n_tokens <= 0:
            return 0.0
        return (self.prefill_time(n_tokens) - self.gpu.overhead_s) / self.model.n_layers

    def recompute_layer_time(self, n_tokens: int, ratio: float) -> float:
        """Per-layer selective-recompute delay at recompute ratio *ratio*.

        The paper models this as ``ratio x`` the per-layer prefill cost
        (footnote 5): only the selected tokens' projections, attention rows
        and MLP are computed.
        """
        if not 0.0 <= ratio <= 1.0:
            raise ValueError("ratio must be in [0, 1]")
        return ratio * self.prefill_layer_time(n_tokens)

    def recompute_time(self, n_tokens: int, ratio: float) -> float:
        """Total selective recompute delay across layers."""
        return self.model.n_layers * self.recompute_layer_time(n_tokens, ratio)

    def prefill_time_with_prefix(self, n_tokens: int, n_prefix: int) -> float:
        """Prefill delay when the KV cache of the first *n_prefix* tokens is reused.

        Only the suffix tokens are projected through the linear layers, but
        their attention still spans the whole context.
        """
        if n_prefix < 0 or n_prefix > n_tokens:
            raise ValueError("n_prefix must be within [0, n_tokens]")
        n_suffix = n_tokens - n_prefix
        if n_suffix == 0:
            return self.gpu.overhead_s
        linear = 2.0 * self.model.approx_parameters() * n_suffix
        attention = 4.0 * self.model.n_layers * float(n_suffix) * n_tokens * self.model.hidden_size
        return self.gpu.overhead_s + (linear + attention) / self._effective_flops

    # ------------------------------------------------------------------
    # Decode
    # ------------------------------------------------------------------
    def decode_time_per_token(self, batch_size: int = 1, context_tokens: int = 0) -> float:
        """Per-token decode delay for a batch (memory- or compute-bound)."""
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        params = self.model.approx_parameters()
        compute = 2.0 * params * batch_size / self._effective_flops
        weight_bytes = params * self.model.dtype_bytes
        kv_bytes = self.kv_bytes(context_tokens) * batch_size
        memory = (weight_bytes + kv_bytes) / (self.gpu.hbm_bandwidth * self.n_gpus)
        return max(compute, memory)

    def decode_time(
        self, n_new_tokens: int, batch_size: int = 1, context_tokens: int = 0
    ) -> float:
        """Delay of generating *n_new_tokens* tokens, integrating KV growth.

        Each generated token appends to the KV cache, so token ``k`` decodes
        against ``context_tokens + k`` of context.  Pricing the whole
        generation at the *initial* context (the former behaviour)
        underestimates long decodes; this sums the per-token delay over the
        growing context in closed form: tokens below the compute/memory
        crossover cost the flat compute-bound delay, the rest the linearly
        growing memory-bound one (an arithmetic series).
        """
        if n_new_tokens <= 0:
            return 0.0
        params = self.model.approx_parameters()
        compute = 2.0 * params * batch_size / self._effective_flops
        bandwidth = self.gpu.hbm_bandwidth * self.n_gpus
        weight_bytes = params * self.model.dtype_bytes
        kv_per_token = self.kv_bytes_per_token() * batch_size
        first, last = context_tokens, context_tokens + n_new_tokens - 1
        if (weight_bytes + kv_per_token * last) / bandwidth <= compute:
            return n_new_tokens * compute  # compute-bound for the whole decode
        if kv_per_token > 0:
            crossover = int(np.ceil((compute * bandwidth - weight_bytes) / kv_per_token))
            crossover = min(max(crossover, first), last + 1)
        else:
            crossover = first  # memory-bound throughout (weights alone dominate)
        n_compute_bound = crossover - first
        n_memory_bound = n_new_tokens - n_compute_bound
        memory_total = (
            n_memory_bound * weight_bytes
            + kv_per_token * (crossover + last) * n_memory_bound / 2.0
        ) / bandwidth
        return n_compute_bound * compute + memory_total

    # ------------------------------------------------------------------
    # KV loading
    # ------------------------------------------------------------------
    def kv_bytes_per_token_per_layer(self) -> float:
        """Stored K+V bytes per token per layer at the effective precision."""
        if self.precision is not None:
            return self.precision.kv_bytes_per_token_per_layer(
                self.model.n_kv_heads, self.model.head_dim, self.model.n_layers
            )
        return float(self.model.kv_bytes_per_token_per_layer())

    def kv_bytes_per_token(self) -> float:
        """Stored KV bytes per token across layers at the effective precision."""
        return self.model.n_layers * self.kv_bytes_per_token_per_layer()

    def kv_bytes(self, n_tokens: int) -> int:
        return int(round(n_tokens * self.kv_bytes_per_token()))

    def kv_load_time_per_layer(self, n_tokens: int, device: StorageDevice) -> float:
        """Delay of loading one layer's KV for *n_tokens* from *device*."""
        layer_bytes = n_tokens * self.kv_bytes_per_token_per_layer()
        return device.read_time(layer_bytes)

    def kv_load_time(self, n_tokens: int, device: StorageDevice) -> float:
        """Delay of loading the whole KV cache sequentially from *device*."""
        return self.model.n_layers * self.kv_load_time_per_layer(n_tokens, device)

    def kv_store_cost(
        self, n_tokens: int, device: StorageDevice, duration_months: float = 1.0
    ) -> float:
        """Dollar cost of keeping the KV cache of *n_tokens* on *device*."""
        return device.storage_cost(self.kv_bytes(n_tokens), duration_months)

    # ------------------------------------------------------------------
    # End-to-end TTFT estimates per serving scheme
    # ------------------------------------------------------------------
    def ttft_full_recompute(self, n_tokens: int) -> float:
        return self.prefill_time(n_tokens)

    def ttft_prefix_caching(self, n_tokens: int, n_prefix: int) -> float:
        """Prefix caching TTFT with the paper's idealised zero loading delay."""
        return self.prefill_time_with_prefix(n_tokens, n_prefix)

    def _tiered_layer_load(
        self,
        n_tokens: int,
        device: StorageDevice,
        n_fast_tokens: int,
        fast_device: StorageDevice | None,
    ) -> float:
        """Per-layer load delay of *n_tokens*, a part resident on a fast tier.

        With ``n_fast_tokens == 0`` (or no fast device) this is exactly
        ``kv_load_time_per_layer(n_tokens, device)`` — the untiered pricing.
        """
        if n_fast_tokens <= 0 or fast_device is None:
            return self.kv_load_time_per_layer(n_tokens, device)
        n_fast = min(n_fast_tokens, n_tokens)
        return self.kv_load_time_per_layer(
            n_tokens - n_fast, device
        ) + self.kv_load_time_per_layer(n_fast, fast_device)

    def ttft_full_reuse(
        self,
        n_tokens: int,
        n_suffix: int,
        device: StorageDevice,
        pipelined: bool = True,
        n_fast_tokens: int = 0,
        fast_device: StorageDevice | None = None,
    ) -> float:
        """Full KV reuse: load everything, recompute only the new suffix.

        ``n_fast_tokens``/``fast_device`` split the loaded context across a
        tiered store: that many tokens read at the fast tier's rate, the
        rest at *device* (the slow tier).
        """
        load = [
            self._tiered_layer_load(n_tokens, device, n_fast_tokens, fast_device)
        ] * self.model.n_layers
        suffix_fraction = n_suffix / n_tokens if n_tokens else 0.0
        compute = [
            self.recompute_layer_time(n_tokens, suffix_fraction)
        ] * self.model.n_layers
        total = pipelined_time(load, compute) if pipelined else sequential_time(load, compute)
        return self.gpu.overhead_s + total

    def ttft_cacheblend(
        self,
        n_tokens: int,
        n_suffix: int,
        ratio: float,
        device: StorageDevice,
        pipelined: bool = True,
        n_fast_tokens: int = 0,
        fast_device: StorageDevice | None = None,
    ) -> float:
        """CacheBlend TTFT: per-layer max of KV loading and selective recompute.

        ``n_fast_tokens``/``fast_device`` price a tiered store: that many of
        the loaded context tokens read at the fast tier's rate, the rest at
        *device*.  The defaults reproduce the untiered single-device cost.
        """
        if n_tokens <= 0:
            return 0.0
        n_context = n_tokens - n_suffix
        recomputed_fraction = (ratio * n_context + n_suffix) / n_tokens
        load = [
            self._tiered_layer_load(n_context, device, n_fast_tokens, fast_device)
        ] * self.model.n_layers
        compute = [
            self.recompute_layer_time(n_tokens, recomputed_fraction)
        ] * self.model.n_layers
        # Layer 0 is fully recomputed to seed HKVD selection.
        compute[0] = self.prefill_layer_time(n_tokens)
        total = pipelined_time(load, compute) if pipelined else sequential_time(load, compute)
        return self.gpu.overhead_s + total

    def ttft_cacheblend_measured(
        self,
        n_tokens: int,
        n_suffix: int,
        ratio: float,
        pipelined: bool = True,
    ) -> float:
        """CacheBlend pipeline delay from *measured* per-layer rates.

        Same per-layer schedule as :meth:`ttft_cacheblend`, but load and
        compute delays come from the attached :class:`OnlineCostCalibration`
        (EWMA of executor-trace observations) instead of the analytic
        device/FLOP constants.  The value is wall-clock-grounded on the
        machine the traces were measured on — it covers the fused pipeline
        only (no GPU launch overhead, no decode step), so compare it against
        the pipeline portion of the analytic estimate, not the end-to-end
        TTFT.  Raises ``RuntimeError`` when no calibration is attached or it
        has no observations yet.
        """
        if self.calibration is None or not self.calibration.ready:
            raise RuntimeError("no measured calibration available")
        if n_tokens <= 0:
            return 0.0
        n_context = n_tokens - n_suffix
        n_recomputed = ratio * n_context + n_suffix
        load = [self.calibration.layer_load_time(n_context)] * self.model.n_layers
        compute = [
            self.calibration.layer_compute_time(n_recomputed)
        ] * self.model.n_layers
        # Layer 0 is fully recomputed to seed HKVD selection.
        compute[0] = self.calibration.layer_compute_time(n_tokens)
        return pipelined_time(load, compute) if pipelined else sequential_time(load, compute)
