"""Fleet tier: N engine replicas behind a cache-affinity request router.

One engine replica saturates (paper Figure 14); the "millions of users"
direction is a *fleet* of replicas, each wrapping a private chunk KV store —
KV never moves between replicas, so where a request lands decides whether its
chunks hit.  The router places each arrival on one replica:

* ``least_loaded`` — join the replica whose next request would start
  earliest (projected from FCFS occupancy), affinity-blind.  The classic
  load balancer: even utilisation, but hot chunks are re-fetched (missed)
  on every replica they land on.
* ``consistent_hash`` — each chunk id owns a position on a hash ring of
  replica virtual nodes; a request joins the replica owning the plurality
  of its chunks.  Deterministic chunk→replica homes, stable under replica
  count changes (only ``1/N`` of chunks move), no load feedback.
* ``affinity`` — score every replica by its hottest-chunk overlap with the
  request (resident chunks weighted by how often that replica has seen
  them) and join the best-scoring one, falling back to least-loaded when no
  replica holds anything relevant.  Hot Zipf chunks concentrate on their
  home replicas, trading utilisation skew for aggregate hit rate.

:func:`simulate_fleet` runs the whole placement + per-replica scheduling loop
and reports the fleet metrics of the sweep axis: aggregate throughput,
per-replica hit rates, and ``utilisation_skew`` (max/mean replica busy
share — 1.0 is perfectly even).
"""

from __future__ import annotations

import bisect
import hashlib
from dataclasses import dataclass, field, replace
from typing import Callable, Protocol, runtime_checkable

from repro.kvstore.store import ChunkUsageTracker
from repro.serving.engine import EngineResult, InferenceEngine
from repro.serving.request import GenerationRequest, RequestTiming
from repro.serving.scheduler import Scheduler

ROUTING_POLICIES = ("least_loaded", "consistent_hash", "affinity")


@dataclass
class Replica:
    """One engine replica with a private chunk store and its own scheduler.

    The store is a key-only :class:`ChunkUsageTracker`: placement relabels
    each request's ``cached_chunk_fraction`` / ``prefix_cached_fraction``
    from *this replica's* resident set, so the same request costs more on a
    replica that has never seen its chunks.  ``available_at`` is a cheap
    FCFS projection of when the replica would start its next request — the
    load signal the least-loaded policy (and affinity tie-breaks) read;
    the authoritative timings come from the per-replica scheduler pass in
    :func:`simulate_fleet`.
    """

    replica_id: int
    store: ChunkUsageTracker
    engine: InferenceEngine | None = None
    available_at: float = 0.0
    #: Total FCFS-projected occupancy assigned so far (load tie-breaker).
    assigned_work_s: float = 0.0
    indices: list[int] = field(default_factory=list, repr=False)
    requests: list[GenerationRequest] = field(default_factory=list, repr=False)
    results: list[EngineResult] = field(default_factory=list, repr=False)

    def projected_start(self, arrival_time: float) -> float:
        """When a request arriving at *arrival_time* would start here."""
        return max(self.available_at, arrival_time)

    def resident_chunks(self) -> set[object]:
        return set(self.store.resident_keys())

    def place(
        self, index: int, request: GenerationRequest, chunk_ids: list[int]
    ) -> GenerationRequest:
        """Accept *request*: look its chunks up in the private store and serve.

        Returns the request relabelled with this replica's cached/prefix
        fractions (the global workload's labels describe a *shared* store
        and do not apply here).  Tier placement inside the replica is not
        modelled at fleet level, so ``slow_tier_fraction`` is cleared.
        """
        hits = [self.store.access(chunk) for chunk in chunk_ids]
        n_chunks = max(1, len(chunk_ids))
        cached_fraction = sum(hits) / n_chunks
        prefix_hits = 0
        for hit in hits:
            if not hit:
                break
            prefix_hits += 1
        local = replace(
            request,
            cached_chunk_fraction=cached_fraction,
            prefix_cached_fraction=min(prefix_hits / n_chunks, cached_fraction),
            slow_tier_fraction=None,
        )
        self.indices.append(index)
        self.requests.append(local)
        if self.engine is not None:
            result = self.engine.serve(local)
            self.results.append(result)
            occupancy = max(result.ttft_service, result.gpu_time) + result.decode_time
            self.available_at = self.projected_start(request.arrival_time) + occupancy
            self.assigned_work_s += occupancy
        return local


@runtime_checkable
class Router(Protocol):
    """Anything that can pick a replica for a request."""

    policy: str

    def route(
        self,
        request: GenerationRequest,
        chunk_ids: list[int],
        replicas: list[Replica],
    ) -> int:
        """Index into *replicas* of the request's placement."""
        ...


@dataclass
class LeastLoadedRouter:
    """Join the replica whose next request would start earliest.

    Ties (e.g. an idle fleet) break on total assigned work, then on replica
    id, so placement is deterministic.
    """

    policy: str = "least_loaded"

    def route(
        self,
        request: GenerationRequest,
        chunk_ids: list[int],
        replicas: list[Replica],
    ) -> int:
        return min(
            range(len(replicas)),
            key=lambda r: (
                replicas[r].projected_start(request.arrival_time),
                replicas[r].assigned_work_s,
                r,
            ),
        )


def _stable_hash(token: str) -> int:
    """64-bit stable hash (``hash()`` is salted per process; this is not)."""
    return int.from_bytes(hashlib.blake2b(token.encode(), digest_size=8).digest(), "big")


@dataclass
class ConsistentHashRouter:
    """Plurality vote of the request's chunks over a consistent-hash ring.

    Every replica owns ``n_vnodes`` virtual positions on a 64-bit ring; a
    chunk's home is the first virtual node clockwise of its hash.  The
    request joins the replica owning the most of its chunks (ties: higher
    owned count first, then lower replica id).  Placement is a pure function
    of the chunk ids and the fleet size — no load feedback, but repeated
    requests for the same hot chunks always land on the same replica.
    """

    n_replicas: int
    n_vnodes: int = 64
    policy: str = "consistent_hash"
    _ring: list[tuple[int, int]] = field(default_factory=list, repr=False)
    _positions: list[int] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.n_replicas < 1:
            raise ValueError("n_replicas must be >= 1")
        if self.n_vnodes < 1:
            raise ValueError("n_vnodes must be >= 1")
        points = sorted(
            (_stable_hash(f"replica-{replica}-vnode-{vnode}"), replica)
            for replica in range(self.n_replicas)
            for vnode in range(self.n_vnodes)
        )
        self._ring = points
        self._positions = [position for position, _ in points]

    def owner(self, chunk_id: object) -> int:
        """Replica owning *chunk_id* on the ring."""
        slot = bisect.bisect_right(self._positions, _stable_hash(f"chunk-{chunk_id}"))
        return self._ring[slot % len(self._ring)][1]

    def route(
        self,
        request: GenerationRequest,
        chunk_ids: list[int],
        replicas: list[Replica],
    ) -> int:
        votes: dict[int, int] = {}
        for chunk in chunk_ids:
            owner = self.owner(chunk)
            votes[owner] = votes.get(owner, 0) + 1
        if not votes:
            return 0
        return min(votes, key=lambda replica: (-votes[replica], replica))


@dataclass
class AffinityRouter:
    """Hottest-chunk-overlap scoring against each replica's resident store.

    A replica scores ``sum(1 + access_count(c))`` over the request chunks it
    currently holds: overlap counts, and overlap on chunks that replica has
    served often (its hot set) counts more — so a hot chunk's home replica
    outbids a replica that merely happens to hold a cold copy.  Ties break
    toward the less loaded replica.  When no replica holds anything relevant
    (cold start, or an all-cold request) the placement falls back to
    least-loaded so load still spreads.

    Pure affinity collapses under Zipf: once one replica holds the hot set,
    every request overlaps *something* there and the whole stream pins to
    it.  ``load_factor`` bounds that (consistent-hashing-with-bounded-loads
    style): a replica whose assigned work exceeds ``load_factor`` × the
    fleet mean is excluded from scoring, so the hot set spills to a second
    home instead of queueing behind the first — skew stays near the factor
    while overlap routing keeps the hit-rate win.
    """

    policy: str = "affinity"
    load_factor: float = 1.25
    _fallback: LeastLoadedRouter = field(default_factory=LeastLoadedRouter, repr=False)

    def __post_init__(self) -> None:
        if self.load_factor < 1.0:
            raise ValueError("load_factor must be >= 1")

    @staticmethod
    def score(replica: Replica, chunk_ids: list[int]) -> float:
        resident = replica.resident_chunks()
        return float(
            sum(1 + replica.store.access_count(c) for c in chunk_ids if c in resident)
        )

    def route(
        self,
        request: GenerationRequest,
        chunk_ids: list[int],
        replicas: list[Replica],
    ) -> int:
        mean_assigned = sum(r.assigned_work_s for r in replicas) / len(replicas)
        allowed = [
            replica
            for replica in replicas
            if replica.assigned_work_s <= self.load_factor * mean_assigned + 1e-12
        ] or replicas
        scores = {
            replica.replica_id: self.score(replica, chunk_ids) for replica in allowed
        }
        if not any(scores.values()):
            # Least-loaded among the non-overloaded replicas, translated
            # back to the caller's replica numbering.
            return allowed[self._fallback.route(request, chunk_ids, allowed)].replica_id
        best = min(
            allowed,
            key=lambda replica: (
                -scores[replica.replica_id],
                replica.projected_start(request.arrival_time),
                replica.assigned_work_s,
                replica.replica_id,
            ),
        )
        return best.replica_id


def build_router(policy: str, n_replicas: int) -> Router:
    """Router instance for *policy* (one of :data:`ROUTING_POLICIES`)."""
    if policy == "least_loaded":
        return LeastLoadedRouter()
    if policy == "consistent_hash":
        return ConsistentHashRouter(n_replicas=n_replicas)
    if policy == "affinity":
        return AffinityRouter()
    raise ValueError(
        f"unknown routing policy {policy!r}; expected one of {ROUTING_POLICIES}"
    )


@dataclass
class FleetRun:
    """Outcome of one :func:`simulate_fleet` pass, in global request order."""

    policy: str
    n_replicas: int
    #: Requests relabelled with their home replica's cached/prefix fractions.
    requests: list[GenerationRequest]
    results: list[EngineResult]
    timings: list[RequestTiming]
    #: Home replica index of every request.
    replica_of: list[int]
    #: Per-replica store hit rate over the chunks routed there.
    per_replica_hit_rates: list[float]
    #: Fleet-wide store hit rate (total hits / total lookups).
    aggregate_hit_rate: float
    #: Per-replica busy time (occupancy of served, non-rejected requests).
    per_replica_busy_s: list[float]
    #: max/mean replica busy share; 1.0 is a perfectly even fleet.
    utilisation_skew: float
    per_replica_n_requests: list[int] = field(default_factory=list)


def simulate_fleet(
    requests: list[GenerationRequest],
    chunk_ids_per_request: list[list[int]],
    *,
    policy: str,
    n_replicas: int,
    engine_factory: Callable[[int], InferenceEngine],
    scheduler_factory: Callable[[int], Scheduler],
    store_capacity_chunks: int,
) -> FleetRun:
    """Route *requests* over *n_replicas* replicas and schedule each replica.

    ``chunk_ids_per_request[i]`` is request *i*'s retrieved chunk identity
    list (the workload generator's access trace) — the routing key.  Each
    replica gets a private store of ``store_capacity_chunks`` entries, its
    own engine from ``engine_factory(replica_id)`` and its own scheduler
    from ``scheduler_factory(replica_id)``; scheduling is fully
    replica-local (a request never migrates after placement).
    """
    if len(requests) != len(chunk_ids_per_request):
        raise ValueError("requests and chunk_ids_per_request must have the same length")
    if n_replicas < 1:
        raise ValueError("n_replicas must be >= 1")
    router = build_router(policy, n_replicas)
    replicas = [
        Replica(
            replica_id=r,
            store=ChunkUsageTracker(capacity_entries=store_capacity_chunks),
            engine=engine_factory(r),
        )
        for r in range(n_replicas)
    ]

    order = sorted(range(len(requests)), key=lambda i: requests[i].arrival_time)
    replica_of = [0] * len(requests)
    for index in order:
        request = requests[index]
        chunk_ids = chunk_ids_per_request[index]
        home = router.route(request, chunk_ids, replicas)
        replicas[home].place(index, request, chunk_ids)
        replica_of[index] = home

    local_requests: list[GenerationRequest | None] = [None] * len(requests)
    local_results: list[EngineResult | None] = [None] * len(requests)
    local_timings: list[RequestTiming | None] = [None] * len(requests)
    per_replica_busy: list[float] = []
    for replica in replicas:
        timings = (
            scheduler_factory(replica.replica_id).schedule(
                replica.requests, replica.results
            )
            if replica.requests
            else []
        )
        busy = 0.0
        for index, request, result, timing in zip(
            replica.indices, replica.requests, replica.results, timings
        ):
            local_requests[index] = request
            local_results[index] = result
            local_timings[index] = timing
            if not timing.rejected:
                busy += max(result.ttft_service, result.gpu_time) + result.decode_time
        per_replica_busy.append(busy)

    hit_rates = [replica.store.stats.hit_rate for replica in replicas]
    total_hits = sum(replica.store.stats.hits for replica in replicas)
    total_lookups = sum(replica.store.stats.lookups for replica in replicas)
    mean_busy = sum(per_replica_busy) / n_replicas
    return FleetRun(
        policy=policy,
        n_replicas=n_replicas,
        requests=[request for request in local_requests if request is not None],
        results=[result for result in local_results if result is not None],
        timings=[timing for timing in local_timings if timing is not None],
        replica_of=replica_of,
        per_replica_hit_rates=hit_rates,
        aggregate_hit_rate=total_hits / total_lookups if total_lookups else 0.0,
        per_replica_busy_s=per_replica_busy,
        utilisation_skew=(
            max(per_replica_busy) / mean_busy if mean_busy > 0.0 else 1.0
        ),
        per_replica_n_requests=[len(replica.requests) for replica in replicas],
    )
