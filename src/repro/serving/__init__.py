"""Serving substrate: cost model, requests, scheduler and load simulator.

The paper's end-to-end numbers (TTFT, throughput under increasing request
rates, batch-size sensitivity) come from running real GPUs.  Offline, this
package provides an analytical cost model calibrated against the delays the
paper reports, an inference-engine wrapper that combines the cost model with
the CacheBlend pipeline, and a discrete-event simulator that replays Poisson
request arrivals against a GPU-bound server to produce the request-rate
sweeps of Figure 14.
"""

from repro.serving.costmodel import GPUSpec, ServingCostModel
from repro.serving.request import GenerationRequest, RequestTiming
from repro.serving.engine import InferenceEngine, EngineResult
from repro.serving.scheduler import (
    ContinuousBatchingScheduler,
    FCFSScheduler,
    Scheduler,
)
from repro.serving.router import (
    ROUTING_POLICIES,
    AffinityRouter,
    ConsistentHashRouter,
    FleetRun,
    LeastLoadedRouter,
    Replica,
    Router,
    build_router,
    simulate_fleet,
)
from repro.serving.simulator import LoadSimulator, SimulationResult, WorkloadSpec

__all__ = [
    "GPUSpec",
    "ServingCostModel",
    "GenerationRequest",
    "RequestTiming",
    "InferenceEngine",
    "EngineResult",
    "Scheduler",
    "FCFSScheduler",
    "ContinuousBatchingScheduler",
    "LoadSimulator",
    "SimulationResult",
    "WorkloadSpec",
    "ROUTING_POLICIES",
    "Router",
    "Replica",
    "LeastLoadedRouter",
    "ConsistentHashRouter",
    "AffinityRouter",
    "build_router",
    "FleetRun",
    "simulate_fleet",
]
