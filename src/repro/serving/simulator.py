"""Discrete-event load simulator for request-rate sweeps (paper Figure 14).

Requests arrive as a Poisson process; each is served by an
:class:`~repro.serving.engine.InferenceEngine` under a chosen scheme, and a
FCFS scheduler assigns them to GPU servers.  The simulator reports average and
tail TTFT so the hockey-stick curves of Figure 14 can be regenerated: schemes
whose prefill keeps the GPU busy longer saturate at lower request rates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.serving.engine import EngineResult, InferenceEngine
from repro.serving.request import GenerationRequest, RequestTiming
from repro.serving.scheduler import FCFSScheduler, Scheduler


@dataclass(frozen=True)
class RunSummary:
    """Aggregate serving metrics of one scheduled run.

    Shared between the load simulator and the experiment runner so the
    busy-time / utilisation accounting lives in exactly one place.
    """

    mean_ttft: float
    p50_ttft: float
    p90_ttft: float
    p99_ttft: float
    mean_queueing: float
    throughput: float
    gpu_utilisation: float
    makespan: float
    #: Mean trace-calibrated pipeline delay (``EngineResult.ttft_service_measured``)
    #: when the engine carried a ready measured calibration; ``None`` otherwise.
    mean_ttft_service_measured: float | None = None
    #: Requests the admission controller turned away.  Their timings stay in
    #: the scheduler's output, but they contribute nothing to the TTFT
    #: percentiles, queueing mean, throughput, or busy time above.
    n_rejected: int = 0


def summarise_run(
    requests: list[GenerationRequest],
    results: list[EngineResult],
    timings: list[RequestTiming],
    n_servers: int,
) -> RunSummary:
    """Aggregate TTFT percentiles, throughput and GPU utilisation.

    Rejected requests (``RequestTiming.rejected``) are excluded from every
    served-side statistic: their timestamps all equal the rejection instant
    (a TTFT of ~0 would drag the percentiles down) and their
    :class:`EngineResult` describes service that never happened (counting its
    occupancy would inflate busy time).  They still bound the makespan —
    wall-clock ran while they were shed.

    ``gpu_utilisation`` is reported *unclamped*: with co-batched decode the
    per-request occupancy model can legitimately sum past ``n_servers *
    makespan`` by a hair, and a silent ``min(1.0, ...)`` would mask genuine
    overcommit bugs.  Tests assert ``<= 1 + eps`` where boundedness holds.
    """
    served = [
        (req, res, t)
        for req, res, t in zip(requests, results, timings)
        if not t.rejected
    ]
    n_rejected = len(timings) - len(served)
    makespan = max(t.completion_time for t in timings) - min(
        r.arrival_time for r in requests
    )
    if not served:
        return RunSummary(
            mean_ttft=0.0,
            p50_ttft=0.0,
            p90_ttft=0.0,
            p99_ttft=0.0,
            mean_queueing=0.0,
            throughput=0.0,
            gpu_utilisation=0.0,
            makespan=makespan,
            mean_ttft_service_measured=None,
            n_rejected=n_rejected,
        )
    ttfts = np.array([t.ttft for _, _, t in served])
    queueing = np.array([t.queueing_delay for _, _, t in served])
    busy = sum(
        max(res.ttft_service, res.gpu_time) + res.decode_time for _, res, _ in served
    )
    measured = [res.ttft_service_measured for _, res, _ in served]
    mean_measured = (
        float(np.mean([m for m in measured if m is not None]))
        if any(m is not None for m in measured)
        else None
    )
    return RunSummary(
        mean_ttft=float(ttfts.mean()),
        p50_ttft=float(np.percentile(ttfts, 50)),
        p90_ttft=float(np.percentile(ttfts, 90)),
        p99_ttft=float(np.percentile(ttfts, 99)),
        mean_queueing=float(queueing.mean()),
        throughput=len(served) / makespan if makespan > 0 else float("inf"),
        gpu_utilisation=busy / (n_servers * makespan) if makespan > 0 else 1.0,
        makespan=makespan,
        mean_ttft_service_measured=mean_measured,
        n_rejected=n_rejected,
    )


@dataclass(frozen=True)
class WorkloadSpec:
    """Shape of the simulated RAG workload."""

    n_chunks: int = 6
    chunk_tokens: int = 512
    n_suffix_tokens: int = 32
    n_output_tokens: int = 32
    cached_chunk_fraction: float = 1.0
    prefix_cached_fraction: float = 0.17
    #: Optional TTFT SLO stamped onto every generated request as
    #: ``deadline_s`` — makes the simulator exercise admission control when
    #: paired with ``ContinuousBatchingScheduler(admission_control=True)``.
    ttft_slo_s: float | None = None


@dataclass
class SimulationResult:
    """Aggregate metrics of one simulation run."""

    request_rate: float
    n_requests: int
    mean_ttft: float
    p50_ttft: float
    p90_ttft: float
    p99_ttft: float
    mean_queueing: float
    throughput: float
    gpu_utilisation: float
    #: Mean measured (trace-calibrated) pipeline delay; ``None`` without a
    #: ready :class:`~repro.serving.costmodel.OnlineCostCalibration`.
    mean_ttft_service_measured: float | None = None
    #: Requests rejected by admission control; present in :attr:`timings`
    #: (flagged ``rejected``) but excluded from the aggregate metrics above.
    n_rejected: int = 0
    timings: list[RequestTiming] = field(default_factory=list, repr=False)


@dataclass
class LoadSimulator:
    """Poisson open-loop load generator plus scheduled service simulation.

    By default requests are placed by a :class:`FCFSScheduler`; any other
    :class:`~repro.serving.scheduler.Scheduler` (e.g. the continuous-batching
    one) can be injected via ``scheduler``, in which case its own
    ``n_servers`` takes precedence.
    """

    engine: InferenceEngine
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    n_servers: int = 1
    seed: int = 0
    scheduler: Scheduler | None = None

    def generate_requests(self, request_rate: float, n_requests: int) -> list[GenerationRequest]:
        """Sample *n_requests* Poisson arrivals at *request_rate* per second."""
        if request_rate <= 0:
            raise ValueError("request_rate must be positive")
        if n_requests < 1:
            raise ValueError("n_requests must be >= 1")
        rng = np.random.default_rng(self.seed)
        inter_arrival = rng.exponential(1.0 / request_rate, size=n_requests)
        arrivals = np.cumsum(inter_arrival)
        return [
            GenerationRequest(
                request_id=i,
                n_chunks=self.workload.n_chunks,
                chunk_tokens=self.workload.chunk_tokens,
                n_suffix_tokens=self.workload.n_suffix_tokens,
                n_output_tokens=self.workload.n_output_tokens,
                arrival_time=float(arrivals[i]),
                cached_chunk_fraction=self.workload.cached_chunk_fraction,
                prefix_cached_fraction=self.workload.prefix_cached_fraction,
                deadline_s=self.workload.ttft_slo_s,
            )
            for i in range(n_requests)
        ]

    def run(self, request_rate: float, n_requests: int = 200) -> SimulationResult:
        """Simulate *n_requests* arrivals at *request_rate* requests/second."""
        requests = self.generate_requests(request_rate, n_requests)
        results = self.engine.serve_batch(requests)
        scheduler = self.scheduler or FCFSScheduler(n_servers=self.n_servers)
        timings = scheduler.schedule(requests, results)
        summary = summarise_run(requests, results, timings, scheduler.n_servers)
        return SimulationResult(
            request_rate=request_rate,
            n_requests=n_requests,
            mean_ttft=summary.mean_ttft,
            p50_ttft=summary.p50_ttft,
            p90_ttft=summary.p90_ttft,
            p99_ttft=summary.p99_ttft,
            mean_queueing=summary.mean_queueing,
            throughput=summary.throughput,
            gpu_utilisation=summary.gpu_utilisation,
            mean_ttft_service_measured=summary.mean_ttft_service_measured,
            n_rejected=summary.n_rejected,
            timings=timings,
        )

    def sweep(self, request_rates: list[float], n_requests: int = 200) -> list[SimulationResult]:
        """Run the simulation for every rate in *request_rates*."""
        return [self.run(rate, n_requests=n_requests) for rate in request_rates]

    def max_sustainable_rate(
        self,
        ttft_limit: float,
        rate_grid: list[float],
        n_requests: int = 200,
    ) -> float:
        """Largest rate in *rate_grid* whose mean TTFT stays under *ttft_limit*."""
        best = 0.0
        for rate in sorted(rate_grid):
            result = self.run(rate, n_requests=n_requests)
            if result.mean_ttft <= ttft_limit:
                best = rate
        return best
